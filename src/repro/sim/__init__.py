"""End-to-end simulation testbed: scenarios, the run engine, ground truth.

This is the stand-in for the paper's office testbed (Section VI-A):
volunteers seated at configurable distances/orientations/postures, item
tags scattered around as contention, a reader on a tripod 1 m up.
"""

from .scenario import Scenario, ContendingTag
from .engine import SimulationResult, run_scenario
from .sweep import run_scenarios
from .ground_truth import GroundTruth
from .environments import ENVIRONMENTS, Environment, environment
from .trace_io import (
    iter_trace_csv,
    iter_trace_jsonl,
    load_trace,
    TraceFormatError,
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
    trace_summary,
)

__all__ = [
    "Scenario",
    "ContendingTag",
    "SimulationResult",
    "run_scenario",
    "run_scenarios",
    "GroundTruth",
    "TraceFormatError",
    "save_trace_csv",
    "iter_trace_csv",
    "iter_trace_jsonl",
    "load_trace",
    "load_trace_csv",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "trace_summary",
    "Environment",
    "ENVIRONMENTS",
    "environment",
]
