"""Scenario: the tag environment a reader inventories.

Aggregates breathing :class:`~repro.body.subject.Subject` instances and
static item-labelling :class:`ContendingTag` tags into one implementation
of the :class:`~repro.reader.reader.TagEnvironment` protocol.

    "we label daily items with RFID tags and place the RFID-labeled items
    in the communication range of the commodity reader. Same as the breath
    monitoring tags attached to users, the item-labeling tags in the
    communication range contend for wireless channels following the
    standard EPC protocol."  (Section VI-B-3)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..epc.codec import EPC96, TAG_ID_BITS
from ..errors import ScenarioError
from ..body.subject import Subject
from ..reader.antenna import Antenna


@dataclass(frozen=True)
class ContendingTag:
    """A static item-labelling tag that contends for MAC airtime.

    Attributes:
        index: 1-based item index.
        epc: factory EPC (not in any monitored user's ID space).
        position_m: where the labelled item sits.
        extra_loss_db: fixed situational loss (shelving, item material).
    """

    index: int
    epc: EPC96
    position_m: Tuple[float, float, float]
    extra_loss_db: float = 0.0

    @property
    def key(self) -> Hashable:
        """Environment key for this tag."""
        return ("item", self.index)


#: High-64-bit prefix used for contending tags' factory EPCs, far away
#: from the small user IDs TagBreathe assigns.
_ITEM_EPC_PREFIX = 0xFFFF_FFFF_0000_0000


class Scenario:
    """A complete experiment environment: subjects + contending item tags.

    Args:
        subjects: the breathing users under monitoring.
        contending_tags: explicit item tags; see :meth:`with_contending_tags`
            for randomly placed ones.

    Raises:
        ScenarioError: on duplicate user IDs or no tags at all.
    """

    def __init__(self, subjects: Sequence[Subject],
                 contending_tags: Sequence[ContendingTag] = ()) -> None:
        user_ids = [s.user_id for s in subjects]
        if len(set(user_ids)) != len(user_ids):
            raise ScenarioError(f"duplicate user IDs: {user_ids}")
        self.subjects: List[Subject] = list(subjects)
        self.contending_tags: List[ContendingTag] = list(contending_tags)
        if not self.subjects and not self.contending_tags:
            raise ScenarioError("scenario contains no tags")
        self._subject_by_user: Dict[int, Subject] = {s.user_id: s for s in self.subjects}
        self._items_by_key: Dict[Hashable, ContendingTag] = {
            c.key: c for c in self.contending_tags
        }
        if len(self._items_by_key) != len(self.contending_tags):
            raise ScenarioError("duplicate contending-tag indices")
        # Situational loss in this environment is time-invariant (item
        # losses are fixed; a subject's orientation loss depends only on
        # static geometry), so probes can be answered from a cache — see
        # situational_loss_db_static.
        self._static_loss_cache: Dict[Tuple[Hashable, Antenna], float] = {}

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def single_user(cls, distance_m: float = 4.0, **subject_kwargs) -> "Scenario":
        """The Table I default: one user at ``distance_m``, 3 tags."""
        return cls([Subject(user_id=1, distance_m=distance_m, **subject_kwargs)])

    def with_contending_tags(self, count: int, seed: Optional[int] = None,
                             area_m: Tuple[float, float] = (1.0, 5.0)) -> "Scenario":
        """A copy of this scenario plus ``count`` randomly placed item tags.

        Items land at uniform-random range/bearing/height within the
        reader's coverage, with a small random situational loss.

        Raises:
            ScenarioError: on negative count.
        """
        if count < 0:
            raise ScenarioError("count must be >= 0")
        rng = np.random.default_rng(seed)
        lo, hi = area_m
        items = list(self.contending_tags)
        start = len(items) + 1
        for i in range(count):
            r = float(rng.uniform(lo, hi))
            bearing = float(rng.uniform(-math.pi / 3, math.pi / 3))
            height = float(rng.uniform(0.3, 1.5))
            epc = EPC96(
                ((_ITEM_EPC_PREFIX | (start + i)) << TAG_ID_BITS) | (start + i)
            )
            items.append(
                ContendingTag(
                    index=start + i,
                    epc=epc,
                    position_m=(r * math.cos(bearing), r * math.sin(bearing), height),
                    extra_loss_db=float(rng.uniform(0.0, 3.0)),
                )
            )
        return Scenario(self.subjects, items)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def monitored_user_ids(self) -> List[int]:
        """User IDs whose breathing is under monitoring."""
        return [s.user_id for s in self.subjects]

    def subject(self, user_id: int) -> Subject:
        """Look up a subject by user ID.

        Raises:
            ScenarioError: for unknown users.
        """
        subject = self._subject_by_user.get(user_id)
        if subject is None:
            raise ScenarioError(f"no subject with user_id {user_id}")
        return subject

    def total_tag_count(self) -> int:
        """Every tag in the field: monitoring + contending."""
        return sum(len(s.tags) for s in self.subjects) + len(self.contending_tags)

    # ------------------------------------------------------------------
    # TagEnvironment protocol
    # ------------------------------------------------------------------
    def tag_keys(self) -> List[Hashable]:
        """All tag keys: subjects' (user_id, tag_id) pairs + item keys."""
        keys: List[Hashable] = []
        for subject in self.subjects:
            keys.extend(tag.key for tag in subject.tags)
        keys.extend(item.key for item in self.contending_tags)
        return keys

    def epc(self, key: Hashable) -> EPC96:
        """EPC backscattered by the tag with ``key``."""
        item = self._items_by_key.get(key)
        if item is not None:
            return item.epc
        user_id, tag_id = self._split_subject_key(key)
        return self._subject_by_user[user_id].tag_by_id(tag_id).epc

    def position_m(self, key: Hashable, t: float) -> np.ndarray:
        """Instantaneous tag position (breathing included for worn tags)."""
        item = self._items_by_key.get(key)
        if item is not None:
            return np.asarray(item.position_m, dtype=float)
        user_id, tag_id = self._split_subject_key(key)
        return self._subject_by_user[user_id].tag_position_m(tag_id, t)

    def position_m_array(self, key: Hashable, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`position_m`: ``(len(times), 3)`` positions.

        Static item tags broadcast their fixed position; worn tags ride
        the vectorised trajectory of
        :meth:`~repro.body.subject.Subject.tag_position_m_array`.
        """
        times = np.asarray(times, dtype=float)
        item = self._items_by_key.get(key)
        if item is not None:
            return np.broadcast_to(
                np.asarray(item.position_m, dtype=float), (times.size, 3)
            ).copy()
        user_id, tag_id = self._split_subject_key(key)
        return self._subject_by_user[user_id].tag_position_m_array(tag_id, times)

    def extra_loss_db(self, key: Hashable, t: float, antenna: Antenna) -> float:
        """Situational loss (orientation/blockage for worn tags)."""
        item = self._items_by_key.get(key)
        if item is not None:
            return item.extra_loss_db
        user_id, tag_id = self._split_subject_key(key)
        return self._subject_by_user[user_id].extra_loss_db(tag_id, t, antenna)

    def extra_loss_db_array(self, key: Hashable, times: np.ndarray,
                            antenna: Antenna) -> np.ndarray:
        """Vectorised :meth:`extra_loss_db` over a time vector.

        Situational loss in this environment is time-invariant, so this is
        the static per-link value broadcast across ``times``.
        """
        times = np.asarray(times, dtype=float)
        return np.full(times.shape, self.situational_loss_db_static(key, antenna))

    def situational_loss_db_static(self, key: Hashable,
                                   antenna: Antenna) -> Optional[float]:
        """The time-invariant situational loss for a (tag, antenna) link.

        This environment's losses depend only on static geometry
        (item placement, subject orientation relative to the antenna), so
        a constant per link is exact.  Environments whose loss genuinely
        varies with time return ``None`` here (the default when the method
        is absent), which makes the reader fall back to per-probe
        :meth:`extra_loss_db` calls.
        """
        cached = self._static_loss_cache.get((key, antenna))
        if cached is None:
            item = self._items_by_key.get(key)
            if item is not None:
                cached = item.extra_loss_db
            else:
                user_id, tag_id = self._split_subject_key(key)
                cached = self._subject_by_user[user_id].extra_loss_db(
                    tag_id, 0.0, antenna
                )
            self._static_loss_cache[(key, antenna)] = cached
        return cached

    # ------------------------------------------------------------------
    def _split_subject_key(self, key: Hashable) -> Tuple[int, int]:
        try:
            user_id, tag_id = key  # type: ignore[misc]
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"unknown tag key {key!r}") from exc
        if user_id not in self._subject_by_user:
            raise ScenarioError(f"unknown tag key {key!r}")
        return int(user_id), int(tag_id)
