"""Capture persistence: save/replay low-level tag-report traces.

A real TagBreathe deployment logs the reader's LLRP reports for offline
analysis; this module writes and reads those logs so captures — simulated
here, or recorded from actual hardware with the same columns — can be
replayed through the pipeline.  CSV keeps the columns the Impinj reader
reports (Section IV-A): EPC, timestamp, phase, RSSI, Doppler, channel,
antenna.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Union

from ..epc.codec import EPC96
from ..errors import ReproError
from ..reader.tagreport import TagReport

#: CSV column order (stable format contract).
CSV_COLUMNS = (
    "epc", "timestamp_s", "phase_rad", "rssi_dbm",
    "doppler_hz", "channel_index", "antenna_port",
)


class TraceFormatError(ReproError):
    """A trace file is malformed or uses an unknown format."""


def _report_to_row(report: TagReport) -> List[str]:
    return [
        report.epc.to_hex(),
        repr(report.timestamp_s),
        repr(report.phase_rad),
        repr(report.rssi_dbm),
        repr(report.doppler_hz),
        str(report.channel_index),
        str(report.antenna_port),
    ]


def _row_to_report(row: Sequence[str]) -> TagReport:
    if len(row) != len(CSV_COLUMNS):
        raise TraceFormatError(
            f"expected {len(CSV_COLUMNS)} columns, got {len(row)}: {row!r}"
        )
    try:
        return TagReport(
            epc=EPC96.from_hex(row[0]),
            timestamp_s=float(row[1]),
            phase_rad=float(row[2]),
            rssi_dbm=float(row[3]),
            doppler_hz=float(row[4]),
            channel_index=int(row[5]),
            antenna_port=int(row[6]),
        )
    except (ValueError, ReproError) as exc:
        raise TraceFormatError(f"bad trace row {row!r}: {exc}") from exc


def save_trace_csv(reports: Iterable[TagReport],
                   path: Union[str, Path]) -> int:
    """Write a capture as CSV; returns the number of reports written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for report in reports:
            writer.writerow(_report_to_row(report))
            count += 1
    return count


def load_trace_csv(path: Union[str, Path]) -> List[TagReport]:
    """Read a CSV capture back into timestamp-ordered reports.

    Raises:
        TraceFormatError: on a missing/incorrect header or malformed rows.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceFormatError("empty trace file") from None
        if tuple(header) != CSV_COLUMNS:
            raise TraceFormatError(
                f"unexpected header {header!r}; expected {list(CSV_COLUMNS)}"
            )
        reports = [_row_to_report(row) for row in reader if row]
    reports.sort(key=lambda r: r.timestamp_s)
    return reports


def save_trace_jsonl(reports: Iterable[TagReport],
                     path: Union[str, Path]) -> int:
    """Write a capture as JSON-lines; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for report in reports:
            handle.write(json.dumps({
                "epc": report.epc.to_hex(),
                "timestamp_s": report.timestamp_s,
                "phase_rad": report.phase_rad,
                "rssi_dbm": report.rssi_dbm,
                "doppler_hz": report.doppler_hz,
                "channel_index": report.channel_index,
                "antenna_port": report.antenna_port,
            }) + "\n")
            count += 1
    return count


def load_trace_jsonl(path: Union[str, Path]) -> List[TagReport]:
    """Read a JSON-lines capture back into timestamp-ordered reports.

    Raises:
        TraceFormatError: on malformed lines or missing fields.
    """
    reports: List[TagReport] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                reports.append(TagReport(
                    epc=EPC96.from_hex(record["epc"]),
                    timestamp_s=float(record["timestamp_s"]),
                    phase_rad=float(record["phase_rad"]),
                    rssi_dbm=float(record["rssi_dbm"]),
                    doppler_hz=float(record["doppler_hz"]),
                    channel_index=int(record["channel_index"]),
                    antenna_port=int(record["antenna_port"]),
                ))
            except (json.JSONDecodeError, KeyError, ValueError, ReproError) as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: bad trace line: {exc}"
                ) from exc
    reports.sort(key=lambda r: r.timestamp_s)
    return reports


def iter_trace_csv(path: Union[str, Path]) -> Iterator[TagReport]:
    """Stream a CSV capture report by report, in file order.

    Unlike :func:`load_trace_csv` this neither materialises the capture
    nor re-sorts it — the replay client (:mod:`repro.serve.client`) uses
    it to feed arbitrarily long recordings with bounded memory.  Recorded
    captures are written timestamp-ordered, so file order *is* stream
    order for them.

    Raises:
        TraceFormatError: on a missing/incorrect header or malformed rows.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceFormatError("empty trace file") from None
        if tuple(header) != CSV_COLUMNS:
            raise TraceFormatError(
                f"unexpected header {header!r}; expected {list(CSV_COLUMNS)}"
            )
        for row in reader:
            if row:
                yield _row_to_report(row)


def iter_trace_jsonl(path: Union[str, Path]) -> Iterator[TagReport]:
    """Stream a JSON-lines capture report by report, in file order.

    The bounded-memory sibling of :func:`load_trace_jsonl`; see
    :func:`iter_trace_csv` for the ordering contract.

    Raises:
        TraceFormatError: on malformed lines or missing fields.
    """
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                yield TagReport(
                    epc=EPC96.from_hex(record["epc"]),
                    timestamp_s=float(record["timestamp_s"]),
                    phase_rad=float(record["phase_rad"]),
                    rssi_dbm=float(record["rssi_dbm"]),
                    doppler_hz=float(record["doppler_hz"]),
                    channel_index=int(record["channel_index"]),
                    antenna_port=int(record["antenna_port"]),
                )
            except (json.JSONDecodeError, KeyError, ValueError, ReproError) as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: bad trace line: {exc}"
                ) from exc


def load_trace(path: Union[str, Path]) -> List[TagReport]:
    """Load a capture, dispatching on the file extension.

    ``.csv`` goes through :func:`load_trace_csv`; ``.jsonl``/``.json``
    through :func:`load_trace_jsonl`.  Used by the CLI commands that
    accept either recording format (``analyze``, ``replay``).

    Raises:
        TraceFormatError: on an unrecognised extension or bad contents.
    """
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return load_trace_csv(path)
    if suffix in (".jsonl", ".json"):
        return load_trace_jsonl(path)
    raise TraceFormatError(
        f"unrecognised trace extension {suffix!r} for {path} "
        "(expected .csv, .jsonl, or .json)")


def trace_summary(reports: Sequence[TagReport]) -> str:
    """A one-paragraph human-readable summary of a capture."""
    if not reports:
        return "empty trace"
    span = reports[-1].timestamp_s - reports[0].timestamp_s
    streams = {r.stream_key for r in reports}
    users = {r.user_id for r in reports}
    channels = {r.channel_index for r in reports}
    antennas = {r.antenna_port for r in reports}
    rate = len(reports) / span if span > 0 else float("nan")
    return (
        f"{len(reports)} reports over {span:.1f}s ({rate:.0f}/s), "
        f"{len(streams)} tag streams across {len(users)} user IDs, "
        f"{len(channels)} channels, {len(antennas)} antenna(s)"
    )
