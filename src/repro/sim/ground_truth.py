"""Ground-truth bookkeeping — the role of the paper's metronome app.

    "we use a breathing metronome application to instruct the participants
    to regulate their breaths to evaluate the accuracy of breathing rate
    estimate of TagBreathe"  (Section VI-A)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ScenarioError
from .scenario import Scenario


class GroundTruth:
    """Per-user true breathing rates for a scenario.

    Args:
        scenario: the simulated experiment environment.
    """

    def __init__(self, scenario: Scenario) -> None:
        self._scenario = scenario

    def rate_bpm(self, user_id: int, t_start: float, t_end: float) -> float:
        """True average breathing rate of ``user_id`` over a window.

        Raises:
            ScenarioError: for unknown users (propagated from the scenario).
        """
        return self._scenario.subject(user_id).true_rate_bpm(t_start, t_end)

    def all_rates_bpm(self, t_start: float, t_end: float) -> Dict[int, float]:
        """True rates for every monitored user over a window."""
        return {
            uid: self.rate_bpm(uid, t_start, t_end)
            for uid in self._scenario.monitored_user_ids
        }

    def windowed_rates_bpm(self, user_id: int,
                           windows: List[Tuple[float, float]]) -> List[float]:
        """True rates for a user over each of several windows.

        Raises:
            ScenarioError: on an empty window list.
        """
        if not windows:
            raise ScenarioError("need at least one window")
        return [self.rate_bpm(user_id, w0, w1) for w0, w1 in windows]
