"""Scenario packs: named stress regimes with ground truth and scoring.

The paper evaluates still, metronome-paced subjects; deployment sees
motion artifacts, apneas, crowded wards, and overnight drift.  Each
pack here bottles one such regime as a deterministic
:class:`~repro.sim.scenarios.evaluate.PackSpec` — scenario, tick
cadence, engine configurations, and schedule-derived ground-truth event
windows — and :func:`~repro.sim.scenarios.evaluate.evaluate_pack`
scores every tick for accuracy, confident-but-wrong estimates, and
false/missed motion alarms.

Run them via ``repro bench --suite scenarios`` or the regenerating
benchmark ``benchmarks/test_scenario_packs.py``; the published numbers
live under the ``"scenarios"`` key of ``BENCH_simulation.json`` and are
guarded by ``tools/check_bench_regression.py``.
"""

from .evaluate import (CONFIDENT_CONFIDENCE, MIN_MOTION_OVERLAP_S,
                       WRONG_ACCURACY, PackSpec, evaluate_pack)
from .packs import (PACKS, WARD_PHASE_NOISE, WARD_WINDOW_S, apnea_sigh_pack,
                    build_pack, motion_bursts_pack, overnight_pack,
                    pack_names, ward_pack)

__all__ = [
    "CONFIDENT_CONFIDENCE",
    "MIN_MOTION_OVERLAP_S",
    "WRONG_ACCURACY",
    "PackSpec",
    "evaluate_pack",
    "PACKS",
    "WARD_PHASE_NOISE",
    "WARD_WINDOW_S",
    "apnea_sigh_pack",
    "build_pack",
    "motion_bursts_pack",
    "overnight_pack",
    "pack_names",
    "ward_pack",
]
