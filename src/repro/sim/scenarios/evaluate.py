"""The common scenario-pack harness: replay, tick, score.

Every pack (:mod:`repro.sim.scenarios.packs`) reduces to one
:class:`PackSpec` — a scenario plus capture overrides, a tick cadence,
one or more engine configurations to compare, and the ground-truth event
windows the scoring needs.  :func:`evaluate_pack` runs the capture once,
replays it through each engine serve-style (scalar ``feed`` + cadence
``estimate_user`` ticks, the deployment shape), and scores every tick
against the paper's Eq. 8 accuracy and the alarm bookkeeping:

* **confident** — confidence >= :data:`CONFIDENT_CONFIDENCE` and the
  estimate is neither motion-gated nor motion-flagged.  A confident
  estimate is one a downstream consumer would act on unexamined.
* **wrong** — Eq. 8 accuracy below :data:`WRONG_ACCURACY`.
* **in motion** — the tick's analysis window overlaps a ground-truth
  motion window by at least :data:`MIN_MOTION_OVERLAP_S` (shorter
  overlaps give the binned detector nothing to see).
* **false alarm** — a motion flag on a tick whose window contains no
  ground-truth motion at all.
* **missed alarm** — an in-motion tick that is neither gated nor
  flagged.

The headline contract (guarded by ``tools/check_bench_regression.py``):
``confident_wrong_in_motion`` must be **zero** — during gross motion the
pipeline may refuse, gate, flag, or even be wrong *quietly*, but it must
never be confidently wrong.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...config import EstimatorConfig, MotionConfig
from ...core.degradation import REASON_MOTION
from ...core.pipeline import TagBreathe
from ...errors import DegradedEstimateWarning, InsufficientDataError
from ...metrics.accuracy import breathing_rate_accuracy
from ...rf.noise import PhaseNoiseModel
from ..engine import SimulationResult, run_scenario
from ..scenario import Scenario

#: Confidence at or above which an un-flagged estimate counts as
#: "confident" — matches ``RobustnessConfig.warn_confidence``.
CONFIDENT_CONFIDENCE = 0.7

#: Eq. 8 accuracy below which an estimate counts as "wrong" (a 20 %
#: relative rate error — 2.4 bpm at the Table I default 12 bpm).
WRONG_ACCURACY = 0.8

#: Least ground-truth motion inside a tick's window for the tick to
#: count as "in motion" (the detector needs ``min_run_bins`` half-second
#: bins of coherent shift to have anything to flag).
MIN_MOTION_OVERLAP_S = 1.5


@dataclass(frozen=True)
class PackSpec:
    """One scenario pack, fully specified.

    Attributes:
        name: registry key (``repro bench --suite scenarios`` id).
        title: human title for tables.
        description: one-line synopsis.
        scenario: subjects (plus any contending tags) to inventory.
        duration_s: capture length.
        window_s: analysis-window length passed to every tick.
        warmup_s: stream time before the first tick.
        cadence_s: stream time between ticks.
        engines: label -> estimator configuration; each label becomes a
            scored case over the *same* capture.
        motion_windows: user -> ground-truth gross-motion ``(start,
            end)`` spans (empty when the pack has none).
        apnea_windows: user -> ground-truth apnea holds, for the event
            bookkeeping of the apnea/overnight packs.
        phase_noise: optional capture-time phase-noise override (the
            ward pack's degraded-phase regime).
        motion: optional motion-detector override shared by all engines.
    """

    name: str
    title: str
    description: str
    scenario: Scenario
    duration_s: float
    window_s: float
    warmup_s: float
    cadence_s: float
    engines: Mapping[str, EstimatorConfig]
    motion_windows: Mapping[int, Tuple[Tuple[float, float], ...]] = \
        field(default_factory=dict)
    apnea_windows: Mapping[int, Tuple[Tuple[float, float], ...]] = \
        field(default_factory=dict)
    phase_noise: Optional[PhaseNoiseModel] = None
    motion: Optional[MotionConfig] = None


def _overlap_s(lo: float, hi: float,
               spans: Sequence[Tuple[float, float]]) -> float:
    """Total seconds of ``[lo, hi]`` covered by ``spans``."""
    total = 0.0
    for s, e in spans:
        total += max(0.0, min(hi, e) - max(lo, s))
    return total


def _case_metrics(spec: PackSpec, capture: SimulationResult,
                  est_config: EstimatorConfig) -> Dict:
    """Replay the capture through one engine config and score every tick."""
    user_ids = sorted(capture.scenario.monitored_user_ids)
    engine = TagBreathe(user_ids=set(user_ids), estimators=est_config,
                        motion=spec.motion)
    reports = capture.reports
    truth = capture.ground_truth

    ticks = insufficient = 0
    estimator_ticks: Dict[str, int] = {}
    transitions = 0
    previous: Dict[int, str] = {}
    accuracies: List[float] = []        # insufficient scored as 0.0
    clean_accuracies: List[float] = []  # ticks with no event overlap
    confident_wrong = 0
    confident_wrong_in_motion = 0
    in_motion_ticks = missed_alarms = 0
    quiet_ticks = false_alarms = 0
    gated_ticks = flagged_ticks = 0

    next_tick = reports[0].timestamp_s + spec.warmup_s if reports else None
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstimateWarning)
        for report in reports:
            engine.feed(report)
            if next_tick is None or report.timestamp_s < next_tick:
                continue
            t = next_tick
            next_tick += spec.cadence_s
            for uid in user_ids:
                ticks += 1
                lo = max(0.0, t - spec.window_s)
                motion_s = _overlap_s(lo, t,
                                      spec.motion_windows.get(uid, ()))
                event_s = motion_s + _overlap_s(
                    lo, t, spec.apnea_windows.get(uid, ()))
                in_motion = motion_s >= MIN_MOTION_OVERLAP_S
                in_motion_ticks += in_motion
                quiet = motion_s == 0.0
                quiet_ticks += quiet
                try:
                    est = engine.estimate_user(uid, window_s=spec.window_s)
                except InsufficientDataError:
                    insufficient += 1
                    accuracies.append(0.0)
                    if event_s == 0.0:
                        clean_accuracies.append(0.0)
                    continue
                accuracy = breathing_rate_accuracy(
                    est.rate_bpm, truth.rate_bpm(uid, lo, t))
                accuracies.append(accuracy)
                if event_s == 0.0:
                    clean_accuracies.append(accuracy)
                estimator_ticks[est.estimator] = \
                    estimator_ticks.get(est.estimator, 0) + 1
                if uid in previous and previous[uid] != est.estimator:
                    transitions += 1
                previous[uid] = est.estimator
                flagged = REASON_MOTION in est.degraded_reasons
                flagged_ticks += flagged
                gated_ticks += est.motion_gated
                confident = (est.confidence >= CONFIDENT_CONFIDENCE
                             and not est.motion_gated and not flagged)
                wrong = accuracy < WRONG_ACCURACY
                if confident and wrong:
                    confident_wrong += 1
                    if in_motion:
                        confident_wrong_in_motion += 1
                if in_motion and not (flagged or est.motion_gated):
                    missed_alarms += 1
                if quiet and (flagged or est.motion_gated):
                    false_alarms += 1

    return {
        "ticks": ticks,
        "insufficient": insufficient,
        "mean_accuracy": (float(np.mean(accuracies))
                          if accuracies else 0.0),
        "mean_accuracy_clean": (float(np.mean(clean_accuracies))
                                if clean_accuracies else 0.0),
        "estimator_ticks": estimator_ticks,
        "estimator_transitions": transitions,
        "gated_ticks": gated_ticks,
        "flagged_ticks": flagged_ticks,
        "confident_wrong": confident_wrong,
        "confident_wrong_in_motion": confident_wrong_in_motion,
        "in_motion_ticks": in_motion_ticks,
        "missed_alarms": missed_alarms,
        "missed_alarm_rate": (missed_alarms / in_motion_ticks
                              if in_motion_ticks else 0.0),
        "quiet_ticks": quiet_ticks,
        "false_alarms": false_alarms,
        "false_alarm_rate": (false_alarms / quiet_ticks
                             if quiet_ticks else 0.0),
    }


def evaluate_pack(spec: PackSpec, seed: int = 0) -> Dict:
    """Capture ``spec``'s scenario once and score every engine case.

    Returns:
        JSON-ready summary: capture facts, ground-truth event counts,
        and one metrics dict per engine label under ``"cases"``.
    """
    capture = run_scenario(spec.scenario, duration_s=spec.duration_s,
                           seed=seed, phase_noise=spec.phase_noise)
    cases = {
        label: _case_metrics(spec, capture, est_config)
        for label, est_config in spec.engines.items()
    }
    return {
        "title": spec.title,
        "description": spec.description,
        "users": len(spec.scenario.monitored_user_ids),
        "duration_s": spec.duration_s,
        "window_s": spec.window_s,
        "cadence_s": spec.cadence_s,
        "reports": len(capture.reports),
        "motion_windows": sum(len(v) for v in spec.motion_windows.values()),
        "apnea_windows": sum(len(v) for v in spec.apnea_windows.values()),
        "cases": cases,
    }
