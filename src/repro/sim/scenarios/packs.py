"""The four scenario packs: named stress regimes with ground truth.

Each builder returns a :class:`~repro.sim.scenarios.evaluate.PackSpec`
for one regime the paper's still-subject evaluation never exercised:

* ``motion_bursts`` — seated users who periodically lean/reach at
  walking-scale excursions.  Exercises the Doppler motion detector; the
  contract is zero confident-but-wrong estimates during motion.
* ``apnea_sigh`` — clinically eventful breathing (10-25 s apnea holds,
  occasional sighs).  Exercises rate truth under holds and the
  pipeline's willingness to refuse rather than invent a rate.
* ``ward`` — a three-bed ward under heavy phase noise.  The phase
  displacement track random-walks; the ``auto`` estimator lattice must
  hold accuracy through the RSS fallback while a phase-only engine
  collapses (the DESIGN.md §16 acceptance pair).
* ``overnight`` — one lying subject, long capture, sparse events of
  both kinds.  The closest pack to the deployment the system exists
  for.

Every pack is deterministic given ``(pack, seed)``: waveform/transient
schedules are seeded off the pack seed, and ground-truth event windows
are read straight from the schedules, never re-derived from signals.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ...body.activities import RestlessBreathing, TransientMotion
from ...body.subject import Subject
from ...body.waveforms import ApneaSighBreathing, MetronomeBreathing
from ...config import EstimatorConfig
from ...errors import ScenarioError
from ...rf.noise import PhaseNoiseModel
from ..scenario import Scenario
from .evaluate import PackSpec

#: Walking-scale transient.  Transients ride the breathing motion axis
#: (toward the antenna), and the placement ``motion_share`` (~0.5
#: averaged over the standard mixed-style placements) halves the
#: effective excursion: a 3 m out-and-back over 5 s is ~1.5 m effective
#: — the subject leans/steps a big step toward the reader and returns
#: at ~0.9 m/s peak.  The sizing is deliberate on three axes: the
#: effective excursion must stay well short of the subject-antenna
#: distance (a sweep through the antenna's near field/beam edge drops
#: the link and starves the detector of the hottest bins); the peak
#: speed must push binned Doppler z-scores well past the z=4.5
#: threshold; and each velocity lobe must span >= 2 consecutive
#: half-second bins (``min_run_bins=2``) — short sharp bursts leave
#: only isolated hot bins, which the run filter correctly refuses to
#: call motion.
_BURST_AMPLITUDE_M = 3.0
_BURST_DURATION_S = 5.0

#: The ward pack's degraded-phase regime: a 1.2 rad phase-noise floor
#: turns the Eq. 3 displacement track into a random walk (roughness far
#: above ``EstimatorConfig.roughness_enter_m``) while leaving the RSS
#: amplitude ripple intact.
WARD_PHASE_NOISE = dict(floor_rad=1.2, ref_rad=0.3)

#: The ward pack analyses 40 s windows: under heavy phase noise the RSS
#: path needs the longer window for a stable crossing median (25 s
#: windows lose ~10 accuracy points).
WARD_WINDOW_S = 40.0

_AUTO = EstimatorConfig()
_PHASE_ONLY = EstimatorConfig(estimator="zero_crossing")
_RSS_ONLY = EstimatorConfig(estimator="rss")


def motion_bursts_pack(quick: bool = False, seed: int = 0) -> PackSpec:
    """Two seated users with walking-scale transient bursts."""
    duration = 90.0 if quick else 180.0
    subjects: List[Subject] = []
    motion_windows: Dict[int, Tuple[Tuple[float, float], ...]] = {}
    for uid in (1, 2):
        transients = TransientMotion(
            rate_per_minute=2.0, amplitude_m=_BURST_AMPLITUDE_M,
            duration_s=_BURST_DURATION_S, horizon_s=duration,
            seed=seed * 97 + uid)
        subjects.append(Subject(
            user_id=uid, distance_m=2.5 + 0.5 * (uid - 1),
            lateral_offset_m=(uid - 1.5) * 1.0, sway_seed=uid,
            breathing=RestlessBreathing(
                MetronomeBreathing(10.0 + 2.0 * uid), transients)))
        motion_windows[uid] = tuple(transients.active_windows())
    return PackSpec(
        name="motion_bursts",
        title="Motion-artifact bursts",
        description=("seated users lean/reach at walking speed; the "
                     "Doppler gate must keep wrong estimates un-confident"),
        scenario=Scenario(subjects),
        duration_s=duration, window_s=25.0, warmup_s=30.0, cadence_s=5.0,
        engines={"auto": _AUTO},
        motion_windows=motion_windows,
    )


def apnea_sigh_pack(quick: bool = False, seed: int = 0) -> PackSpec:
    """One subject with clinical apnea holds and sigh breaths."""
    duration = 90.0 if quick else 180.0
    breathing = ApneaSighBreathing(
        base_rate_bpm=14.0, apnea_per_minute=0.7, sigh_probability=0.05,
        seed=seed + 1, horizon_s=duration + 10.0)
    subject = Subject(user_id=1, distance_m=2.0, breathing=breathing,
                      sway_seed=seed + 1)
    return PackSpec(
        name="apnea_sigh",
        title="Apnea holds and sighs",
        description=("breathing stops for 10-25 s at a time; the monitor "
                     "must degrade or refuse, never invent a clean rate"),
        scenario=Scenario([subject]),
        duration_s=duration, window_s=25.0, warmup_s=30.0, cadence_s=5.0,
        engines={"auto": _AUTO},
        apnea_windows={1: tuple(breathing.apnea_windows)},
    )


def ward_pack(quick: bool = False, seed: int = 0) -> PackSpec:
    """Three beds under heavy phase noise: the RSS-fallback acceptance pair."""
    duration = 90.0 if quick else 150.0
    subjects = [
        Subject(user_id=uid, distance_m=1.5 + 0.25 * (uid - 1),
                lateral_offset_m=(uid - 2) * 0.6, sway_seed=uid,
                breathing=MetronomeBreathing(8.0 + 2.0 * uid))
        for uid in (1, 2, 3)
    ]
    return PackSpec(
        name="ward",
        title="Multi-person ward, degraded phase",
        description=("1.2 rad phase-noise floor randomises the phase "
                     "track; auto mode must hold accuracy via the RSS "
                     "fallback while phase-only collapses"),
        scenario=Scenario(subjects),
        duration_s=duration, window_s=WARD_WINDOW_S,
        warmup_s=WARD_WINDOW_S + 5.0, cadence_s=5.0,
        engines={"auto": _AUTO, "phase_only": _PHASE_ONLY,
                 "rss": _RSS_ONLY},
        phase_noise=PhaseNoiseModel(**WARD_PHASE_NOISE),
    )


def overnight_pack(quick: bool = False, seed: int = 0) -> PackSpec:
    """One lying subject, long capture, sparse events of both kinds."""
    duration = 120.0 if quick else 300.0
    # A reposition in bed: brisk (turns take a couple of seconds, not
    # five) and large on the waveform axis because the lying axis points
    # mostly up — only the frontal component of the excursion is radial
    # (see _BURST_AMPLITUDE_M for the constraints the sizing respects).
    transients = TransientMotion(
        rate_per_minute=0.4, amplitude_m=3.5, duration_s=2.5,
        horizon_s=duration, seed=seed * 31 + 7)
    breathing = ApneaSighBreathing(
        base_rate_bpm=12.0, apnea_per_minute=0.25, sigh_probability=0.04,
        seed=seed + 11, horizon_s=duration + 10.0)
    subject = Subject(
        user_id=1, distance_m=1.8, posture="lying",
        breathing=RestlessBreathing(breathing, transients),
        sway_seed=seed + 11)
    return PackSpec(
        name="overnight",
        title="Overnight run",
        description=("a sleeping subject with rare turns and apneas — the "
                     "deployment regime, end to end"),
        scenario=Scenario([subject]),
        duration_s=duration, window_s=25.0, warmup_s=30.0, cadence_s=10.0,
        engines={"auto": _AUTO},
        motion_windows={1: tuple(transients.active_windows())},
        apnea_windows={1: tuple(breathing.apnea_windows)},
    )


#: Registry: pack name -> builder(quick, seed) -> PackSpec.
PACKS: Dict[str, Callable[..., PackSpec]] = {
    "motion_bursts": motion_bursts_pack,
    "apnea_sigh": apnea_sigh_pack,
    "ward": ward_pack,
    "overnight": overnight_pack,
}


def pack_names() -> List[str]:
    """Registered pack names, registry order."""
    return list(PACKS)


def build_pack(name: str, quick: bool = False, seed: int = 0) -> PackSpec:
    """Build one pack by registry name.

    Raises:
        ScenarioError: for unknown pack names.
    """
    builder = PACKS.get(name)
    if builder is None:
        raise ScenarioError(
            f"unknown scenario pack {name!r}; have {pack_names()}")
    return builder(quick=quick, seed=seed)
