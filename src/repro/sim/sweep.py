"""Parallel scenario sweeps: many seeded trials across worker processes.

The paper's evaluation is a grid of trials — distances 1–6 m, 1–4 users,
orientations, postures, rates (Table I) — each an independent seeded
simulation.  ``run_scenarios`` fans a list of scenarios out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and returns results in
input order, with guarantees that make sweeps reproducible:

* **Ordering**: ``results[i]`` always corresponds to ``scenarios[i]``,
  regardless of which worker finished first.
* **Seed independence**: every trial gets its own explicit seed, so a
  trial's capture does not depend on worker scheduling, pool size, or
  whether the sweep ran in parallel at all — ``parallel=False`` produces
  the identical result list.
* **Telemetry round-trip**: each trial runs inside an isolated
  :func:`repro.perf.telemetry_scope`, and its collected events/metrics
  travel back with the result.  The parent merges them *in input order*
  (deterministic regardless of worker completion order), so perf stages,
  counters, and trace events recorded inside worker processes are no
  longer silently lost.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs, perf
from ..errors import ScenarioError
from .engine import SimulationResult, run_scenario
from .scenario import Scenario

#: One sweep job: (index, scenario, duration, seed, run_scenario kwargs,
#: tracer settings to reproduce inside the worker process).
_Job = Tuple[int, Scenario, float, Optional[int], Dict[str, Any],
             Dict[str, Any]]


def _run_one(job: _Job) -> Tuple[int, SimulationResult, dict]:
    """Run one sweep trial (module-level so it pickles to workers).

    Returns ``(index, result, telemetry)`` where ``telemetry`` is the
    trial's ``{"events", "metrics"}`` collected from an isolated
    telemetry scope — global tracer settings do not survive into spawned
    worker processes, so the parent's settings ride along in the job.
    """
    index, scenario, duration_s, seed, kwargs, obs_settings = job
    with perf.telemetry_scope(**obs_settings) as scope:
        result = run_scenario(scenario, duration_s=duration_s, seed=seed,
                              **kwargs)
        telemetry = scope.collect()
    return index, result, telemetry


def run_scenarios(
    scenarios: Sequence[Scenario],
    duration_s: float = 25.0,
    seeds: Optional[Sequence[Optional[int]]] = None,
    base_seed: int = 0,
    max_workers: Optional[int] = None,
    parallel: bool = True,
    **run_kwargs: Any,
) -> List[SimulationResult]:
    """Run every scenario as an independent seeded trial, possibly in parallel.

    Args:
        scenarios: the trials to run.
        duration_s: trial length shared by all trials.
        seeds: per-trial seeds; defaults to ``base_seed + index``.  Pass
            explicit seeds to reproduce a specific sweep slice.
        base_seed: origin of the default seed sequence.
        max_workers: process-pool size (default: executor's own default).
        parallel: ``False`` runs serially in this process — same results,
            useful under debuggers and in environments without working
            process spawning.
        **run_kwargs: forwarded to :func:`~repro.sim.engine.run_scenario`
            (``reader_config``, ``gen2``, ...).  Everything forwarded must
            be picklable when running in parallel.

    Returns:
        One :class:`SimulationResult` per scenario, in input order.

    Raises:
        ScenarioError: when ``seeds`` is present but its length does not
            match ``scenarios``.
    """
    scenarios = list(scenarios)
    if not scenarios:
        return []
    if seeds is None:
        seeds = [base_seed + i for i in range(len(scenarios))]
    else:
        seeds = list(seeds)
        if len(seeds) != len(scenarios):
            raise ScenarioError(
                f"{len(seeds)} seeds for {len(scenarios)} scenarios"
            )
    tracer = obs.get_tracer()
    obs_settings = {"enabled": tracer.enabled, "detail": tracer.detail,
                    "wall_clock": tracer.wall_clock}
    jobs: List[_Job] = [
        (i, scenario, duration_s, seeds[i], dict(run_kwargs), obs_settings)
        for i, scenario in enumerate(scenarios)
    ]

    with obs.span("sweep.run_scenarios", trials=len(jobs)), \
            perf.stage("sweep.run_scenarios"):
        results: List[Optional[SimulationResult]] = [None] * len(jobs)
        telemetries: List[Optional[dict]] = [None] * len(jobs)
        use_pool = parallel and len(jobs) > 1 and max_workers != 1
        if use_pool:
            try:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    futures = [pool.submit(_run_one, job) for job in jobs]
                    for future in as_completed(futures):
                        index, result, telemetry = future.result()
                        results[index] = result
                        telemetries[index] = telemetry
            except (OSError, PermissionError) as exc:
                # Sandboxes without working process spawning fall back to
                # the serial path — identical results by construction.
                warnings.warn(
                    f"process pool unavailable ({exc}); running sweep serially",
                    RuntimeWarning,
                    stacklevel=2,
                )
                use_pool = False
        if not use_pool:
            for job in jobs:
                index, result, telemetry = _run_one(job)
                results[index] = result
                telemetries[index] = telemetry
        # Fold worker telemetry back in *input order*: metric merges are
        # commutative-enough (counters/histograms add), but event absorb
        # assigns fresh span IDs, so a fixed order keeps the parent's
        # stream deterministic however the pool scheduled the trials.
        registry = obs.get_registry()
        for i, telemetry in enumerate(telemetries):
            if telemetry is None:
                continue
            registry.merge(telemetry["metrics"])
            if telemetry["events"]:
                tracer.absorb(telemetry["events"], trial=i)
        perf.count("sweep.trials", len(jobs))
    return results  # type: ignore[return-value]
