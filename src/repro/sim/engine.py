"""The simulation engine: one call from scenario to low-level data capture.

``run_scenario`` is the reproduction's equivalent of "switch on the reader
and record LLRP reports for two minutes".  Everything is seeded, so an
experiment is exactly repeatable, and all stochastic state (hop sequence,
MAC slot draws, fading, phase noise, per-link offsets) hangs off one
generator.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import obs
from ..config import ReaderConfig
from ..epc.gen2 import Gen2Config
from ..epc.select import SelectCommand
from ..errors import ScenarioError
from ..faults import FaultChain
from ..reader.antenna import Antenna
from ..reader.reader import Reader
from ..reader.tagreport import TagReport
from ..rf.noise import DynamicMultipath, PhaseNoiseModel
from ..rf.propagation import LinkBudget
from .ground_truth import GroundTruth
from .scenario import Scenario


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulated trial.

    Attributes:
        scenario: the environment that was inventoried.
        reports: every tag read, in timestamp order (the LLRP capture).
        duration_s: trial length.
        ground_truth: per-user true breathing rates.
    """

    scenario: Scenario
    reports: List[TagReport]
    duration_s: float
    ground_truth: GroundTruth = field(init=False)

    def __post_init__(self) -> None:
        self.ground_truth = GroundTruth(self.scenario)
        self._reports_by_user: Optional[Dict[int, List[TagReport]]] = None

    def reports_for_user(self, user_id: int) -> List[TagReport]:
        """Reads whose EPC carries ``user_id`` in its high 64 bits.

        The capture is indexed by user on first call, so per-user access
        across N users costs one pass over the reports instead of N.
        """
        if self._reports_by_user is None:
            index: Dict[int, List[TagReport]] = {}
            for report in self.reports:
                index.setdefault(report.user_id, []).append(report)
            self._reports_by_user = index
        return list(self._reports_by_user.get(user_id, ()))

    def per_tag_read_rate_hz(self) -> Dict[tuple, float]:
        """Average successful-read rate per (user_id, tag_id) stream."""
        counts = Counter(report.stream_key for report in self.reports)
        return {k: c / self.duration_s for k, c in counts.items()}

    def aggregate_read_rate_hz(self) -> float:
        """Successful reads per second across every tag in the field."""
        return len(self.reports) / self.duration_s


def run_scenario(
    scenario: Scenario,
    duration_s: float = 25.0,
    seed: Optional[int] = None,
    reader_config: Optional[ReaderConfig] = None,
    antennas: Optional[List[Antenna]] = None,
    link_budget: Optional[LinkBudget] = None,
    phase_noise: Optional[PhaseNoiseModel] = None,
    multipath: Optional[DynamicMultipath] = None,
    gen2: Optional[Gen2Config] = None,
    select: Optional[SelectCommand] = None,
    faults: Optional[FaultChain] = None,
) -> SimulationResult:
    """Inventory ``scenario`` for ``duration_s`` seconds and capture reports.

    Args:
        scenario: subjects + contending tags.
        duration_s: trial length (the paper's trials run 25 s for the
            characterisation and 120 s for the accuracy evaluation).
        seed: master seed; identical seeds give identical captures.
        reader_config: reader parameters (Table I defaults when omitted).
        antennas: explicit antenna set (default: one panel at 1 m height).
        link_budget / phase_noise / multipath / gen2: substrate overrides
            for ablations.
        select: optional Gen2 Select restricting which tags participate
            in the inventory (MAC-level filtering, repro.epc.select).
        faults: optional :class:`~repro.faults.FaultChain` applied to the
            capture before it is returned — models delivery-path faults
            (drops, outages, corruption) the RF substrate does not, while
            the chain's own seed keeps the trial repeatable.

    Returns:
        The full capture plus ground truth.

    Raises:
        ScenarioError: on non-positive duration.
    """
    if duration_s <= 0:
        raise ScenarioError("duration_s must be > 0")
    with obs.span("scenario", users=len(scenario.monitored_user_ids),
                  tags=scenario.total_tag_count(), duration_s=duration_s,
                  seed=seed) as span:
        rng = np.random.default_rng(seed)
        reader = Reader(
            config=reader_config,
            antennas=antennas,
            link_budget=link_budget,
            phase_noise=phase_noise,
            multipath=multipath,
            gen2=gen2,
            rng=rng,
        )
        reports = reader.run(scenario, duration_s, select=select)
        if faults is not None:
            n_before = len(reports)
            reports = faults.apply(reports)
            if obs.enabled():
                obs.event("faults.apply", reports_in=n_before,
                          reports_out=len(reports))
        span.set(reports=len(reports))
    return SimulationResult(scenario=scenario, reports=reports, duration_s=duration_s)
