"""Predefined RF environments: bundled link-budget + clutter presets.

The paper evaluates in "a standard office building" with "furniture
including desks and chairs, and electric appliances including laptops and
fans".  Different deployment environments change two things the
evaluation is sensitive to: the path-loss exponent / fading depth, and
the amount of *moving* clutter whose reflections land in the breathing
band.  These presets let scenarios run in each regime with one argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import ConfigError
from ..rf.noise import DynamicMultipath
from ..rf.propagation import LinkBudget, PathLossModel


@dataclass(frozen=True)
class Environment:
    """One deployment environment's RF character.

    Attributes:
        name: environment label.
        path_exponent: log-distance path-loss exponent (one way).
        fading_sigma_db: per-attempt lognormal fading depth.
        clutter_amplitude_rad: dynamic-multipath phase distortion at 1 m.
        clutter_exponent: distortion growth power with distance.
        description: one-line human description.
    """

    name: str
    path_exponent: float
    fading_sigma_db: float
    clutter_amplitude_rad: float
    clutter_exponent: float
    description: str

    def __post_init__(self) -> None:
        if self.path_exponent <= 0:
            raise ConfigError("path_exponent must be > 0")
        if self.fading_sigma_db < 0 or self.clutter_amplitude_rad < 0:
            raise ConfigError("noise magnitudes must be >= 0")

    def link_budget(self, **overrides) -> LinkBudget:
        """A LinkBudget configured for this environment."""
        return LinkBudget(
            path_loss=PathLossModel(
                exponent=self.path_exponent,
                fading_sigma_db=self.fading_sigma_db,
            ),
            **overrides,
        )

    def multipath(self, rng: Optional[np.random.Generator] = None) -> DynamicMultipath:
        """A DynamicMultipath model for this environment's moving clutter."""
        return DynamicMultipath(
            amplitude_at_ref_rad=self.clutter_amplitude_rad,
            distance_exponent=self.clutter_exponent,
            rng=rng,
        )


#: The paper's venue: office with desks, laptops, fans.
OFFICE = Environment(
    name="office",
    path_exponent=2.2,
    fading_sigma_db=3.0,
    clutter_amplitude_rad=0.03,
    clutter_exponent=1.5,
    description="standard office: moderate multipath, fans and laptops moving",
)

#: An anechoic-chamber-like ideal: free space, nothing moving.
ANECHOIC = Environment(
    name="anechoic",
    path_exponent=2.0,
    fading_sigma_db=0.5,
    clutter_amplitude_rad=0.0005,
    clutter_exponent=1.0,
    description="near-free-space reference: minimal fading, no moving clutter",
)

#: A hospital ward: more absorbers (beds, curtains), staff walking by.
WARD = Environment(
    name="ward",
    path_exponent=2.5,
    fading_sigma_db=4.0,
    clutter_amplitude_rad=0.05,
    clutter_exponent=1.5,
    description="hospital ward: soft absorbers plus frequent people motion",
)

#: A home bedroom: short range, quiet, light clutter.
BEDROOM = Environment(
    name="bedroom",
    path_exponent=2.1,
    fading_sigma_db=2.0,
    clutter_amplitude_rad=0.015,
    clutter_exponent=1.3,
    description="home bedroom: quiet, close-range monitoring",
)

#: All built-in environments by name.
ENVIRONMENTS: Dict[str, Environment] = {
    e.name: e for e in (OFFICE, ANECHOIC, WARD, BEDROOM)
}


def environment(name: str) -> Environment:
    """Look up an environment preset (case-insensitive).

    Raises:
        ConfigError: for unknown environments.
    """
    found = ENVIRONMENTS.get(name.lower())
    if found is None:
        raise ConfigError(
            f"unknown environment {name!r}; available: {sorted(ENVIRONMENTS)}"
        )
    return found
