"""An in-process facade mimicking the LLRP Toolkit (LTK) surface.

The paper's prototype "implement[s] TagBreathe based on the LLRP Toolkit
(LTK) to config the commodity reader and read the low level data"
(Section V).  We cannot speak the wire protocol to hardware we don't have,
so this module reproduces the *programming model*: configure an ROSpec,
subscribe a tag-report callback, start the reader, receive a stream of
:class:`~repro.reader.tagreport.TagReport` records.

Examples and the streaming pipeline consume the reader through this facade
so swapping in real LTK bindings would touch nothing downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from ..errors import ReaderError
from .reader import Reader, TagEnvironment
from .tagreport import TagReport

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids an import cycle
    from ..faults import FaultChain

#: A subscriber receiving each tag report as it is "delivered".
ReportCallback = Callable[[TagReport], None]


@dataclass(frozen=True)
class ROSpec:
    """A minimal Reader Operation spec, LLRP style.

    Attributes:
        duration_s: how long the inventory operation runs.
        start_time_s: absolute start time of the operation.
        report_every_n: deliver reports in batches of N (LLRP readers batch
            tag reports into RO_ACCESS_REPORT messages); 1 = immediate.
    """

    duration_s: float
    start_time_s: float = 0.0
    report_every_n: int = 1

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ReaderError("ROSpec duration must be > 0")
        if self.report_every_n < 1:
            raise ReaderError("report_every_n must be >= 1")


class LLRPClient:
    """LTK-style client: connect, add an ROSpec, subscribe, start.

    Args:
        reader: the reader model to drive.
        environment: the tag environment the reader inventories.
        faults: optional :class:`~repro.faults.FaultChain` applied to the
            capture before batching/dispatch, so subscribers see the same
            degraded stream a flaky deployment would deliver.
    """

    def __init__(
        self,
        reader: Reader,
        environment: TagEnvironment,
        faults: Optional["FaultChain"] = None,
    ) -> None:
        self._reader = reader
        self._env = environment
        self._rospec: Optional[ROSpec] = None
        self._subscribers: List[ReportCallback] = []
        self._connected = False
        self._faults = faults

    def set_fault_chain(self, faults: Optional["FaultChain"]) -> None:
        """Install (or clear, with None) the fault chain used by :meth:`start`."""
        self._faults = faults

    # ------------------------------------------------------------------
    # LTK-flavoured lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Open the (simulated) reader connection."""
        self._connected = True

    def disconnect(self) -> None:
        """Close the connection and drop the configured ROSpec."""
        self._connected = False
        self._rospec = None

    def add_rospec(self, rospec: ROSpec) -> None:
        """Configure the reader operation to run on :meth:`start`.

        Raises:
            ReaderError: if not connected.
        """
        self._require_connected()
        self._rospec = rospec

    def subscribe(self, callback: ReportCallback) -> None:
        """Register a tag-report subscriber (may be called repeatedly)."""
        self._subscribers.append(callback)

    def start(self) -> List[TagReport]:
        """Run the configured ROSpec, dispatching reports to subscribers.

        Returns:
            Every report delivered (the capture file) — in timestamp order
            unless an installed fault chain reorders or drops reads.

        Raises:
            ReaderError: if not connected or no ROSpec was added.
        """
        self._require_connected()
        if self._rospec is None:
            raise ReaderError("no ROSpec configured; call add_rospec first")
        reports = self._reader.run(
            self._env, self._rospec.duration_s, t_start=self._rospec.start_time_s
        )
        if self._faults is not None:
            reports = self._faults.apply(reports)
        batch: List[TagReport] = []
        for report in reports:
            batch.append(report)
            if len(batch) >= self._rospec.report_every_n:
                self._dispatch(batch)
                batch = []
        if batch:
            self._dispatch(batch)
        return reports

    # ------------------------------------------------------------------
    def _dispatch(self, batch: List[TagReport]) -> None:
        for report in batch:
            for callback in self._subscribers:
                callback(report)

    def _require_connected(self) -> None:
        if not self._connected:
            raise ReaderError("not connected; call connect() first")
