"""Structure-of-arrays report batches for the columnar hot path.

A :class:`ReportBatch` carries the same seven LLRP fields as a list of
:class:`~repro.reader.tagreport.TagReport` objects — timestamp, phase,
RSSI, Doppler, channel, antenna, EPC — but as parallel numpy columns,
so screening, phase-chain differencing, and wire encoding can run as
array operations instead of per-object attribute chasing.  The EPC is
carried pre-split into its ``user_id``/``tag_id`` halves (the only form
the pipeline ever consumes; ``EPC96.from_user_tag`` reconstructs the
full 96-bit code losslessly).

Batches are validated once on construction with the exact same bounds
``TagReport.__post_init__`` enforces per report, so a batch round-trips
to a report list and back bit-for-bit.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..epc.codec import EPC96
from ..errors import ReaderError
from ..units import TWO_PI
from .tagreport import TagReport

#: (name, numpy dtype) of every batch column, in canonical order.
COLUMNS = (
    ("t", np.float64),
    ("phase", np.float64),
    ("rssi", np.float64),
    ("doppler", np.float64),
    ("channel", np.int64),
    ("antenna", np.int64),
    ("user_id", np.uint64),
    ("tag_id", np.uint64),
)

#: Slack TagReport allows past 2*pi for float round-off, mirrored here.
_PHASE_SLACK = 1e-12


class ReportBatch:
    """A column-oriented batch of tag reports.

    Args:
        t: report timestamps in seconds (float64).
        phase: raw wrapped phase in ``[0, 2*pi)`` radians (float64).
        rssi: received signal strength in dBm (float64).
        doppler: raw Doppler shift in Hz (float64).
        channel: hop channel indices, >= 0 (int).
        antenna: antenna ports, >= 1 (int).
        user_id: upper-64-bit EPC halves (uint64).
        tag_id: lower-32-bit EPC halves (uint64, < 2**32).

    Raises:
        ReaderError: when column lengths disagree or any value is out
            of the range ``TagReport`` itself would reject.
    """

    __slots__ = ("t", "phase", "rssi", "doppler", "channel", "antenna",
                 "user_id", "tag_id")

    def __init__(self, t, phase, rssi, doppler, channel, antenna,
                 user_id, tag_id) -> None:
        cols = (t, phase, rssi, doppler, channel, antenna, user_id, tag_id)
        for (name, dtype), raw in zip(COLUMNS, cols):
            arr = np.ascontiguousarray(raw, dtype=dtype)
            if arr.ndim != 1:
                raise ReaderError(f"batch column {name!r} must be 1-D")
            object.__setattr__(self, name, arr)
        n = self.t.shape[0]
        for name, _ in COLUMNS:
            if getattr(self, name).shape[0] != n:
                raise ReaderError(
                    f"batch column {name!r} has "
                    f"{getattr(self, name).shape[0]} rows, expected {n}")
        if n:
            self._validate()

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("ReportBatch is immutable")

    def _validate(self) -> None:
        phase = self.phase
        if np.any(~np.isfinite(phase)) or np.any(phase < 0.0) \
                or np.any(phase >= TWO_PI + _PHASE_SLACK):
            raise ReaderError("phase must be a finite value in [0, 2*pi)")
        if np.any(self.channel < 0):
            raise ReaderError("channel index must be >= 0")
        if np.any(self.antenna < 1):
            raise ReaderError("antenna ports are 1-based")
        if np.any(self.tag_id > np.uint64(0xFFFFFFFF)):
            raise ReaderError("tag_id exceeds the 32-bit EPC serial field")

    def __len__(self) -> int:
        return int(self.t.shape[0])

    @classmethod
    def from_reports(cls, reports: Sequence[TagReport]) -> "ReportBatch":
        """Pack a sequence of reports into columns (order preserved)."""
        n = len(reports)
        t = np.empty(n)
        phase = np.empty(n)
        rssi = np.empty(n)
        doppler = np.empty(n)
        channel = np.empty(n, dtype=np.int64)
        antenna = np.empty(n, dtype=np.int64)
        user = np.empty(n, dtype=np.uint64)
        tag = np.empty(n, dtype=np.uint64)
        for i, r in enumerate(reports):
            t[i] = r.timestamp_s
            phase[i] = r.phase_rad
            rssi[i] = r.rssi_dbm
            doppler[i] = r.doppler_hz
            channel[i] = r.channel_index
            antenna[i] = r.antenna_port
            user[i] = r.user_id
            tag[i] = r.tag_id
        return cls(t, phase, rssi, doppler, channel, antenna, user, tag)

    def to_reports(self) -> List[TagReport]:
        """Materialize the batch as TagReport objects (order preserved)."""
        return [
            TagReport(epc=EPC96.from_user_tag(int(u), int(g)),
                      timestamp_s=ts, phase_rad=ph, rssi_dbm=rs,
                      doppler_hz=dp, channel_index=int(ch),
                      antenna_port=int(an))
            for ts, ph, rs, dp, ch, an, u, g in zip(
                self.t.tolist(), self.phase.tolist(), self.rssi.tolist(),
                self.doppler.tolist(), self.channel.tolist(),
                self.antenna.tolist(), self.user_id.tolist(),
                self.tag_id.tolist())
        ]

    def select(self, rows) -> "ReportBatch":
        """A new batch of the given rows (boolean mask or index array)."""
        return ReportBatch(*(getattr(self, name)[rows]
                             for name, _ in COLUMNS))

    def split_by_user(self) -> Iterator[Tuple[int, "ReportBatch"]]:
        """Yield ``(user_id, sub_batch)`` per user, rows in batch order.

        Users are yielded in order of first appearance, and each
        sub-batch keeps its rows in original batch order, so feeding the
        sub-batches sequentially is equivalent to feeding the batch.
        """
        user = self.user_id
        n = user.shape[0]
        if not n:
            return
        order = np.argsort(user, kind="stable")
        sorted_user = user[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_user[1:] != sorted_user[:-1])))
        bounds = np.append(starts, n)
        groups = [np.sort(order[bounds[i]: bounds[i + 1]])
                  for i in range(starts.shape[0])]
        for rows in sorted(groups, key=lambda g: int(g[0])):
            yield int(user[rows[0]]), self.select(rows)
