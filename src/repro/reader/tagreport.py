"""The low-level data record a commodity reader reports per tag read.

    "The low level data reports the received signal strength, raw phase
    value, raw Doppler shift, time stamp, and the tag ID."  (Section IV-A)

Plus the channel index (Fig. 5) and antenna port (Section IV-D-3), which
the Impinj R420 also reports and TagBreathe uses for preprocessing and
antenna selection respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..epc.codec import EPC96
from ..errors import ReaderError
from ..units import TWO_PI


@dataclass(frozen=True)
class TagReport:
    """One successful tag read, as delivered over LLRP.

    Attributes:
        epc: the tag's 96-bit EPC (user ID + tag ID when overwritten).
        timestamp_s: read completion time.
        phase_rad: raw backscatter phase in [0, 2*pi).
        rssi_dbm: received signal strength (0.5 dB quantised).
        doppler_hz: raw Doppler-shift estimate (noisy; Eq. 2).
        channel_index: frequency channel the read happened on.
        antenna_port: antenna port (1-based, as LLRP numbers them).
    """

    epc: EPC96
    timestamp_s: float
    phase_rad: float
    rssi_dbm: float
    doppler_hz: float
    channel_index: int
    antenna_port: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.phase_rad < TWO_PI + 1e-12:
            raise ReaderError(f"phase must be in [0, 2*pi), got {self.phase_rad}")
        if self.channel_index < 0:
            raise ReaderError("channel_index must be >= 0")
        if self.antenna_port < 1:
            raise ReaderError("antenna_port is 1-based")

    @property
    def user_id(self) -> int:
        """User ID from the high 64 EPC bits (Fig. 9)."""
        return self.epc.user_id

    @property
    def tag_id(self) -> int:
        """Short tag ID from the low 32 EPC bits (Fig. 9)."""
        return self.epc.tag_id

    @property
    def stream_key(self) -> Tuple[int, int]:
        """The (user_id, tag_id) pair that names this tag's data stream."""
        return self.epc.split()
