"""Frequency-hop schedule — the behaviour behind the paper's Fig. 5.

    "the reader hops among 10 frequency channels and resides in each
    channel for around 0.2 s"  (Section IV-A-3)

FCC rules require pseudo-random hopping; the schedule here draws a random
permutation per sweep so every channel is visited once per sweep (as
Fig. 5's uniformly scattered indices show) without immediate repeats.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ConfigError
from ..rf.channel import Channel, ChannelPlan


class HopSchedule:
    """Deterministic (seeded) pseudo-random hop sequence over a channel plan.

    Args:
        plan: the channel set to hop over.
        dwell_s: residency per channel (~0.2 s on the R420).
        rng: random source; the schedule is materialised lazily sweep by
            sweep, so two schedules with the same seed agree forever.

    Raises:
        ConfigError: on non-positive dwell.
    """

    def __init__(self, plan: ChannelPlan, dwell_s: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> None:
        if dwell_s <= 0:
            raise ConfigError("dwell_s must be > 0")
        self._plan = plan
        self._dwell = float(dwell_s)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._sequence: List[int] = []

    @property
    def plan(self) -> ChannelPlan:
        """The underlying channel plan."""
        return self._plan

    @property
    def dwell_s(self) -> float:
        """Per-channel residency time."""
        return self._dwell

    def _extend_to(self, hop_index: int) -> None:
        """Materialise the hop sequence up to ``hop_index`` inclusive."""
        n = len(self._plan)
        while len(self._sequence) <= hop_index:
            sweep = list(self._rng.permutation(n))
            # Avoid an immediate repeat across sweep boundaries (the FCC
            # forbids dwelling on one frequency for two dwell periods).
            if n > 1 and self._sequence and sweep[0] == self._sequence[-1]:
                sweep[0], sweep[-1] = sweep[-1], sweep[0]
            self._sequence.extend(sweep)

    def channel_index_at(self, t: float) -> int:
        """Active channel index at absolute time ``t`` (t=0 starts hop 0).

        Raises:
            ConfigError: for negative times.
        """
        if t < 0:
            raise ConfigError("schedule time must be >= 0")
        hop = int(t / self._dwell)
        self._extend_to(hop)
        return self._sequence[hop]

    def channel_at(self, t: float) -> Channel:
        """Active :class:`Channel` at time ``t``."""
        return self._plan[self.channel_index_at(t)]

    def channel_indices_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`channel_index_at` over a time vector.

        Materialises the hop sequence once up to the latest hop, then
        answers every lookup with one fancy-index — same values as the
        scalar method, without a Python call per read.

        Raises:
            ConfigError: for negative times.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return np.zeros(0, dtype=int)
        if times.min() < 0:
            raise ConfigError("schedule time must be >= 0")
        hops = (times / self._dwell).astype(int)
        self._extend_to(int(hops.max()))
        return np.asarray(self._sequence, dtype=int)[hops]

    def hop_boundaries(self, t_start: float, t_end: float) -> List[float]:
        """Hop instants within ``(t_start, t_end)``.

        Useful for tests asserting that phase discontinuities (Fig. 4)
        coincide exactly with hops.
        """
        if t_end <= t_start:
            return []
        first = int(np.floor(t_start / self._dwell)) + 1
        last = int(np.ceil(t_end / self._dwell))
        return [k * self._dwell for k in range(first, last)
                if t_start < k * self._dwell < t_end]
