"""Antenna model and round-robin multi-antenna scheduling.

    "a commodity reader can be connected to multiple antennas (e.g., 4
    antenna ports for one Impinj R420). The reader coordinates the multiple
    antennas with the round-robin scheduling and avoids the inter-antenna
    interference. ... only one antenna will be powered up at a time"
    (Section IV-D-3)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import AntennaError

Vec3 = Tuple[float, float, float]


def _as_vec(v: Sequence[float]) -> np.ndarray:
    arr = np.asarray(v, dtype=float)
    if arr.shape != (3,):
        raise AntennaError(f"expected a 3-vector, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class Antenna:
    """One reader antenna: position, boresight, and a simple gain pattern.

    The paper's Alien ALR-8696-C is a circularly polarised panel with
    8.5 dBic peak gain and a roughly 70-degree beamwidth; the pattern here
    is the standard cos^k rolloff fitted to that beamwidth.

    Attributes:
        port: 1-based LLRP antenna port.
        position_m: antenna phase-centre position (paper: 1 m above ground).
        boresight: unit-ish vector the panel faces along.
        peak_gain_dbi: gain on boresight.
        beamwidth_deg: full 3 dB beamwidth.
    """

    port: int
    position_m: Vec3 = (0.0, 0.0, 1.0)
    boresight: Vec3 = (1.0, 0.0, 0.0)
    peak_gain_dbi: float = 8.5
    beamwidth_deg: float = 70.0

    def __post_init__(self) -> None:
        if self.port < 1:
            raise AntennaError("antenna port is 1-based")
        if self.beamwidth_deg <= 0 or self.beamwidth_deg > 360:
            raise AntennaError("beamwidth must be in (0, 360] degrees")
        if float(np.linalg.norm(self.boresight)) == 0.0:
            raise AntennaError("boresight must be non-zero")

    def gain_dbi_toward(self, point_m: Sequence[float]) -> float:
        """Gain [dBi] in the direction of ``point_m``.

        Uses the cos^k pattern with k chosen so gain drops 3 dB at half the
        beamwidth; directions behind the panel get a -20 dB back lobe.
        """
        direction = _as_vec(point_m) - _as_vec(self.position_m)
        dist = float(np.linalg.norm(direction))
        if dist == 0.0:
            return self.peak_gain_dbi
        bs = _as_vec(self.boresight)
        cos_angle = float(direction @ bs / (dist * np.linalg.norm(bs)))
        cos_angle = min(1.0, max(-1.0, cos_angle))
        if cos_angle <= 0.0:
            return self.peak_gain_dbi - 20.0
        half_bw = np.radians(self.beamwidth_deg / 2.0)
        k = np.log(0.5) / np.log(np.cos(half_bw) ** 2)
        rolloff_db = 10.0 * k * np.log10(cos_angle ** 2)
        return self.peak_gain_dbi + max(rolloff_db, -20.0)

    def distance_to(self, point_m: Sequence[float]) -> float:
        """Euclidean distance [m] from the antenna to ``point_m``."""
        return float(np.linalg.norm(_as_vec(point_m) - _as_vec(self.position_m)))

    # ------------------------------------------------------------------
    # Cached geometry + vectorised pattern evaluation.  cached_property
    # writes straight into the instance __dict__, which sidesteps the
    # frozen-dataclass __setattr__ guard, so these are safe on Antenna.
    # ------------------------------------------------------------------
    @cached_property
    def _position_vec(self) -> np.ndarray:
        return _as_vec(self.position_m)

    @cached_property
    def _boresight_vec(self) -> np.ndarray:
        return _as_vec(self.boresight)

    @cached_property
    def _boresight_norm(self) -> float:
        return float(np.linalg.norm(self._boresight_vec))

    @cached_property
    def _rolloff_exponent(self) -> float:
        half_bw = np.radians(self.beamwidth_deg / 2.0)
        return float(np.log(0.5) / np.log(np.cos(half_bw) ** 2))

    def distances_to(self, points_m: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`distance_to` over an ``(n, 3)`` point array."""
        deltas = np.asarray(points_m, dtype=float) - self._position_vec
        return np.sqrt(np.einsum("ij,ij->i", deltas, deltas))

    def gain_dbi_toward_array(self, points_m: np.ndarray,
                              distances_m: np.ndarray = None) -> np.ndarray:
        """Vectorised :meth:`gain_dbi_toward` over an ``(n, 3)`` point array.

        Args:
            points_m: target points, one row per query.
            distances_m: precomputed :meth:`distances_to` result, to avoid
                recomputing when the caller already has it.
        """
        points = np.asarray(points_m, dtype=float)
        directions = points - self._position_vec
        if distances_m is None:
            distances_m = np.sqrt(np.einsum("ij,ij->i", directions, directions))
        dist = np.asarray(distances_m, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            cos_angle = (directions @ self._boresight_vec) / (
                dist * self._boresight_norm
            )
        cos_angle = np.clip(np.nan_to_num(cos_angle, nan=1.0), -1.0, 1.0)
        front = cos_angle > 0.0
        # Back lobe / coincident points get the flat values; the cos^k
        # rolloff only ever sees strictly positive cosines.
        safe_cos = np.where(front, cos_angle, 1.0)
        with np.errstate(divide="ignore"):
            rolloff_db = 10.0 * self._rolloff_exponent * np.log10(safe_cos ** 2)
        gains = self.peak_gain_dbi + np.maximum(rolloff_db, -20.0)
        gains = np.where(front, gains, self.peak_gain_dbi - 20.0)
        return np.where(dist == 0.0, self.peak_gain_dbi, gains)


class RoundRobinScheduler:
    """Round-robin antenna activation, one antenna powered at a time.

    Args:
        antennas: the connected antennas, in activation order.
        switch_period_s: residency per antenna before switching.

    Raises:
        AntennaError: on empty antenna list, duplicate ports, or a
            non-positive switch period.
    """

    def __init__(self, antennas: Sequence[Antenna],
                 switch_period_s: float = 0.2) -> None:
        if not antennas:
            raise AntennaError("need at least one antenna")
        ports = [a.port for a in antennas]
        if len(set(ports)) != len(ports):
            raise AntennaError(f"duplicate antenna ports: {ports}")
        if switch_period_s <= 0:
            raise AntennaError("switch_period_s must be > 0")
        self._antennas: List[Antenna] = list(antennas)
        self._period = float(switch_period_s)

    @property
    def antennas(self) -> List[Antenna]:
        """All antennas in activation order."""
        return list(self._antennas)

    @property
    def switch_period_s(self) -> float:
        """Residency per antenna."""
        return self._period

    def active_at(self, t: float) -> Antenna:
        """The single powered antenna at time ``t``.

        Raises:
            AntennaError: for negative times.
        """
        if t < 0:
            raise AntennaError("schedule time must be >= 0")
        slot = int(t / self._period)
        return self._antennas[slot % len(self._antennas)]

    def antenna_indices_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`active_at`, returning activation-order indices.

        Indices address :attr:`antennas`; callers that need the Antenna
        objects gather them once per distinct index instead of calling
        :meth:`active_at` per read.

        Raises:
            AntennaError: for negative times.
        """
        times = np.asarray(times, dtype=float)
        if times.size and times.min() < 0:
            raise AntennaError("schedule time must be >= 0")
        return (times / self._period).astype(int) % len(self._antennas)

    def duty_cycle(self) -> float:
        """Fraction of time each antenna is powered (1/N round-robin)."""
        return 1.0 / len(self._antennas)

    def by_port(self, port: int) -> Antenna:
        """Look up an antenna by its LLRP port.

        Raises:
            AntennaError: if the port is not connected.
        """
        for antenna in self._antennas:
            if antenna.port == port:
                return antenna
        raise AntennaError(f"no antenna on port {port}")
