"""The reader: ties hopping, antennas, the Gen2 MAC, and RF physics into
the low-level report stream the TagBreathe pipeline consumes.

This is the stand-in for the paper's Impinj Speedway R420 (Section V).
Given a :class:`TagEnvironment` — anything that can say where each tag is
at time ``t`` and how much extra loss its situation imposes — the reader
produces :class:`~repro.reader.tagreport.TagReport` records with all the
artefacts the paper characterises in Section IV-A:

* phase values that jump at every frequency hop (per-channel offset),
* RSSI quantised to 0.5 dBm,
* noisy raw Doppler,
* irregular read timing from slotted-ALOHA arbitration,
* read rates that collapse with distance, contention, and blockage.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .. import obs, perf
from ..config import ReaderConfig
from ..epc.codec import EPC96
from ..epc.gen2 import Gen2Config, Gen2Inventory
from ..epc.select import SelectCommand
from ..errors import ReaderError
from ..rf.channel import ChannelPlan
from ..rf.doppler import doppler_report
from ..rf.noise import DynamicMultipath, PhaseNoiseModel, quantize_rssi
from ..rf.phase import PhaseModel
from ..rf.propagation import LinkBudget
from .antenna import Antenna, RoundRobinScheduler
from .hopping import HopSchedule
from .tagreport import TagReport


class TagEnvironment(Protocol):
    """What the reader needs to know about the world.

    Implemented by :class:`repro.sim.scenario.Scenario`; any object with
    these methods works (e.g. a replayer of recorded traces).
    """

    def tag_keys(self) -> Sequence[Hashable]:
        """Identities of every tag in the field (monitoring + contending)."""
        ...

    def epc(self, key: Hashable) -> EPC96:
        """The 96-bit EPC the tag backscatters."""
        ...

    def position_m(self, key: Hashable, t: float) -> np.ndarray:
        """Tag position (3-vector, metres) at time ``t`` — includes the
        breathing displacement, which is the signal of interest."""
        ...

    def extra_loss_db(self, key: Hashable, t: float, antenna: Antenna) -> float:
        """Situational one-way loss [dB] beyond geometry: orientation gain
        reduction and body blockage.  ``math.inf`` means the LOS path is
        fully blocked and the tag cannot be energised at all (Fig. 15,
        orientation > 90 degrees)."""
        ...


class Reader:
    """An R420-class reader over a simulated (or replayed) environment.

    Args:
        config: reader parameters (power, channels, dwell, antennas).
        antennas: connected antennas; defaults to one panel at (0, 0, 1) m
            facing +x, matching the paper's setup ("the location of the
            antenna 1 m above the ground").
        channel_plan: hop channels; defaults to the 10-channel plan.
        link_budget: RF link model; ``tx_power_dbm``/``reader_gain_dbi``
            are overridden from ``config``/antenna if not given.
        phase_noise: phase-noise-vs-SNR model.
        gen2: MAC timing parameters.
        rng: random source; pass a seeded generator for reproducible runs.

    Raises:
        ReaderError: if the antenna count disagrees with ``config``.
    """

    def __init__(
        self,
        config: Optional[ReaderConfig] = None,
        antennas: Optional[Sequence[Antenna]] = None,
        channel_plan: Optional[ChannelPlan] = None,
        link_budget: Optional[LinkBudget] = None,
        phase_noise: Optional[PhaseNoiseModel] = None,
        multipath: Optional[DynamicMultipath] = None,
        gen2: Optional[Gen2Config] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._config = config if config is not None else ReaderConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        if antennas is None:
            antennas = [
                Antenna(port=i + 1, position_m=(0.0, 0.0, 1.0), boresight=(1.0, 0.0, 0.0),
                        peak_gain_dbi=self._config.antenna_gain_dbic)
                for i in range(self._config.num_antennas)
            ]
        if len(antennas) != self._config.num_antennas:
            raise ReaderError(
                f"config says {self._config.num_antennas} antennas, got {len(antennas)}"
            )
        self._scheduler = RoundRobinScheduler(
            antennas, switch_period_s=self._config.channel_dwell_s
        )
        plan = channel_plan if channel_plan is not None else ChannelPlan.default(
            self._config.num_channels, rng=self._rng
        )
        self._hops = HopSchedule(plan, dwell_s=self._config.channel_dwell_s, rng=self._rng)
        if link_budget is None:
            link_budget = LinkBudget(
                tx_power_dbm=self._config.tx_power_dbm,
                reader_gain_dbi=self._config.antenna_gain_dbic,
            )
        self._budget = link_budget
        self._phase_noise = phase_noise if phase_noise is not None else PhaseNoiseModel()
        self._multipath = (multipath if multipath is not None
                           else DynamicMultipath(rng=self._rng))
        self._gen2_config = gen2 if gen2 is not None else Gen2Config()
        # Fixed per-link circuit phase offsets: one per (tag, antenna port).
        self._phase_models: Dict[Tuple[Hashable, int], PhaseModel] = {}
        # Static per-(tag, antenna, channel) fading for *reported* RSSI:
        # with nothing moving, the standing-wave pattern is fixed, so real
        # readers report a stable per-link RSSI level rather than a fresh
        # fading draw per read.
        self._static_fades: Dict[Tuple[Hashable, int, int], float] = {}
        # Per-link phase of the standing-wave ripple that couples RSSI to
        # tag displacement — the mechanism behind the visible breathing
        # oscillation of the paper's Fig. 2.
        self._ripple_phases: Dict[Tuple[Hashable, int, int], float] = {}
        # (antenna port, SNR dB) pairs accumulated per run when the
        # observability layer is on; None keeps the scalar hot path free
        # of per-read appends otherwise.
        self._snr_obs: Optional[List[Tuple[int, float]]] = None

    #: Peak-to-mid amplitude [dB] of the standing-wave RSSI ripple.  A
    #: breathing displacement of ~1 cm sweeps ~0.4 rad of round-trip phase,
    #: so a 1.5 dB ripple produces the ~0.5-1 dB oscillation Fig. 2 shows.
    RSSI_RIPPLE_DB = 1.5

    #: Per-read RSSI jitter sigma [dB] before 0.5 dB quantisation.
    RSSI_JITTER_DB = 0.15

    #: Sigma [dB] of the static per-(tag, antenna, channel) fading level in
    #: *reported* RSSI.  Zero disables the draw entirely, which keeps
    #: RNG-free configurations RNG-free on both synthesis paths.
    RSSI_FADE_SIGMA_DB = 2.0

    #: Half-width [s] of the central difference behind Doppler velocity.
    VELOCITY_EPS_S = 0.01

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def config(self) -> ReaderConfig:
        """The reader configuration."""
        return self._config

    @property
    def hop_schedule(self) -> HopSchedule:
        """The frequency-hop schedule in force."""
        return self._hops

    @property
    def antenna_scheduler(self) -> RoundRobinScheduler:
        """The round-robin antenna scheduler."""
        return self._scheduler

    @property
    def link_budget(self) -> LinkBudget:
        """The RF link budget used for read-success and RSSI."""
        return self._budget

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def run(self, env: TagEnvironment, duration_s: float,
            t_start: float = 0.0,
            select: Optional[SelectCommand] = None) -> List[TagReport]:
        """Continuously inventory ``env`` for ``duration_s`` seconds.

        Args:
            env: the tag environment.
            duration_s: inventory length.
            t_start: absolute start time.
            select: optional Gen2 Select; only tags whose EPC matches
                participate in the inventory at all (the MAC-level filter
                of :mod:`repro.epc.select`).  None inventories everything.

        Returns:
            All successful tag reads, in timestamp order, with full
            low-level data — the equivalent of an LLRP capture file.
            Empty when the Select matches no tag.

        Raises:
            ReaderError: on non-positive duration or an empty environment.
        """
        if duration_s <= 0:
            raise ReaderError("duration_s must be > 0")
        keys = list(env.tag_keys())
        if not keys:
            raise ReaderError("environment contains no tags")
        if select is not None:
            keys = [k for k in keys if select.matches(env.epc(k))]
            if not keys:
                return []
        with obs.span("reader.run", tags=len(keys), duration_s=duration_s,
                      vectorized=self._config.vectorized) as span:
            if self._config.vectorized:
                reports = self._run_vectorized(env, keys, duration_s, t_start)
            else:
                reports = self._run_scalar(env, keys, duration_s, t_start)
            span.set(reports=len(reports))
        return reports

    def _run_scalar(self, env: TagEnvironment, keys: List[Hashable],
                    duration_s: float, t_start: float) -> List[TagReport]:
        """The legacy per-read path: one physics evaluation per probe/read."""

        def situational_and_pattern(key: Hashable, t: float, antenna: Antenna,
                                    pos: np.ndarray) -> float:
            situational = env.extra_loss_db(key, t, antenna)
            if math.isinf(situational):
                return math.inf
            pattern = antenna.peak_gain_dbi - antenna.gain_dbi_toward(pos)
            return situational + pattern

        def energized(key: Hashable, t: float) -> bool:
            antenna = self._scheduler.active_at(t)
            pos = env.position_m(key, t)
            return not math.isinf(situational_and_pattern(key, t, antenna, pos))

        def link_ok(key: Hashable, t: float) -> bool:
            antenna = self._scheduler.active_at(t)
            # One position evaluation threaded through loss *and* distance.
            pos = env.position_m(key, t)
            loss = situational_and_pattern(key, t, antenna, pos)
            if math.isinf(loss):
                return False
            channel = self._hops.channel_at(t)
            distance = antenna.distance_to(pos)
            rssi = self._budget.sample_read(
                distance, channel.frequency_hz, self._rng, extra_loss_db=loss
            )
            return rssi is not None

        inventory = Gen2Inventory(
            keys, config=self._gen2_config, rng=self._rng,
            link_ok=link_ok, energized=energized,
        )
        with obs.span("reader.mac"), perf.stage("reader.mac"):
            events = inventory.run_for(duration_s, t_start=t_start)

        self._snr_obs = [] if obs.enabled() else None
        with obs.span("reader.synthesize"), perf.stage("reader.synthesize"):
            reports = [
                self._build_report(env, key, t_read) for t_read, key in events
            ]
        perf.count("reader.reads_synthesized", len(reports))
        if self._snr_obs is not None:
            ports = np.array([p for p, _ in self._snr_obs], dtype=int)
            snr = np.array([s for _, s in self._snr_obs], dtype=float)
            self._snr_obs = None
            self._flush_obs_metrics(events, ports, snr)
        reports.sort(key=lambda r: r.timestamp_s)
        return reports

    def _run_vectorized(self, env: TagEnvironment, keys: List[Hashable],
                        duration_s: float, t_start: float) -> List[TagReport]:
        """The batched path: cheap MAC probes + per-tag report synthesis.

        The MAC arbitration consumes the *same* RNG draws as the scalar
        path (only `sample_read` draws there, with identical arguments), so
        both paths produce the same read-event stream for a given seed.
        Report synthesis then runs in per-tag batches; see DESIGN.md,
        "Performance architecture", for the determinism contract.

        Raises:
            ReaderError: on a negative start time.
        """
        if t_start < 0:
            raise ReaderError("t_start must be >= 0")
        antennas = self._scheduler.antennas
        n_ant = len(antennas)
        period = self._scheduler.switch_period_s

        # Situational loss is often time-invariant (declared through the
        # optional situational_loss_db_static protocol method); memoising
        # it turns the energized probe — the single hottest call of the
        # scalar path — into a dict lookup.  The antenna-pattern term is
        # always finite, so `energized` reduces to `situational < inf`.
        static_getter = getattr(env, "situational_loss_db_static", None)
        static_loss: Dict[Tuple[Hashable, int], Optional[float]] = {}
        for key in keys:
            for ai, antenna in enumerate(antennas):
                value = (static_getter(key, antenna)
                         if static_getter is not None else None)
                static_loss[(key, ai)] = value

        def energized(key: Hashable, t: float) -> bool:
            ai = int(t / period) % n_ant
            situational = static_loss[(key, ai)]
            if situational is None:
                situational = env.extra_loss_db(key, t, antennas[ai])
            return not math.isinf(situational)

        def link_ok(key: Hashable, t: float) -> bool:
            ai = int(t / period) % n_ant
            antenna = antennas[ai]
            situational = static_loss[(key, ai)]
            if situational is None:
                situational = env.extra_loss_db(key, t, antenna)
            if math.isinf(situational):
                return False
            pos = env.position_m(key, t)
            loss = situational + (
                antenna.peak_gain_dbi - antenna.gain_dbi_toward(pos)
            )
            channel = self._hops.channel_at(t)
            distance = antenna.distance_to(pos)
            rssi = self._budget.sample_read(
                distance, channel.frequency_hz, self._rng, extra_loss_db=loss
            )
            return rssi is not None

        inventory = Gen2Inventory(
            keys, config=self._gen2_config, rng=self._rng,
            link_ok=link_ok, energized=energized,
        )
        with obs.span("reader.mac"), perf.stage("reader.mac"):
            events = inventory.run_for(duration_s, t_start=t_start)

        with obs.span("reader.synthesize"), perf.stage("reader.synthesize"):
            reports = self._build_reports_batched(env, events)
        perf.count("reader.reads_synthesized", len(reports))
        reports.sort(key=lambda r: r.timestamp_s)
        return reports

    def _flush_obs_metrics(self, events: Sequence[Tuple[float, Hashable]],
                           ports: np.ndarray, snr: np.ndarray) -> None:
        """Record per-tag read counters and per-antenna mean SNR gauges.

        ``ports``/``snr`` are aligned with ``events`` (one entry per
        successful read).  Only called when the observability layer is on.
        """
        registry = obs.get_registry()
        # Count on the raw keys and stringify once per unique tag — a
        # str() per read event is measurable at paper scale.
        counts: Dict[Hashable, int] = {}
        for _, key in events:
            counts[key] = counts.get(key, 0) + 1
        for label, n in sorted((str(k), n) for k, n in counts.items()):
            registry.counter("repro_reader_tag_reads_total",
                             tag=label).inc(n)
        if snr.size:
            for port in sorted(set(int(p) for p in ports)):
                mean = float(snr[ports == port].mean())
                registry.gauge("repro_reader_snr_db_mean",
                               antenna=str(port)).set(mean)

    # ------------------------------------------------------------------
    # Report construction
    # ------------------------------------------------------------------
    def _phase_model_for(self, key: Hashable, port: int) -> PhaseModel:
        link = (key, port)
        model = self._phase_models.get(link)
        if model is None:
            model = PhaseModel(rng=self._rng)
            self._phase_models[link] = model
        return model

    def _radial_velocity(self, env: TagEnvironment, key: Hashable,
                         antenna: Antenna, t: float,
                         eps: Optional[float] = None) -> float:
        """Radial velocity toward/away from the antenna by central difference.

        The difference window is clamped into non-negative time while
        keeping its full ``2 * eps`` width, so estimates near ``t = 0`` use
        the same symmetric quotient as everywhere else instead of a
        shrunken, asymmetric one.
        """
        if eps is None:
            eps = self.VELOCITY_EPS_S
        t_lo = max(0.0, t - eps)
        t_hi = t_lo + 2.0 * eps
        d_lo = antenna.distance_to(env.position_m(key, t_lo))
        d_hi = antenna.distance_to(env.position_m(key, t_hi))
        return (d_hi - d_lo) / (2.0 * eps)

    def _reported_rssi(self, key: Hashable, antenna: Antenna, channel,
                       distance: float, loss_db: float) -> float:
        """RSSI as the reader would report it (before quantisation).

        Deterministic link budget + a static per-link fading level + a
        standing-wave ripple that moves with the tag's displacement (the
        source of Fig. 2's breathing oscillation) + small per-read jitter.
        """
        fade, ripple_phase = self._rssi_link_state(key, antenna.port, channel.index)
        base = self._budget.rx_power_dbm(
            distance, channel.frequency_hz, extra_loss_db=loss_db
        )
        ripple = self.RSSI_RIPPLE_DB * math.sin(
            4.0 * math.pi * distance / channel.wavelength_m + ripple_phase
        )
        if self.RSSI_JITTER_DB == 0.0:
            jitter = 0.0
        else:
            jitter = float(self._rng.normal(0.0, self.RSSI_JITTER_DB))
        return base + fade + ripple + jitter

    def _rssi_link_state(self, key: Hashable, port: int,
                         channel_index: int) -> Tuple[float, float]:
        """The (fade, ripple phase) pair for one RSSI link, drawn lazily.

        Zero-amplitude fades/ripples short-circuit without consuming
        randomness, so RNG-free configurations stay RNG-free — the
        precondition for exact scalar-vs-vectorized equivalence.
        """
        link = (key, port, channel_index)
        fade = self._static_fades.get(link)
        if fade is None:
            if self.RSSI_FADE_SIGMA_DB == 0.0:
                fade = 0.0
            else:
                fade = float(self._rng.normal(0.0, self.RSSI_FADE_SIGMA_DB))
            self._static_fades[link] = fade
        ripple_phase = self._ripple_phases.get(link)
        if ripple_phase is None:
            if self.RSSI_RIPPLE_DB == 0.0:
                ripple_phase = 0.0
            else:
                ripple_phase = float(self._rng.uniform(0.0, 2.0 * math.pi))
            self._ripple_phases[link] = ripple_phase
        return fade, ripple_phase

    def _build_report(self, env: TagEnvironment, key: Hashable,
                      t: float) -> TagReport:
        antenna = self._scheduler.active_at(t)
        channel = self._hops.channel_at(t)
        pos = env.position_m(key, t)
        distance = antenna.distance_to(pos)
        loss = env.extra_loss_db(key, t, antenna)
        loss = 0.0 if math.isinf(loss) else loss
        snr_db = self._budget.snr_db(distance, channel.frequency_hz, extra_loss_db=loss)
        if self._snr_obs is not None:
            self._snr_obs.append((antenna.port, snr_db))

        noise = self._phase_noise.sample(snr_db, self._rng)
        noise += self._multipath.phase_offset(
            (key, channel.index, antenna.port), t, distance
        )
        phase = self._phase_model_for(key, antenna.port).phase(distance, channel, noise)

        velocity = self._radial_velocity(env, key, antenna, t)
        doppler = doppler_report(
            velocity, channel.wavelength_m, self._rng,
            phase_noise_rad=self._phase_noise.sigma(snr_db),
        )

        rssi_dbm = self._reported_rssi(key, antenna, channel, distance, loss)
        return TagReport(
            epc=env.epc(key),
            timestamp_s=t,
            phase_rad=phase,
            rssi_dbm=quantize_rssi(rssi_dbm, self._config.rssi_resolution_db),
            doppler_hz=doppler,
            channel_index=channel.index,
            antenna_port=antenna.port,
        )

    def _build_reports_batched(self, env: TagEnvironment,
                               events: Sequence[Tuple[float, Hashable]]
                               ) -> List[TagReport]:
        """Synthesize all reports of a run in per-tag vectorized batches.

        Determinism contract (see DESIGN.md, "Performance architecture"):

        * A *pre-pass in exact event order* materialises every lazy
          per-link state — hop-sequence extension, multipath tone sets,
          circuit phase offsets, static fades, ripple phases — through the
          very same draws, in the very same order, as the per-read scalar
          path.  With per-read noise disabled this makes the two paths
          consume identical RNG streams and emit identical reports.
        * Per-read noise (phase noise, Doppler noise, RSSI jitter) is then
          drawn in whole-run batches, in event order — deterministic for a
          given seed, though interleaved differently than the scalar path.
        """
        if not events:
            return []
        n = len(events)
        ts = np.array([t for t, _ in events], dtype=float)
        keys_seq = [key for _, key in events]

        antennas = self._scheduler.antennas
        ant_idx = (ts / self._scheduler.switch_period_s).astype(int) % len(antennas)
        ports = np.array([a.port for a in antennas], dtype=int)[ant_idx]

        # --- Pre-pass: lazy per-link state, in exact event order --------
        chan_idx = np.empty(n, dtype=int)
        fades = np.empty(n, dtype=float)
        ripple_phases = np.empty(n, dtype=float)
        for i, (t, key) in enumerate(events):
            ci = self._hops.channel_index_at(t)  # may extend the hop sequence
            chan_idx[i] = ci
            port = int(ports[i])
            self._multipath.ensure_link((key, ci, port))
            self._phase_model_for(key, port)
            fades[i], ripple_phases[i] = self._rssi_link_state(key, port, ci)

        plan = self._hops.plan
        channels = [plan[i] for i in range(len(plan))]
        freqs = np.array([c.frequency_hz for c in channels])[chan_idx]
        lams = np.array([c.wavelength_m for c in channels])[chan_idx]

        # --- Geometry: one trajectory evaluation per tag ----------------
        by_key: Dict[Hashable, List[int]] = {}
        for i, key in enumerate(keys_seq):
            by_key.setdefault(key, []).append(i)

        position_array = getattr(env, "position_m_array", None)
        loss_array = getattr(env, "extra_loss_db_array", None)
        eps = self.VELOCITY_EPS_S
        dist = np.empty(n, dtype=float)
        d_lo = np.empty(n, dtype=float)
        d_hi = np.empty(n, dtype=float)
        situational = np.empty(n, dtype=float)
        for key, idx_list in by_key.items():
            idx = np.asarray(idx_list, dtype=int)
            t_read = ts[idx]
            t_lo = np.maximum(0.0, t_read - eps)
            t_hi = t_lo + 2.0 * eps
            times = np.concatenate([t_read, t_lo, t_hi])
            if position_array is not None:
                pos = position_array(key, times)
            else:
                pos = np.array([env.position_m(key, float(t)) for t in times])
            m = idx.size
            for ai in np.unique(ant_idx[idx]):
                antenna = antennas[int(ai)]
                sub = idx[ant_idx[idx] == ai]
                sel = np.flatnonzero(ant_idx[idx] == ai)
                dist[sub] = antenna.distances_to(pos[:m][sel])
                d_lo[sub] = antenna.distances_to(pos[m:2 * m][sel])
                d_hi[sub] = antenna.distances_to(pos[2 * m:][sel])
                if loss_array is not None:
                    situational[sub] = loss_array(key, ts[sub], antenna)
                else:
                    situational[sub] = [
                        env.extra_loss_db(key, float(t), antenna) for t in ts[sub]
                    ]
        velocity = (d_hi - d_lo) / (2.0 * eps)
        loss = np.where(np.isinf(situational), 0.0, situational)

        # --- Signal synthesis, one pass over all reads ------------------
        snr = self._budget.snr_db(dist, freqs, extra_loss_db=loss)
        noise = self._phase_noise.sample_array(snr, self._rng)

        phases = np.empty(n, dtype=float)
        by_link: Dict[Tuple[Hashable, int, int], List[int]] = {}
        for i, key in enumerate(keys_seq):
            by_link.setdefault((key, int(chan_idx[i]), int(ports[i])), []).append(i)
        for (key, ci, port), idx_list in by_link.items():
            idx = np.asarray(idx_list, dtype=int)
            offsets = self._multipath.phase_offset_array(
                (key, ci, port), ts[idx], dist[idx]
            )
            model = self._phase_models[(key, port)]
            phases[idx] = model.phase(dist[idx], channels[ci], noise[idx] + offsets)

        doppler = doppler_report(
            velocity, lams, self._rng,
            phase_noise_rad=self._phase_noise.sigma(snr),
        )

        base = self._budget.rx_power_dbm(dist, freqs, extra_loss_db=loss)
        ripple = self.RSSI_RIPPLE_DB * np.sin(
            4.0 * np.pi * dist / lams + ripple_phases
        )
        if self.RSSI_JITTER_DB == 0.0:
            jitter = np.zeros(n)
        else:
            jitter = self._rng.normal(0.0, self.RSSI_JITTER_DB, size=n)
        rssi = quantize_rssi(
            base + fades + ripple + jitter, self._config.rssi_resolution_db
        )

        if obs.enabled():
            self._flush_obs_metrics(events, ports, snr)

        epc_by_key = {key: env.epc(key) for key in by_key}
        return [
            TagReport(
                epc=epc_by_key[keys_seq[i]],
                timestamp_s=float(ts[i]),
                phase_rad=float(phases[i]),
                rssi_dbm=float(rssi[i]),
                doppler_hz=float(doppler[i]),
                channel_index=int(chan_idx[i]),
                antenna_port=int(ports[i]),
            )
            for i in range(n)
        ]
