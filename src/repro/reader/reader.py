"""The reader: ties hopping, antennas, the Gen2 MAC, and RF physics into
the low-level report stream the TagBreathe pipeline consumes.

This is the stand-in for the paper's Impinj Speedway R420 (Section V).
Given a :class:`TagEnvironment` — anything that can say where each tag is
at time ``t`` and how much extra loss its situation imposes — the reader
produces :class:`~repro.reader.tagreport.TagReport` records with all the
artefacts the paper characterises in Section IV-A:

* phase values that jump at every frequency hop (per-channel offset),
* RSSI quantised to 0.5 dBm,
* noisy raw Doppler,
* irregular read timing from slotted-ALOHA arbitration,
* read rates that collapse with distance, contention, and blockage.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..config import ReaderConfig
from ..epc.codec import EPC96
from ..epc.gen2 import Gen2Config, Gen2Inventory
from ..epc.select import SelectCommand
from ..errors import ReaderError
from ..rf.channel import ChannelPlan
from ..rf.doppler import doppler_report
from ..rf.noise import DynamicMultipath, PhaseNoiseModel, quantize_rssi
from ..rf.phase import PhaseModel
from ..rf.propagation import LinkBudget
from .antenna import Antenna, RoundRobinScheduler
from .hopping import HopSchedule
from .tagreport import TagReport


class TagEnvironment(Protocol):
    """What the reader needs to know about the world.

    Implemented by :class:`repro.sim.scenario.Scenario`; any object with
    these methods works (e.g. a replayer of recorded traces).
    """

    def tag_keys(self) -> Sequence[Hashable]:
        """Identities of every tag in the field (monitoring + contending)."""
        ...

    def epc(self, key: Hashable) -> EPC96:
        """The 96-bit EPC the tag backscatters."""
        ...

    def position_m(self, key: Hashable, t: float) -> np.ndarray:
        """Tag position (3-vector, metres) at time ``t`` — includes the
        breathing displacement, which is the signal of interest."""
        ...

    def extra_loss_db(self, key: Hashable, t: float, antenna: Antenna) -> float:
        """Situational one-way loss [dB] beyond geometry: orientation gain
        reduction and body blockage.  ``math.inf`` means the LOS path is
        fully blocked and the tag cannot be energised at all (Fig. 15,
        orientation > 90 degrees)."""
        ...


class Reader:
    """An R420-class reader over a simulated (or replayed) environment.

    Args:
        config: reader parameters (power, channels, dwell, antennas).
        antennas: connected antennas; defaults to one panel at (0, 0, 1) m
            facing +x, matching the paper's setup ("the location of the
            antenna 1 m above the ground").
        channel_plan: hop channels; defaults to the 10-channel plan.
        link_budget: RF link model; ``tx_power_dbm``/``reader_gain_dbi``
            are overridden from ``config``/antenna if not given.
        phase_noise: phase-noise-vs-SNR model.
        gen2: MAC timing parameters.
        rng: random source; pass a seeded generator for reproducible runs.

    Raises:
        ReaderError: if the antenna count disagrees with ``config``.
    """

    def __init__(
        self,
        config: Optional[ReaderConfig] = None,
        antennas: Optional[Sequence[Antenna]] = None,
        channel_plan: Optional[ChannelPlan] = None,
        link_budget: Optional[LinkBudget] = None,
        phase_noise: Optional[PhaseNoiseModel] = None,
        multipath: Optional[DynamicMultipath] = None,
        gen2: Optional[Gen2Config] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._config = config if config is not None else ReaderConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        if antennas is None:
            antennas = [
                Antenna(port=i + 1, position_m=(0.0, 0.0, 1.0), boresight=(1.0, 0.0, 0.0),
                        peak_gain_dbi=self._config.antenna_gain_dbic)
                for i in range(self._config.num_antennas)
            ]
        if len(antennas) != self._config.num_antennas:
            raise ReaderError(
                f"config says {self._config.num_antennas} antennas, got {len(antennas)}"
            )
        self._scheduler = RoundRobinScheduler(
            antennas, switch_period_s=self._config.channel_dwell_s
        )
        plan = channel_plan if channel_plan is not None else ChannelPlan.default(
            self._config.num_channels, rng=self._rng
        )
        self._hops = HopSchedule(plan, dwell_s=self._config.channel_dwell_s, rng=self._rng)
        if link_budget is None:
            link_budget = LinkBudget(
                tx_power_dbm=self._config.tx_power_dbm,
                reader_gain_dbi=self._config.antenna_gain_dbic,
            )
        self._budget = link_budget
        self._phase_noise = phase_noise if phase_noise is not None else PhaseNoiseModel()
        self._multipath = (multipath if multipath is not None
                           else DynamicMultipath(rng=self._rng))
        self._gen2_config = gen2 if gen2 is not None else Gen2Config()
        # Fixed per-link circuit phase offsets: one per (tag, antenna port).
        self._phase_models: Dict[Tuple[Hashable, int], PhaseModel] = {}
        # Static per-(tag, antenna, channel) fading for *reported* RSSI:
        # with nothing moving, the standing-wave pattern is fixed, so real
        # readers report a stable per-link RSSI level rather than a fresh
        # fading draw per read.
        self._static_fades: Dict[Tuple[Hashable, int, int], float] = {}
        # Per-link phase of the standing-wave ripple that couples RSSI to
        # tag displacement — the mechanism behind the visible breathing
        # oscillation of the paper's Fig. 2.
        self._ripple_phases: Dict[Tuple[Hashable, int, int], float] = {}

    #: Peak-to-mid amplitude [dB] of the standing-wave RSSI ripple.  A
    #: breathing displacement of ~1 cm sweeps ~0.4 rad of round-trip phase,
    #: so a 1.5 dB ripple produces the ~0.5-1 dB oscillation Fig. 2 shows.
    RSSI_RIPPLE_DB = 1.5

    #: Per-read RSSI jitter sigma [dB] before 0.5 dB quantisation.
    RSSI_JITTER_DB = 0.15

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def config(self) -> ReaderConfig:
        """The reader configuration."""
        return self._config

    @property
    def hop_schedule(self) -> HopSchedule:
        """The frequency-hop schedule in force."""
        return self._hops

    @property
    def antenna_scheduler(self) -> RoundRobinScheduler:
        """The round-robin antenna scheduler."""
        return self._scheduler

    @property
    def link_budget(self) -> LinkBudget:
        """The RF link budget used for read-success and RSSI."""
        return self._budget

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def run(self, env: TagEnvironment, duration_s: float,
            t_start: float = 0.0,
            select: Optional[SelectCommand] = None) -> List[TagReport]:
        """Continuously inventory ``env`` for ``duration_s`` seconds.

        Args:
            env: the tag environment.
            duration_s: inventory length.
            t_start: absolute start time.
            select: optional Gen2 Select; only tags whose EPC matches
                participate in the inventory at all (the MAC-level filter
                of :mod:`repro.epc.select`).  None inventories everything.

        Returns:
            All successful tag reads, in timestamp order, with full
            low-level data — the equivalent of an LLRP capture file.
            Empty when the Select matches no tag.

        Raises:
            ReaderError: on non-positive duration or an empty environment.
        """
        if duration_s <= 0:
            raise ReaderError("duration_s must be > 0")
        keys = list(env.tag_keys())
        if not keys:
            raise ReaderError("environment contains no tags")
        if select is not None:
            keys = [k for k in keys if select.matches(env.epc(k))]
            if not keys:
                return []

        def total_extra_loss(key: Hashable, t: float, antenna: Antenna) -> float:
            pos = env.position_m(key, t)
            situational = env.extra_loss_db(key, t, antenna)
            if math.isinf(situational):
                return math.inf
            pattern = antenna.peak_gain_dbi - antenna.gain_dbi_toward(pos)
            return situational + pattern

        def energized(key: Hashable, t: float) -> bool:
            antenna = self._scheduler.active_at(t)
            return not math.isinf(total_extra_loss(key, t, antenna))

        def link_ok(key: Hashable, t: float) -> bool:
            antenna = self._scheduler.active_at(t)
            loss = total_extra_loss(key, t, antenna)
            if math.isinf(loss):
                return False
            channel = self._hops.channel_at(t)
            distance = antenna.distance_to(env.position_m(key, t))
            rssi = self._budget.sample_read(
                distance, channel.frequency_hz, self._rng, extra_loss_db=loss
            )
            return rssi is not None

        inventory = Gen2Inventory(
            keys, config=self._gen2_config, rng=self._rng,
            link_ok=link_ok, energized=energized,
        )
        events = inventory.run_for(duration_s, t_start=t_start)

        reports = [
            self._build_report(env, key, t_read) for t_read, key in events
        ]
        reports.sort(key=lambda r: r.timestamp_s)
        return reports

    # ------------------------------------------------------------------
    # Report construction
    # ------------------------------------------------------------------
    def _phase_model_for(self, key: Hashable, port: int) -> PhaseModel:
        link = (key, port)
        model = self._phase_models.get(link)
        if model is None:
            model = PhaseModel(rng=self._rng)
            self._phase_models[link] = model
        return model

    def _radial_velocity(self, env: TagEnvironment, key: Hashable,
                         antenna: Antenna, t: float, eps: float = 0.01) -> float:
        """Radial velocity toward/away from the antenna by central difference."""
        t_lo = max(0.0, t - eps)
        d_lo = antenna.distance_to(env.position_m(key, t_lo))
        d_hi = antenna.distance_to(env.position_m(key, t + eps))
        return (d_hi - d_lo) / (t + eps - t_lo)

    def _reported_rssi(self, key: Hashable, antenna: Antenna, channel,
                       distance: float, loss_db: float) -> float:
        """RSSI as the reader would report it (before quantisation).

        Deterministic link budget + a static per-link fading level + a
        standing-wave ripple that moves with the tag's displacement (the
        source of Fig. 2's breathing oscillation) + small per-read jitter.
        """
        link = (key, antenna.port, channel.index)
        fade = self._static_fades.get(link)
        if fade is None:
            fade = float(self._rng.normal(0.0, 2.0))
            self._static_fades[link] = fade
        ripple_phase = self._ripple_phases.get(link)
        if ripple_phase is None:
            ripple_phase = float(self._rng.uniform(0.0, 2.0 * math.pi))
            self._ripple_phases[link] = ripple_phase
        base = self._budget.rx_power_dbm(
            distance, channel.frequency_hz, extra_loss_db=loss_db
        )
        ripple = self.RSSI_RIPPLE_DB * math.sin(
            4.0 * math.pi * distance / channel.wavelength_m + ripple_phase
        )
        jitter = float(self._rng.normal(0.0, self.RSSI_JITTER_DB))
        return base + fade + ripple + jitter

    def _build_report(self, env: TagEnvironment, key: Hashable,
                      t: float) -> TagReport:
        antenna = self._scheduler.active_at(t)
        channel = self._hops.channel_at(t)
        pos = env.position_m(key, t)
        distance = antenna.distance_to(pos)
        loss = env.extra_loss_db(key, t, antenna)
        loss = 0.0 if math.isinf(loss) else loss
        snr_db = self._budget.snr_db(distance, channel.frequency_hz, extra_loss_db=loss)

        noise = self._phase_noise.sample(snr_db, self._rng)
        noise += self._multipath.phase_offset(
            (key, channel.index, antenna.port), t, distance
        )
        phase = self._phase_model_for(key, antenna.port).phase(distance, channel, noise)

        velocity = self._radial_velocity(env, key, antenna, t)
        doppler = doppler_report(
            velocity, channel.wavelength_m, self._rng,
            phase_noise_rad=self._phase_noise.sigma(snr_db),
        )

        rssi_dbm = self._reported_rssi(key, antenna, channel, distance, loss)
        return TagReport(
            epc=env.epc(key),
            timestamp_s=t,
            phase_rad=phase,
            rssi_dbm=quantize_rssi(rssi_dbm, self._config.rssi_resolution_db),
            doppler_hz=doppler,
            channel_index=channel.index,
            antenna_port=antenna.port,
        )
