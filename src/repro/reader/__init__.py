"""Commodity-reader model: the Impinj R420 equivalent of the paper.

Produces the exact low-level data tuple the paper's prototype consumed via
the LLRP Toolkit: received signal strength, raw phase value, raw Doppler
shift, time stamp, tag EPC, channel index, and antenna port (Sections
IV-A and V).
"""

from .tagreport import TagReport
from .batch import ReportBatch
from .hopping import HopSchedule
from .antenna import Antenna, RoundRobinScheduler
from .reader import Reader, TagEnvironment
from .llrp import LLRPClient, ROSpec
from .sniffer import DecodedFrame, ProtocolSniffer, SnifferReport

__all__ = [
    "DecodedFrame",
    "ProtocolSniffer",
    "SnifferReport",
    "TagReport",
    "ReportBatch",
    "HopSchedule",
    "Antenna",
    "RoundRobinScheduler",
    "Reader",
    "TagEnvironment",
    "LLRPClient",
    "ROSpec",
]
