"""Air-protocol sniffer: classify and decode captured Gen2 frames.

The decode-side complement of :class:`repro.epc.transcript.TranscriptBuilder`:
given raw frames captured off the air (reader bit strings, tag byte
replies), it classifies each frame, decodes its fields, and aggregates a
session-level protocol report — rounds observed, Q values used, reads
per second, airtime share per frame type.

Useful for debugging MAC behaviour and for validating that transcripts
round-trip: ``sniff(build(...)) == what was built``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from ..epc.codec import EPC96
from ..epc.commands import (
    QueryCommand,
    decode_ack,
    decode_query_adjust,
    decode_query_rep,
    parse_epc_reply,
)
from ..epc.transcript import RoundTranscript
from ..errors import EPCError


@dataclass(frozen=True)
class DecodedFrame:
    """One classified air frame.

    Attributes:
        direction: "reader" or "tag".
        kind: "query", "query_rep", "query_adjust", "ack", "rn16",
            "epc_reply", or "unknown".
        fields: decoded payload (kind-specific).
    """

    direction: str
    kind: str
    fields: dict


def classify_reader_frame(bits: str) -> DecodedFrame:
    """Classify + decode one reader-to-tag bit frame.

    Unknown/garbled frames come back as kind "unknown" rather than
    raising — a sniffer must survive corruption.
    """
    try:
        if len(bits) == 22 and bits.startswith("1000"):
            query = QueryCommand.decode(bits)
            return DecodedFrame("reader", "query", {
                "q": query.q, "session": query.session, "target": query.target,
            })
        if len(bits) == 4 and bits.startswith("00"):
            return DecodedFrame("reader", "query_rep",
                                {"session": decode_query_rep(bits)})
        if len(bits) == 9 and bits.startswith("1001"):
            session, updn = decode_query_adjust(bits)
            return DecodedFrame("reader", "query_adjust",
                                {"session": session, "updn": updn})
        if len(bits) == 18 and bits.startswith("01"):
            return DecodedFrame("reader", "ack", {"rn16": decode_ack(bits)})
    except (EPCError, ValueError):
        # ValueError: right-length frame whose payload is not even binary
        # (int(..., 2) chokes) — still just a garbled capture, not a bug.
        pass
    return DecodedFrame("reader", "unknown", {"bits": bits})


def classify_tag_frame(payload: bytes) -> DecodedFrame:
    """Classify + decode one tag-to-reader byte frame."""
    if len(payload) == 2:
        return DecodedFrame("tag", "rn16",
                            {"rn16": int.from_bytes(payload, "big")})
    try:
        epc_bytes = parse_epc_reply(payload)
        return DecodedFrame("tag", "epc_reply", {
            "epc": EPC96(int.from_bytes(epc_bytes, "big"))
            if len(epc_bytes) == 12 else None,
            "epc_bytes": epc_bytes,
        })
    except EPCError:
        return DecodedFrame("tag", "unknown", {"bytes": payload})


@dataclass
class SnifferReport:
    """Aggregate statistics over a sniffed session.

    Attributes:
        frames: every decoded frame in capture order.
        rounds: number of Query commands seen (= inventory rounds).
        q_values: Q of each observed Query.
        identified: EPCs successfully decoded from replies.
        frame_counts: frames per kind.
    """

    frames: List[DecodedFrame] = field(default_factory=list)
    rounds: int = 0
    q_values: List[int] = field(default_factory=list)
    identified: List[EPC96] = field(default_factory=list)
    frame_counts: Counter = field(default_factory=Counter)

    def summary(self) -> str:
        """One-paragraph human-readable session summary."""
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(self.frame_counts.items()))
        q_part = (f", Q in [{min(self.q_values)}, {max(self.q_values)}]"
                  if self.q_values else "")
        return (
            f"{len(self.frames)} frames over {self.rounds} rounds{q_part}; "
            f"{len(self.identified)} EPCs identified; {kinds}"
        )


class ProtocolSniffer:
    """Decodes a stream of captured frames into a session report."""

    def __init__(self) -> None:
        self._report = SnifferReport()

    @property
    def report(self) -> SnifferReport:
        """The running session report."""
        return self._report

    def feed_reader_frame(self, bits: str) -> DecodedFrame:
        """Ingest one reader frame."""
        frame = classify_reader_frame(bits)
        self._account(frame)
        return frame

    def feed_tag_frame(self, payload: bytes) -> DecodedFrame:
        """Ingest one tag frame."""
        frame = classify_tag_frame(payload)
        self._account(frame)
        return frame

    def feed_transcript(self, transcript: RoundTranscript) -> None:
        """Ingest every frame of a built round transcript, in air order."""
        for exchange in transcript.exchanges:
            frames: List[Tuple[str, Union[str, bytes]]] = []
            frames.append(("reader", exchange.reader_frames[0]))
            if exchange.tag_frames:
                frames.append(("tag", exchange.tag_frames[0]))
            for extra in exchange.reader_frames[1:]:
                frames.append(("reader", extra))
            for extra in exchange.tag_frames[1:]:
                frames.append(("tag", extra))
            for direction, frame in frames:
                if direction == "reader":
                    self.feed_reader_frame(frame)  # type: ignore[arg-type]
                else:
                    self.feed_tag_frame(frame)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def _account(self, frame: DecodedFrame) -> None:
        report = self._report
        report.frames.append(frame)
        report.frame_counts[frame.kind] += 1
        if frame.kind == "query":
            report.rounds += 1
            report.q_values.append(frame.fields["q"])
        elif frame.kind == "epc_reply" and frame.fields.get("epc") is not None:
            report.identified.append(frame.fields["epc"])
