"""Backscatter link budget: path loss, tag power-up, reader RSSI, SNR.

This module models why the paper's figures bend the way they do:

* **Fig. 12** (accuracy vs distance): backscatter power falls with the
  *fourth* power of distance (two traversals of free space), so SNR and the
  per-tag read rate degrade from 1 m to 6 m.
* **Fig. 15(b)** (RSSI / read rate vs orientation): the tag's effective gain
  falls as the user rotates, so the *power-up margin* shrinks and fewer
  interrogation attempts succeed — but the RSSI of the reads that *do*
  succeed stays roughly flat, exactly the selection effect the paper
  observes ("the RSSI of the backscatter signal does not change much" while
  "the reading rate decreases from 50 Hz ... to 10 Hz").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..units import linear_to_db, wavelength


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with optional small-scale fading.

    Attributes:
        exponent: path-loss exponent per traversal (2.0 = free space; indoor
            office LOS is typically 1.8–2.2).
        fading_sigma_db: sigma of per-attempt lognormal fading (multipath in
            the paper's office: desks, chairs, fans).
        reference_m: reference distance for the log-distance formula.
    """

    exponent: float = 2.2
    fading_sigma_db: float = 3.0
    reference_m: float = 1.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigError("path-loss exponent must be > 0")
        if self.fading_sigma_db < 0:
            raise ConfigError("fading_sigma_db must be >= 0")
        if self.reference_m <= 0:
            raise ConfigError("reference_m must be > 0")

    def one_way_loss_db(self, distance_m, frequency_hz):
        """Deterministic one-way path loss [dB] at ``distance_m``.

        Free-space loss at the reference distance plus log-distance rolloff.
        Broadcasts over arrays of distances and/or frequencies; scalar
        inputs return a plain ``float``.

        Raises:
            ValueError: if any ``distance_m`` is not strictly positive.
        """
        if np.ndim(distance_m) == 0 and np.ndim(frequency_hz) == 0:
            if distance_m <= 0:
                raise ValueError(f"distance must be > 0, got {distance_m}")
            lam = wavelength(frequency_hz)
            fspl_ref = 2.0 * linear_to_db(4.0 * np.pi * self.reference_m / lam)
            rolloff = 10.0 * self.exponent * np.log10(distance_m / self.reference_m)
            return fspl_ref + rolloff
        d = np.asarray(distance_m, dtype=float)
        if np.any(d <= 0):
            raise ValueError("distance must be > 0")
        lam = wavelength(frequency_hz)
        fspl_ref = 2.0 * linear_to_db(4.0 * np.pi * self.reference_m / lam)
        rolloff = 10.0 * self.exponent * np.log10(d / self.reference_m)
        return fspl_ref + rolloff

    def sample_fading_db(self, rng: np.random.Generator, size=None):
        """Draw(s) of the small-scale fading term [dB].

        With ``size=None`` returns one ``float`` draw; otherwise an array
        of independent draws.  Zero sigma consumes no randomness.
        """
        if self.fading_sigma_db == 0.0:
            return 0.0 if size is None else np.zeros(size)
        if size is None:
            return float(rng.normal(0.0, self.fading_sigma_db))
        return rng.normal(0.0, self.fading_sigma_db, size=size)


@dataclass(frozen=True)
class LinkBudget:
    """End-to-end backscatter link budget for one reader–tag pair.

    Power flows reader -> tag (tag must harvest enough to power up) and
    tag -> reader (reader must decode the backscatter).  For passive UHF
    tags the *forward* link (power-up) is the binding constraint, which is
    why read rate collapses before RSSI does.

    Attributes:
        tx_power_dbm: reader transmit power (Table I: 15–30 dBm).
        reader_gain_dbi: reader antenna gain (8.5 dBic ALR-8696-C).
        tag_gain_dbi: tag antenna peak gain (dipole-ish, ~2 dBi).
        on_body_loss_db: attenuation from mounting the tag on clothing over
            a human body (detuning + absorption).
        polarization_loss_db: circular reader -> linear tag mismatch (3 dB).
        modulation_loss_db: backscatter modulation loss.
        tag_sensitivity_dbm: minimum harvested power for the tag chip to
            respond (Alien Higgs-3 class: about -18 dBm).
        reader_sensitivity_dbm: minimum backscatter power the reader
            decodes (Impinj R420: about -84 dBm).
        noise_floor_dbm: reader receive noise floor for SNR purposes.
        path_loss: the underlying path-loss model.
    """

    tx_power_dbm: float = 30.0
    reader_gain_dbi: float = 8.5
    tag_gain_dbi: float = 2.0
    on_body_loss_db: float = 5.0
    polarization_loss_db: float = 3.0
    modulation_loss_db: float = 6.0
    tag_sensitivity_dbm: float = -18.0
    reader_sensitivity_dbm: float = -84.0
    noise_floor_dbm: float = -80.0
    path_loss: PathLossModel = PathLossModel()

    def __post_init__(self) -> None:
        if not 0.0 <= self.on_body_loss_db <= 40.0:
            raise ConfigError("on_body_loss_db must be within [0, 40] dB")

    # ------------------------------------------------------------------
    # Deterministic budget terms
    # ------------------------------------------------------------------
    def link_powers_dbm(self, distance_m, frequency_hz, extra_loss_db=0.0):
        """``(tag_power_dbm, rx_power_dbm)`` with path loss evaluated once.

        The hot paths (per-slot interrogation, batched report synthesis)
        need both ends of the budget; computing the one-way loss a single
        time here keeps the arithmetic — and the resulting floats —
        identical to calling :meth:`tag_power_dbm` then :meth:`rx_power_dbm`
        at roughly half the cost.  Broadcasts over arrays.
        """
        loss = self.path_loss.one_way_loss_db(distance_m, frequency_hz)
        tag_p = (
            self.tx_power_dbm
            + self.reader_gain_dbi
            + self.tag_gain_dbi
            - loss
            - self.on_body_loss_db
            - self.polarization_loss_db
            - extra_loss_db
        )
        rx_p = (
            tag_p
            - self.modulation_loss_db
            + self.tag_gain_dbi
            + self.reader_gain_dbi
            - loss
            - self.polarization_loss_db
        )
        return tag_p, rx_p

    def tag_power_dbm(self, distance_m, frequency_hz, extra_loss_db=0.0):
        """Power harvested by the tag chip [dBm] (broadcasts).

        Args:
            distance_m: one-way antenna–tag distance(s).
            frequency_hz: active channel frequency (scalar or array).
            extra_loss_db: scenario-dependent loss (orientation gain
                reduction, body blockage, ...) applied on the forward link.
        """
        return (
            self.tx_power_dbm
            + self.reader_gain_dbi
            + self.tag_gain_dbi
            - self.path_loss.one_way_loss_db(distance_m, frequency_hz)
            - self.on_body_loss_db
            - self.polarization_loss_db
            - extra_loss_db
        )

    def rx_power_dbm(self, distance_m, frequency_hz, extra_loss_db=0.0):
        """Backscatter power arriving at the reader [dBm] (broadcasts).

        ``extra_loss_db`` is applied on the *forward* link only (via
        :meth:`tag_power_dbm`).  Situational losses — orientation, partial
        shadowing — primarily starve the tag chip of harvest power, while
        the backscatter it does emit reaches the reader through the rich
        multipath of an indoor office.  This matches the paper's Fig. 15
        measurement: RSSI of successful reads "does not change much" from
        0 to 90 degrees even as the read rate collapses.
        """
        return (
            self.tag_power_dbm(distance_m, frequency_hz, extra_loss_db)
            - self.modulation_loss_db
            + self.tag_gain_dbi
            + self.reader_gain_dbi
            - self.path_loss.one_way_loss_db(distance_m, frequency_hz)
            - self.polarization_loss_db
        )

    def snr_db(self, distance_m, frequency_hz, extra_loss_db=0.0):
        """Receive SNR [dB] of the backscatter signal (broadcasts)."""
        return self.rx_power_dbm(distance_m, frequency_hz, extra_loss_db) - self.noise_floor_dbm

    # ------------------------------------------------------------------
    # Stochastic per-attempt outcome
    # ------------------------------------------------------------------
    def read_success_probability(self, distance_m, frequency_hz,
                                 extra_loss_db=0.0):
        """Probability one interrogation attempt yields a successful read.

        An attempt succeeds when the faded tag power clears the chip
        sensitivity AND the faded backscatter clears reader sensitivity.
        With Gaussian dB fading both margins give Q-function tails; the
        forward link dominates for passive tags.  Broadcasts over arrays.
        """
        sigma = self.path_loss.fading_sigma_db
        tag_p, rx_p = self.link_powers_dbm(distance_m, frequency_hz, extra_loss_db)
        fwd_margin = tag_p - self.tag_sensitivity_dbm
        rev_margin = rx_p - self.reader_sensitivity_dbm
        p_fwd = _gaussian_clear_probability(fwd_margin, sigma)
        p_rev = _gaussian_clear_probability(rev_margin, sigma)
        return p_fwd * p_rev

    def sample_read(self, distance_m: float, frequency_hz: float,
                    rng: np.random.Generator,
                    extra_loss_db: float = 0.0) -> Optional[float]:
        """Simulate one interrogation attempt.

        Returns:
            The (un-quantised) RSSI in dBm of a successful read, or ``None``
            when the attempt fails.  The returned RSSI includes the fading
            draw that made this attempt succeed — the selection effect that
            keeps observed RSSI flat while the success rate collapses.
        """
        fade = self.path_loss.sample_fading_db(rng)
        tag_p, rx_p = self.link_powers_dbm(distance_m, frequency_hz, extra_loss_db)
        if tag_p + fade < self.tag_sensitivity_dbm:
            return None
        if rx_p + fade < self.reader_sensitivity_dbm:
            return None
        return rx_p + fade


def _gaussian_clear_probability(margin_db, sigma_db):
    """P(margin + N(0, sigma) > 0), broadcasting over ``margin_db``."""
    if np.ndim(margin_db) == 0:
        if sigma_db == 0.0:
            return 1.0 if margin_db > 0 else 0.0
        from math import erf, sqrt

        return 0.5 * (1.0 + erf(margin_db / (sigma_db * sqrt(2.0))))
    margin = np.asarray(margin_db, dtype=float)
    if sigma_db == 0.0:
        return (margin > 0).astype(float)
    try:
        from scipy.special import erf as _erf
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        from math import erf as _math_erf

        _erf = np.vectorize(_math_erf)
    return 0.5 * (1.0 + _erf(margin / (sigma_db * np.sqrt(2.0))))
