"""Frequency channels and the hop plan.

A :class:`Channel` bundles a centre frequency with the constant phase offset
``c`` of Eq. (1): "c is a constant phase offset which captures the influence
of reader and tag circuits independent of the distance".  Crucially, ``c``
*differs per channel* — "when the reader hops to neighbor channels, the
wavelength and the phase offset c in Eq.(1) also change, leading to
discontinuity of phase values every 0.2 s" (Section IV-A-3).  That
discontinuity is the whole reason the preprocessing stage exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..units import wavelength, wrap_phase
from .constants import fcc_channel_frequencies


@dataclass(frozen=True)
class Channel:
    """One frequency channel of the hop plan.

    Attributes:
        index: 0-based channel index as reported in the low-level data.
        frequency_hz: carrier centre frequency.
        phase_offset_rad: the channel's constant offset ``c`` in Eq. (1).
    """

    index: int
    frequency_hz: float
    phase_offset_rad: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigError("channel index must be >= 0")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be > 0")

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength [m]."""
        return wavelength(self.frequency_hz)


class ChannelPlan:
    """An ordered set of hop channels with per-channel phase offsets.

    Args:
        frequencies_hz: channel centre frequencies.
        phase_offsets_rad: per-channel constant offsets ``c``; randomly drawn
            when omitted (they model circuit group delay, which is arbitrary
            but fixed for a given tag/reader/channel combination).
        rng: random source for drawing offsets.

    Raises:
        ConfigError: on empty plans or mismatched offset lengths.
    """

    def __init__(
        self,
        frequencies_hz: Sequence[float],
        phase_offsets_rad: Optional[Sequence[float]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if len(frequencies_hz) == 0:
            raise ConfigError("channel plan must contain at least one channel")
        if phase_offsets_rad is None:
            rng = rng if rng is not None else np.random.default_rng()
            phase_offsets_rad = rng.uniform(0.0, 2.0 * np.pi, size=len(frequencies_hz))
        if len(phase_offsets_rad) != len(frequencies_hz):
            raise ConfigError(
                f"{len(phase_offsets_rad)} offsets for {len(frequencies_hz)} channels"
            )
        self._channels: List[Channel] = [
            Channel(i, float(f), wrap_phase(float(c)))
            for i, (f, c) in enumerate(zip(frequencies_hz, phase_offsets_rad))
        ]

    @classmethod
    def default(cls, num_channels: int = 10,
                rng: Optional[np.random.Generator] = None) -> "ChannelPlan":
        """The paper's observed plan: 10 channels across 902–928 MHz (Fig. 5)."""
        return cls(fcc_channel_frequencies(num_channels), rng=rng)

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels)

    def __getitem__(self, index: int) -> Channel:
        return self._channels[index]

    @property
    def channels(self) -> List[Channel]:
        """All channels in hop order."""
        return list(self._channels)

    def frequencies(self) -> np.ndarray:
        """Channel centre frequencies as an array."""
        return np.array([ch.frequency_hz for ch in self._channels])

    def min_wavelength_m(self) -> float:
        """Shortest wavelength in the plan (worst case for phase ambiguity)."""
        return min(ch.wavelength_m for ch in self._channels)
