"""Tag-chip physical layer: the two-state backscatter constellation (Fig. 1).

    "RFID tags modulate incoming radio signals by either reflecting or
    absorbing the radio signals which results in two possible states
    (i.e., High (H) and Low (L)). The physical layer symbols ... exhibit
    two clusters (i.e., H1 and L) in the constellation map ... The
    magnitude of vector L->H1 measures the received signal strength, while
    theta measures the phase value of the backscatter signals.  Due to
    Doppler frequency shift, one symbol cluster may rotate (e.g., from H1
    to H2) in the constellation map during one packet transmission."

This module synthesises the I/Q symbol clusters of Fig. 1 so the
low-level quantities the rest of the library consumes (RSSI = |L->H|,
phase = angle(L->H), Doppler = intra-packet cluster rotation) are
grounded in an explicit physical-layer model, and so constellation-level
diagnostics (cluster separation, symbol SNR) are testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..units import wrap_phase


@dataclass(frozen=True)
class ConstellationSnapshot:
    """The reader's I/Q view of one backscatter packet.

    Attributes:
        low_iq: complex centroid of the absorbing (L) cluster — the
            environment's leakage/self-jammer residue.
        high_start_iq: reflecting-state centroid at packet start (H1).
        high_end_iq: reflecting-state centroid at packet end (H2).
        symbols_low / symbols_high: the raw noisy symbols.
    """

    low_iq: complex
    high_start_iq: complex
    high_end_iq: complex
    symbols_low: np.ndarray
    symbols_high: np.ndarray

    @property
    def backscatter_vector(self) -> complex:
        """The L -> H1 vector whose magnitude/angle give RSSI/phase."""
        return self.high_start_iq - self.low_iq

    @property
    def rssi_linear(self) -> float:
        """Backscatter signal strength |L -> H1| (linear amplitude)."""
        return abs(self.backscatter_vector)

    @property
    def phase_rad(self) -> float:
        """Reported phase: angle of L -> H1, wrapped to [0, 2*pi)."""
        return wrap_phase(float(np.angle(self.backscatter_vector)))

    @property
    def intra_packet_rotation_rad(self) -> float:
        """Delta-theta of Eq. (2): rotation of the H cluster H1 -> H2."""
        v1 = self.high_start_iq - self.low_iq
        v2 = self.high_end_iq - self.low_iq
        if v1 == 0 or v2 == 0:
            return 0.0
        rotation = float(np.angle(v2 / v1))
        return rotation

    def cluster_separation(self) -> float:
        """|L -> H1| over the pooled cluster spread — the decode margin.

        Below ~3 the two clusters blur together and the reader cannot
        slice symbols reliably (a MAC 'link failure' slot).
        """
        spread = float(np.std(np.concatenate([
            self.symbols_low - self.low_iq,
            self.symbols_high - self.high_start_iq,
        ])))
        if spread == 0:
            return float("inf")
        return self.rssi_linear / spread


class TagChipModel:
    """Synthesises Fig. 1-style constellations for a backscatter link.

    Args:
        modulation_depth: |reflection coefficient difference| between the
            H and L impedance states, 0-1 (typical passive tags ~0.5).
        leakage_iq: the reader's self-jammer/environment leakage centroid
            (where the L cluster sits in the I/Q plane).

    Raises:
        ConfigError: on an out-of-range modulation depth.
    """

    def __init__(self, modulation_depth: float = 0.5,
                 leakage_iq: complex = 0.3 + 0.2j) -> None:
        if not 0.0 < modulation_depth <= 1.0:
            raise ConfigError("modulation_depth must be in (0, 1]")
        self._depth = float(modulation_depth)
        self._leakage = complex(leakage_iq)

    def snapshot(
        self,
        amplitude: float,
        phase_rad: float,
        rotation_rad: float = 0.0,
        noise_sigma: float = 0.01,
        symbols_per_state: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> ConstellationSnapshot:
        """One packet's constellation.

        Args:
            amplitude: backscatter amplitude (sets |L -> H|).
            phase_rad: backscatter phase (Eq. 1 output for this link).
            rotation_rad: intra-packet phase rotation (Doppler, Eq. 2).
            noise_sigma: per-symbol complex noise sigma.
            symbols_per_state: symbols drawn per cluster.
            rng: random source.

        Raises:
            ConfigError: on non-positive amplitude or symbol count.
        """
        if amplitude <= 0:
            raise ConfigError("amplitude must be > 0")
        if symbols_per_state < 1:
            raise ConfigError("symbols_per_state must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        h_vector = self._depth * amplitude * np.exp(1j * phase_rad)
        h1 = self._leakage + h_vector
        h2 = self._leakage + h_vector * np.exp(1j * rotation_rad)

        def cluster(center: complex) -> np.ndarray:
            noise = rng.normal(0, noise_sigma, symbols_per_state) \
                + 1j * rng.normal(0, noise_sigma, symbols_per_state)
            return center + noise

        low_symbols = cluster(self._leakage)
        # The H cluster drifts from H1 to H2 across the packet.
        fractions = np.linspace(0.0, 1.0, symbols_per_state)
        centers = self._leakage + h_vector * np.exp(1j * rotation_rad * fractions)
        high_symbols = centers + (
            rng.normal(0, noise_sigma, symbols_per_state)
            + 1j * rng.normal(0, noise_sigma, symbols_per_state)
        )
        return ConstellationSnapshot(
            low_iq=complex(np.mean(low_symbols)),
            high_start_iq=complex(h1),
            high_end_iq=complex(h2),
            symbols_low=low_symbols,
            symbols_high=high_symbols,
        )
