"""UHF RFID band constants (FCC Part 15, the regime the paper operates in).

The paper's system operates "at the Ultra-High Frequency (UHF) band between
902 MHz and 928 MHz" (Section V) and hops among 10 frequency channels
(Fig. 5).  The real FCC plan has 50 channels at 500 kHz spacing; readers use
a pseudo-random subset/sequence.  We expose both the full plan and the
10-channel subset the paper observed.
"""

from __future__ import annotations

from typing import List

#: Lower edge of the US UHF RFID band [Hz].
UHF_BAND_LOW_HZ = 902_000_000.0

#: Upper edge of the US UHF RFID band [Hz].
UHF_BAND_HIGH_HZ = 928_000_000.0

#: FCC channel spacing [Hz].
FCC_CHANNEL_SPACING_HZ = 500_000.0

#: First FCC channel centre [Hz] (channel 1 centred at 902.75 MHz).
FCC_FIRST_CHANNEL_HZ = 902_750_000.0

#: Number of channels in the full FCC plan.
FCC_NUM_CHANNELS = 50


def fcc_channel_frequencies(num_channels: int = FCC_NUM_CHANNELS) -> List[float]:
    """Centre frequencies [Hz] of the first ``num_channels`` FCC channels.

    For ``num_channels < 50`` the subset is spread evenly across the whole
    902–928 MHz band (a reader's hop table spans the band; the paper's
    10 observed channels do too, which is what makes the per-channel phase
    offsets in Fig. 4 differ so visibly).

    Raises:
        ValueError: if ``num_channels`` is not in [1, 50].
    """
    if not 1 <= num_channels <= FCC_NUM_CHANNELS:
        raise ValueError(f"num_channels must be in [1, {FCC_NUM_CHANNELS}]")
    if num_channels == FCC_NUM_CHANNELS:
        indices = range(FCC_NUM_CHANNELS)
    else:
        # Evenly spaced picks across the 50-channel plan.
        step = (FCC_NUM_CHANNELS - 1) / max(1, num_channels - 1)
        indices = [round(i * step) for i in range(num_channels)]
    return [FCC_FIRST_CHANNEL_HZ + i * FCC_CHANNEL_SPACING_HZ for i in indices]
