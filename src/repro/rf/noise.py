"""Measurement-noise models: phase noise vs SNR, RSSI quantisation.

The paper notes phase measurements "are subject to noises" (Section II-B)
and that the COTS reader's RSSI resolution is only 0.5 dBm (Section IV-A-1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class PhaseNoiseModel:
    """Phase-estimate noise as a function of receive SNR.

    The sigma floors at ``floor_rad`` (quantisation/oscillator limits of the
    reader) and grows as SNR falls::

        sigma(snr) = floor + ref * 10 ** ((reference_snr_db - snr_db) / 20)

    i.e. inverse-proportional to signal *amplitude*, the standard behaviour
    of an I/Q phase estimator in additive noise.

    Attributes:
        floor_rad: high-SNR noise floor.
        ref_rad: sigma contribution at the reference SNR.
        reference_snr_db: SNR where the SNR-dependent term equals ref_rad.
    """

    floor_rad: float = 0.015
    ref_rad: float = 0.1
    reference_snr_db: float = 20.0

    def __post_init__(self) -> None:
        if self.floor_rad < 0 or self.ref_rad < 0:
            raise ConfigError("noise sigmas must be >= 0")

    def sigma(self, snr_db):
        """Phase-noise sigma [rad] at the given SNR (broadcasts)."""
        if np.ndim(snr_db) == 0:
            return self.floor_rad + self.ref_rad * 10.0 ** ((self.reference_snr_db - snr_db) / 20.0)
        snr = np.asarray(snr_db, dtype=float)
        return self.floor_rad + self.ref_rad * 10.0 ** ((self.reference_snr_db - snr) / 20.0)

    def sample(self, snr_db: float, rng: np.random.Generator) -> float:
        """One phase-noise draw [rad].  Zero sigma consumes no randomness."""
        sigma = self.sigma(snr_db)
        if sigma == 0.0:
            return 0.0
        return float(rng.normal(0.0, sigma))

    def sample_array(self, snr_db: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
        """Independent phase-noise draws, one per SNR value.

        The vectorised twin of :meth:`sample`: each element gets its own
        sigma.  An all-zero sigma vector consumes no randomness, matching
        the scalar gate so RNG-free configurations stay RNG-free.
        """
        sigmas = np.asarray(self.sigma(snr_db), dtype=float)
        if not np.any(sigmas):
            return np.zeros_like(sigmas)
        return rng.normal(0.0, sigmas)


class DynamicMultipath:
    """Slow phase distortion from moving clutter in the environment.

    The paper's office "contains furniture including desks and chairs, and
    electric appliances including laptops and fans" (Section VI-A).  The
    backscatter the reader sees is the direct path plus reflections; when a
    reflector moves (fan sweep, distant person), the composite phase wobbles
    at sub-hertz rates — squarely inside the breathing band.  The relative
    strength of clutter grows with tag distance: the direct two-way path
    weakens as ``d^(2*exponent)`` while room reverberation stays roughly
    constant, so remote tags see proportionally more distortion.  This is
    the dominant reason accuracy degrades with distance in Fig. 12.

    Each (tag, channel, antenna) link gets its own random set of
    interference tones — different channels reflect off the room
    differently — so multi-tag/multi-channel fusion partially averages the
    distortion away, exactly the benefit Section IV-C claims for fusion.

    Args:
        amplitude_at_ref_rad: distortion amplitude at the reference distance.
        reference_m: distance where the reference amplitude applies.
        distance_exponent: amplitude growth power with distance.
        band_hz: frequency band of the clutter motion.
        components: interference tones per link.
        max_amplitude_rad: amplitude cap (phase distortion saturates once
            clutter rivals the direct path).
        rng: random source for per-link tone draws.

    Raises:
        ConfigError: on invalid parameters.
    """

    def __init__(self, amplitude_at_ref_rad: float = 0.03,
                 reference_m: float = 1.0,
                 distance_exponent: float = 1.5,
                 band_hz: tuple = (0.05, 0.6),
                 components: int = 2,
                 max_amplitude_rad: float = 1.0,
                 rng: np.random.Generator = None) -> None:
        if amplitude_at_ref_rad < 0:
            raise ConfigError("amplitude_at_ref_rad must be >= 0")
        if reference_m <= 0:
            raise ConfigError("reference_m must be > 0")
        lo, hi = band_hz
        if not 0 < lo < hi:
            raise ConfigError(f"invalid clutter band {band_hz}")
        if components < 1:
            raise ConfigError("need at least one component")
        if max_amplitude_rad <= 0:
            raise ConfigError("max_amplitude_rad must be > 0")
        self._a_ref = float(amplitude_at_ref_rad)
        self._d_ref = float(reference_m)
        self._exp = float(distance_exponent)
        self._band = (float(lo), float(hi))
        self._k = int(components)
        self._a_max = float(max_amplitude_rad)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._links: dict = {}

    def _components_for(self, link_key) -> tuple:
        entry = self._links.get(link_key)
        if entry is None:
            freqs = self._rng.uniform(*self._band, size=self._k)
            phases = self._rng.uniform(0.0, 2.0 * np.pi, size=self._k)
            raw = self._rng.uniform(0.3, 1.0, size=self._k)
            weights = raw / np.sqrt(float(np.sum(raw ** 2)))
            entry = (freqs, phases, weights)
            self._links[link_key] = entry
        return entry

    def amplitude_rad(self, distance_m):
        """Distortion amplitude [rad] for a link at ``distance_m``.

        Broadcasts over distance arrays.

        Raises:
            ConfigError: on non-positive distance.
        """
        if np.ndim(distance_m) == 0:
            if distance_m <= 0:
                raise ConfigError("distance must be > 0")
            return min(self._a_max,
                       self._a_ref * (distance_m / self._d_ref) ** self._exp)
        d = np.asarray(distance_m, dtype=float)
        if np.any(d <= 0):
            raise ConfigError("distance must be > 0")
        return np.minimum(self._a_max, self._a_ref * (d / self._d_ref) ** self._exp)

    def phase_offset(self, link_key, t: float, distance_m: float) -> float:
        """The link's clutter phase distortion [rad] at time ``t``.

        A zero reference amplitude short-circuits to 0 without drawing the
        link's tone set, so amplitude-free configurations consume no
        randomness.
        """
        if self._a_ref == 0.0:
            return 0.0
        freqs, phases, weights = self._components_for(link_key)
        amp = self.amplitude_rad(distance_m)
        return float(amp * np.sum(
            weights * np.sin(2.0 * np.pi * freqs * t + phases)
        ))

    def ensure_link(self, link_key) -> None:
        """Materialise a link's tone set (no-op at zero reference amplitude).

        The batched reader synthesis calls this in exact event order during
        its pre-pass so lazy per-link draws land in the same RNG sequence
        the per-read scalar path would produce.
        """
        if self._a_ref == 0.0:
            return
        self._components_for(link_key)

    def phase_offset_array(self, link_key, t: np.ndarray,
                           distance_m: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`phase_offset` for one link over a time vector."""
        t = np.asarray(t, dtype=float)
        if self._a_ref == 0.0:
            return np.zeros_like(t)
        freqs, phases, weights = self._components_for(link_key)
        amp = self.amplitude_rad(distance_m)
        tones = np.sin(2.0 * np.pi * np.outer(t, freqs) + phases)
        return amp * (tones @ weights)


def quantize_rssi(rssi_dbm, resolution_db: float = 0.5):
    """Quantise an RSSI value to the reader's reporting resolution.

    The paper calls out the 0.5 dBm resolution as the reason RSSI cannot
    resolve subtle chest motion in challenging scenarios (Section IV-A-1).
    Broadcasts over arrays (both paths round half-to-even).

    Raises:
        ValueError: on non-positive resolution.
    """
    if resolution_db <= 0:
        raise ValueError(f"resolution must be > 0, got {resolution_db}")
    if np.ndim(rssi_dbm) == 0:
        return round(rssi_dbm / resolution_db) * resolution_db
    return np.round(np.asarray(rssi_dbm, dtype=float) / resolution_db) * resolution_db
