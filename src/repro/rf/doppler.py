"""Doppler frequency-shift reports — Eq. (2) of the paper.

Commodity readers estimate Doppler from the phase rotation *within one
backscatter packet*::

    f = delta_theta / (4 * pi * delta_T)                 (Eq. 2)

Because a packet lasts only a millisecond or two, the intra-packet phase
rotation from breathing-speed motion is tiny and the estimate is dominated
by noise — the paper's Fig. 3 shows a noisy envelope that only "roughly
tracks" breathing.  We reproduce both the physics and the noisiness.
"""

from __future__ import annotations

import numpy as np

from ..units import TWO_PI

#: Typical duration of one backscatter packet [s] (EPC Gen2 at ~64 kbps).
DEFAULT_PACKET_DURATION_S = 1.5e-3


def doppler_shift_from_velocity(velocity_mps, wavelength_m):
    """Noise-free Doppler shift [Hz] under the paper's Eq. (2) convention.

    With ``theta = 4*pi*d/lambda``, a radial velocity ``v`` rotates the phase
    by ``delta_theta = 4*pi*v*delta_T/lambda`` during a packet, so Eq. (2)
    reports ``f = v / lambda``.  Positive velocity = moving away.
    Broadcasts over arrays of velocities and/or wavelengths.

    Raises:
        ValueError: on non-positive wavelength.
    """
    if np.ndim(wavelength_m) == 0:
        if wavelength_m <= 0:
            raise ValueError(f"wavelength must be > 0, got {wavelength_m}")
    elif np.any(np.asarray(wavelength_m) <= 0):
        raise ValueError("wavelength must be > 0")
    return velocity_mps / wavelength_m


def doppler_report(velocity_mps, wavelength_m,
                   rng: np.random.Generator,
                   phase_noise_rad,
                   packet_duration_s: float = DEFAULT_PACKET_DURATION_S):
    """Raw Doppler-shift report(s) [Hz] as a commodity reader would emit.

    The reader differences two noisy phase estimates ``packet_duration_s``
    apart (Eq. 2), so the per-report noise is two independent phase-noise
    draws divided by a very small ``4*pi*delta_T`` — which is why raw
    Doppler is so noisy (Fig. 3).

    Broadcasts: arrays of velocities/wavelengths/noise sigmas produce one
    report per element, each with its own noise draw.  Zero noise sigma
    consumes no randomness.

    Args:
        velocity_mps: true radial velocity of the tag.
        wavelength_m: active channel wavelength.
        rng: random source.
        phase_noise_rad: sigma of a single phase estimate.
        packet_duration_s: backscatter packet duration delta_T.

    Raises:
        ValueError: on non-positive packet duration or wavelength.
    """
    if packet_duration_s <= 0:
        raise ValueError(f"packet duration must be > 0, got {packet_duration_s}")
    scalar = (np.ndim(velocity_mps) == 0 and np.ndim(wavelength_m) == 0
              and np.ndim(phase_noise_rad) == 0)
    if scalar:
        if wavelength_m <= 0:
            raise ValueError(f"wavelength must be > 0, got {wavelength_m}")
        true_delta = 2.0 * TWO_PI * velocity_mps * packet_duration_s / wavelength_m
        if phase_noise_rad == 0.0:
            noisy_delta = true_delta
        else:
            noisy_delta = true_delta + rng.normal(0.0, phase_noise_rad * np.sqrt(2.0))
        return noisy_delta / (2.0 * TWO_PI * packet_duration_s)
    lam = np.asarray(wavelength_m, dtype=float)
    if np.any(lam <= 0):
        raise ValueError("wavelength must be > 0")
    true_delta = 2.0 * TWO_PI * np.asarray(velocity_mps, dtype=float) \
        * packet_duration_s / lam
    sigmas = np.broadcast_to(
        np.asarray(phase_noise_rad, dtype=float) * np.sqrt(2.0), true_delta.shape
    )
    if np.any(sigmas):
        noisy_delta = true_delta + rng.normal(0.0, sigmas)
    else:
        noisy_delta = true_delta
    return noisy_delta / (2.0 * TWO_PI * packet_duration_s)
