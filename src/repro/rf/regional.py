"""Regional UHF RFID regulations: channel plans and hopping rules.

The paper notes that "a fixed frequency channel may not be supported by
commodity readers in some regions (e.g., US, Singapore, Hong Kong)"
(Section IV-A-3) — frequency-hopping behaviour, and hence TagBreathe's
channel-grouping preprocessing, is regulation-driven.  This module
captures the major regimes so the pipeline can be exercised under each:

* **FCC** (US / "902-928 MHz" of the paper): 50 channels, 500 kHz
  spacing, mandatory pseudo-random hopping, <= 0.4 s per channel per 20 s.
* **ETSI** (EU, EN 302 208): 4 high-power channels at 600 kHz spacing
  (865.7-867.5 MHz); no hopping mandate (listen-before-talk historically),
  so a reader may *sit* on one channel — the easy case for phase sensing.
* **Japan** (ARIB STD-T107): 6 channels in 916.8-920.8 MHz.
* **China** (SRRC): 16 channels in 920.625-924.375 MHz, 250 kHz spacing.
* **Hong Kong** (OFCA, the paper's own venue): 920-925 MHz band, hopping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from .channel import ChannelPlan


@dataclass(frozen=True)
class RegionalRegulation:
    """One region's UHF RFID channel regulation.

    Attributes:
        name: region identifier.
        band_hz: (low, high) band edges.
        channel_frequencies_hz: permitted channel centres.
        hopping_required: whether the reader must hop pseudo-randomly.
        max_dwell_s: maximum continuous residency per channel (None = no
            explicit per-channel limit).
        max_eirp_dbm: transmit power ceiling (EIRP).
    """

    name: str
    band_hz: Tuple[float, float]
    channel_frequencies_hz: Tuple[float, ...]
    hopping_required: bool
    max_dwell_s: Optional[float]
    max_eirp_dbm: float

    def __post_init__(self) -> None:
        low, high = self.band_hz
        if not 0 < low < high:
            raise ConfigError(f"invalid band {self.band_hz}")
        if not self.channel_frequencies_hz:
            raise ConfigError("regulation needs at least one channel")
        for freq in self.channel_frequencies_hz:
            if not low <= freq <= high:
                raise ConfigError(
                    f"{self.name}: channel {freq / 1e6:.3f} MHz outside band "
                    f"{low / 1e6:.1f}-{high / 1e6:.1f} MHz"
                )

    @property
    def num_channels(self) -> int:
        """Permitted channel count."""
        return len(self.channel_frequencies_hz)

    def channel_plan(self, rng: Optional[np.random.Generator] = None) -> ChannelPlan:
        """A :class:`ChannelPlan` over this region's channels."""
        return ChannelPlan(list(self.channel_frequencies_hz), rng=rng)

    def effective_dwell_s(self, default_s: float = 0.2) -> float:
        """The dwell a reader would use here (respecting any limit)."""
        if self.max_dwell_s is None:
            return default_s
        return min(default_s, self.max_dwell_s)


def _spaced(first_hz: float, spacing_hz: float, count: int) -> Tuple[float, ...]:
    return tuple(first_hz + i * spacing_hz for i in range(count))


#: US FCC Part 15.247 — the paper's regime.
FCC = RegionalRegulation(
    name="FCC",
    band_hz=(902e6, 928e6),
    channel_frequencies_hz=_spaced(902.75e6, 0.5e6, 50),
    hopping_required=True,
    max_dwell_s=0.4,
    max_eirp_dbm=36.0,
)

#: EU ETSI EN 302 208 upper band, 2 W ERP (~36 dBm EIRP equivalent 33+2.15).
ETSI = RegionalRegulation(
    name="ETSI",
    band_hz=(865e6, 868e6),
    channel_frequencies_hz=(865.7e6, 866.3e6, 866.9e6, 867.5e6),
    hopping_required=False,
    max_dwell_s=None,
    max_eirp_dbm=35.15,
)

#: Japan ARIB STD-T107 (1 W band).
JAPAN = RegionalRegulation(
    name="Japan",
    band_hz=(916.7e6, 920.9e6),
    channel_frequencies_hz=_spaced(916.8e6, 0.8e6, 6),
    hopping_required=False,
    max_dwell_s=4.0,
    max_eirp_dbm=36.0,
)

#: China SRRC 920-925 MHz.
CHINA = RegionalRegulation(
    name="China",
    band_hz=(920e6, 925e6),
    channel_frequencies_hz=_spaced(920.625e6, 0.25e6, 16),
    hopping_required=True,
    max_dwell_s=2.0,
    max_eirp_dbm=33.0,
)

#: Hong Kong OFCA 920-925 MHz — where the paper's experiments ran.
HONG_KONG = RegionalRegulation(
    name="Hong Kong",
    band_hz=(920e6, 925e6),
    channel_frequencies_hz=_spaced(920.25e6, 0.5e6, 10),
    hopping_required=True,
    max_dwell_s=0.4,
    max_eirp_dbm=36.0,
)

#: All built-in regulations by name.
REGULATIONS: Dict[str, RegionalRegulation] = {
    reg.name: reg for reg in (FCC, ETSI, JAPAN, CHINA, HONG_KONG)
}


def regulation(name: str) -> RegionalRegulation:
    """Look up a regulation by (case-insensitive) region name.

    Raises:
        ConfigError: for unknown regions.
    """
    for key, reg in REGULATIONS.items():
        if key.lower() == name.lower():
            return reg
    raise ConfigError(
        f"unknown region {name!r}; available: {sorted(REGULATIONS)}"
    )
