"""RF physics substrate: channels, phase model, propagation, Doppler, noise.

This replaces the physical UHF air interface the paper measured through.
Everything the TagBreathe pipeline consumes — phase values with per-channel
offsets, quantised RSSI, noisy Doppler — is produced here with the same
artefacts a commodity Impinj reader exhibits (paper Section IV-A).
"""

from .constants import (
    UHF_BAND_LOW_HZ,
    UHF_BAND_HIGH_HZ,
    FCC_CHANNEL_SPACING_HZ,
    fcc_channel_frequencies,
)
from .channel import Channel, ChannelPlan
from .phase import PhaseModel, backscatter_phase, phase_to_distance_delta
from .propagation import LinkBudget, PathLossModel
from .doppler import doppler_shift_from_velocity, doppler_report
from .noise import DynamicMultipath, PhaseNoiseModel, quantize_rssi
from .regional import REGULATIONS, RegionalRegulation, regulation
from .tagchip import ConstellationSnapshot, TagChipModel

__all__ = [
    "UHF_BAND_LOW_HZ",
    "UHF_BAND_HIGH_HZ",
    "FCC_CHANNEL_SPACING_HZ",
    "fcc_channel_frequencies",
    "Channel",
    "ChannelPlan",
    "PhaseModel",
    "backscatter_phase",
    "phase_to_distance_delta",
    "LinkBudget",
    "PathLossModel",
    "doppler_shift_from_velocity",
    "doppler_report",
    "PhaseNoiseModel",
    "DynamicMultipath",
    "quantize_rssi",
    "REGULATIONS",
    "RegionalRegulation",
    "regulation",
    "ConstellationSnapshot",
    "TagChipModel",
]
