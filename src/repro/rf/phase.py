"""The backscatter phase model — Eq. (1) of the paper and its inverse.

Forward model (what the commodity reader reports)::

    theta = (2*pi/lambda * 2*d + c) mod 2*pi            (Eq. 1)

Inverse model (what TagBreathe preprocessing computes)::

    delta_d = lambda/(4*pi) * (theta_{i+1} - theta_i)    (Eq. 3)

with the phase difference wrapped into ``[-pi, pi)`` because "the tag
displacement during two consecutive phase readings is within a half of radio
wavelength" (Section IV-A-3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..units import TWO_PI, wrap_phase, wrap_phase_delta
from .channel import Channel


def backscatter_phase(distance_m, wavelength_m, offset_rad=0.0):
    """Eq. (1): reader-reported phase for a tag at ``distance_m``.

    The radio wave traverses ``2 * distance_m`` (reader -> tag -> reader).
    Broadcasts over arrays of distances, wavelengths, and offsets; scalar
    inputs return a plain ``float``.

    Raises:
        ValueError: on non-positive wavelength or negative distance.
    """
    scalar = (np.ndim(distance_m) == 0 and np.ndim(wavelength_m) == 0
              and np.ndim(offset_rad) == 0)
    if scalar:
        if wavelength_m <= 0:
            raise ValueError(f"wavelength must be > 0, got {wavelength_m}")
        if distance_m < 0:
            raise ValueError(f"distance must be >= 0, got {distance_m}")
        return wrap_phase(TWO_PI / wavelength_m * 2.0 * distance_m + offset_rad)
    d = np.asarray(distance_m, dtype=float)
    lam = np.asarray(wavelength_m, dtype=float)
    if np.any(lam <= 0):
        raise ValueError("wavelength must be > 0")
    if np.any(d < 0):
        raise ValueError("distance must be >= 0")
    return wrap_phase(TWO_PI / lam * 2.0 * d + np.asarray(offset_rad, dtype=float))


def phase_to_distance_delta(theta_prev, theta_next, wavelength_m):
    """Eq. (3): displacement between two same-channel phase readings.

    Positive result = tag moved *away* from the antenna.  Broadcasts over
    arrays of phase pairs.

    Raises:
        ValueError: on non-positive wavelength.
    """
    if np.ndim(wavelength_m) == 0:
        if wavelength_m <= 0:
            raise ValueError(f"wavelength must be > 0, got {wavelength_m}")
    elif np.any(np.asarray(wavelength_m) <= 0):
        raise ValueError("wavelength must be > 0")
    return wavelength_m / (4.0 * np.pi) * wrap_phase_delta(theta_next - theta_prev)


def max_unambiguous_displacement(wavelength_m: float) -> float:
    """Largest |displacement| Eq. (3) can resolve between consecutive reads.

    The phase difference wraps at +/- pi, i.e. +/- lambda/4 of motion.
    """
    if wavelength_m <= 0:
        raise ValueError(f"wavelength must be > 0, got {wavelength_m}")
    return wavelength_m / 4.0


class PhaseModel:
    """Stateful forward phase model for one (tag, antenna) link.

    Combines Eq. (1) with a per-link random circuit offset on top of the
    channel offset — two different tags on the same channel still report
    different absolute phases, as real tags do.

    Args:
        link_offset_rad: the tag+cabling contribution to ``c`` in Eq. (1);
            drawn uniformly when omitted.
        rng: random source for the draw.
    """

    def __init__(self, link_offset_rad: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if link_offset_rad is None:
            rng = rng if rng is not None else np.random.default_rng()
            link_offset_rad = float(rng.uniform(0.0, TWO_PI))
        self._link_offset = wrap_phase(link_offset_rad)

    @property
    def link_offset_rad(self) -> float:
        """This link's fixed circuit phase offset."""
        return self._link_offset

    def phase(self, distance_m, channel: Channel, noise_rad=0.0):
        """Reader-reported phase for this link on ``channel``.

        Broadcasts: pass an array of distances (and optionally noises) to
        evaluate the whole link trace in one call.

        Args:
            distance_m: one-way antenna–tag distance(s).
            channel: active hop channel (supplies wavelength and channel offset).
            noise_rad: additive phase noise to inject before wrapping.
        """
        clean = backscatter_phase(
            distance_m, channel.wavelength_m,
            channel.phase_offset_rad + self._link_offset,
        )
        return wrap_phase(clean + noise_rad)
