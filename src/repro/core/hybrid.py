"""Hybrid estimation: fusing phase with RSSI/Doppler — Section IV-D-2.

    "One possible enhancement is to fuse the RSSI and Doppler frequency
    shift with the phase values to improve the monitoring accuracy."

The paper leaves this as a discussion item; this module implements it as
confidence-weighted decision fusion.  Each observable produces an
independent rate estimate with a confidence score (spectral prominence of
its breathing peak); the hybrid combines agreeing estimates and falls
back to the most confident one when they disagree.

Phase remains the primary sensor (its confidence dominates in practice);
the auxiliaries buy robustness when phase data is thin — for example a
user read at a very low rate whose RSSI still wiggles visibly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import PipelineConfig
from ..errors import InsufficientDataError
from ..reader.tagreport import TagReport
from ..streams.timeseries import TimeSeries
from ..units import BPM_PER_HZ
from .baselines import DopplerBreathEstimator, RSSIBreathEstimator
from .extraction import BreathingEstimate
from .pipeline import TagBreathe
from .spectral import fft_spectrum


@dataclass(frozen=True)
class ObservableEstimate:
    """One observable's contribution to the hybrid decision.

    Attributes:
        name: "phase", "rssi", or "doppler".
        rate_bpm: that observable's rate estimate (None = unavailable).
        confidence: spectral prominence of the breathing peak (>= 0).
    """

    name: str
    rate_bpm: Optional[float]
    confidence: float


@dataclass(frozen=True)
class HybridEstimate:
    """The fused result.

    Attributes:
        rate_bpm: the fused breathing rate.
        contributions: every observable's estimate and confidence.
        agreement: True when all available observables agreed within the
            tolerance (the fused value is then their weighted mean).
    """

    rate_bpm: float
    contributions: Tuple[ObservableEstimate, ...]
    agreement: bool


def _peak_prominence(signal: TimeSeries, rate_bpm: float) -> float:
    """Spectral prominence of a breathing peak: peak bin / median in-band."""
    if len(signal) < 8:
        return 0.0
    freqs, spectrum = fft_spectrum(signal)
    band = (freqs >= 0.05) & (freqs <= 0.67)
    if band.sum() < 3:
        return 0.0
    target = rate_bpm / BPM_PER_HZ
    idx = int(np.argmin(np.abs(freqs - target)))
    peak = float(spectrum[idx])
    floor = float(np.median(spectrum[band]))
    if floor <= 0:
        return 0.0
    return peak / floor


class HybridBreathEstimator:
    """Phase + RSSI + Doppler decision fusion (Section IV-D-2).

    Args:
        config: pipeline parameters shared by all observables.
        agreement_tolerance_bpm: estimates within this of each other are
            considered agreeing and averaged by confidence.
        use_doppler: include the (very noisy) Doppler observable.
    """

    def __init__(self, config: Optional[PipelineConfig] = None,
                 agreement_tolerance_bpm: float = 2.0,
                 use_doppler: bool = False) -> None:
        if agreement_tolerance_bpm <= 0:
            raise InsufficientDataError("agreement tolerance must be > 0")
        self._config = config if config is not None else PipelineConfig()
        self._tolerance = agreement_tolerance_bpm
        self._use_doppler = use_doppler

    # ------------------------------------------------------------------
    def estimate(self, user_id: int,
                 reports: Sequence[TagReport]) -> HybridEstimate:
        """Fuse all observables for one user's reports.

        Raises:
            InsufficientDataError: when no observable produced an estimate.
        """
        contributions: List[ObservableEstimate] = []

        phase = self._try_phase(user_id, reports)
        contributions.append(phase)
        contributions.append(self._try_baseline(
            "rssi", RSSIBreathEstimator(self._config), reports,
        ))
        if self._use_doppler:
            contributions.append(self._try_baseline(
                "doppler", DopplerBreathEstimator(self._config), reports,
            ))

        available = [c for c in contributions if c.rate_bpm is not None
                     and c.confidence > 0]
        if not available:
            raise InsufficientDataError(
                f"user {user_id}: no observable produced a breathing estimate"
            )
        best = max(available, key=lambda c: c.confidence)
        agreeing = [
            c for c in available
            if abs(c.rate_bpm - best.rate_bpm) <= self._tolerance
        ]
        agreement = len(agreeing) == len(available)
        weights = np.array([c.confidence for c in agreeing])
        rates = np.array([c.rate_bpm for c in agreeing])
        fused = float(np.average(rates, weights=weights))
        return HybridEstimate(
            rate_bpm=fused,
            contributions=tuple(contributions),
            agreement=agreement,
        )

    # ------------------------------------------------------------------
    def _try_phase(self, user_id: int,
                   reports: Sequence[TagReport]) -> ObservableEstimate:
        pipeline = TagBreathe(config=self._config, user_ids={user_id})
        estimates = pipeline.process(reports)
        estimate = estimates.get(user_id)
        if estimate is None:
            return ObservableEstimate("phase", None, 0.0)
        confidence = _peak_prominence(estimate.estimate.signal,
                                      estimate.rate_bpm)
        # Phase is the engineered primary sensor; its prominence is
        # weighted up so auxiliaries only dominate when phase is weak.
        return ObservableEstimate("phase", estimate.rate_bpm, 3.0 * confidence)

    @staticmethod
    def _try_baseline(name: str, estimator,
                      reports: Sequence[TagReport]) -> ObservableEstimate:
        try:
            estimate: BreathingEstimate = estimator.estimate(list(reports))
        except InsufficientDataError:
            return ObservableEstimate(name, None, 0.0)
        confidence = _peak_prominence(estimate.signal, estimate.rate_bpm)
        return ObservableEstimate(name, estimate.rate_bpm, confidence)
