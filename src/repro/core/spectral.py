"""Frequency-domain analysis: the FFT view of the displacement track.

The paper uses the FFT twice: Fig. 7 shows the displacement spectrum whose
peak sits at the breathing rate, and Section IV-B then points out the
pitfall of *estimating* the rate from that peak:

    "One of the pitfalls of the Fourier transform for a window size of w
    seconds is that it has a resolution of 1/w. ... since the window size
    is 25 seconds, the frequency resolution is 0.04 Hz which corresponds
    to 2.4 breaths per minute."

The peak estimator is implemented here as a characterised baseline; the
production path uses zero crossings (:mod:`repro.core.zerocross`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import StreamError
from ..streams.timeseries import TimeSeries
from ..units import BPM_PER_HZ
from .filters import _require_regular


def fft_spectrum(series: TimeSeries) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectrum of a regularly sampled series.

    Returns:
        (frequencies [Hz], amplitudes), DC included.

    Raises:
        StreamError: on irregular sampling or too few samples.
    """
    rate_hz = _require_regular(series, "fft_spectrum")
    values = series.values - series.values.mean()
    spectrum = np.abs(np.fft.rfft(values)) / len(series)
    freqs = np.fft.rfftfreq(len(series), d=1.0 / rate_hz)
    return freqs, spectrum


def fft_peak_rate_bpm(series: TimeSeries,
                      band_bpm: Tuple[float, float] = (4.0, 40.0)) -> float:
    """The pitfall baseline: breathing rate from the FFT peak [bpm].

    Args:
        series: regularly sampled displacement track.
        band_bpm: search band; defaults to plausible human rates.

    Raises:
        StreamError: if no FFT bin falls inside the band (window too short).
    """
    lo_bpm, hi_bpm = band_bpm
    if not 0 < lo_bpm < hi_bpm:
        raise StreamError(f"invalid band {band_bpm}")
    freqs, spectrum = fft_spectrum(series)
    mask = (freqs >= lo_bpm / BPM_PER_HZ) & (freqs <= hi_bpm / BPM_PER_HZ)
    if not mask.any():
        raise StreamError(
            f"no FFT bin inside {band_bpm} bpm: window of {series.duration:.1f}s "
            f"has resolution {frequency_resolution_bpm(series.duration):.2f} bpm"
        )
    band_freqs = freqs[mask]
    band_amp = spectrum[mask]
    return float(band_freqs[int(np.argmax(band_amp))] * BPM_PER_HZ)


def frequency_resolution_bpm(window_s: float) -> float:
    """The FFT's rate resolution for a ``window_s``-second window [bpm].

    The paper's example: 25 s -> 0.04 Hz -> 2.4 bpm.

    Raises:
        StreamError: on non-positive window.
    """
    if window_s <= 0:
        raise StreamError("window_s must be > 0")
    return BPM_PER_HZ / window_s
