"""Baseline estimators from the paper's low-level data characterisation.

Section IV-A examines three observables and explains why TagBreathe builds
on phase:

* **RSSI** (Fig. 2): periodic but coarse — 0.5 dBm resolution cannot
  resolve subtle motion in challenging scenarios.
* **Doppler shift** (Fig. 3): noisy — the intra-packet phase rotation is
  too small at breathing speeds.
* **FFT peak** (Fig. 7): works but is resolution-limited to ``1/window``
  (2.4 bpm for a 25 s window).

Each baseline is implemented with the same interface so the ablation
benchmarks can swap them in for the phase/zero-crossing pipeline.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..config import PipelineConfig
from ..errors import InsufficientDataError
from ..reader.tagreport import TagReport
from ..streams.resample import bin_mean, resample_linear
from ..streams.timeseries import TimeSeries
from .extraction import BreathExtractor, BreathingEstimate
from .spectral import fft_peak_rate_bpm


def _reports_to_series(reports: Sequence[TagReport], attribute: str,
                       demean_per_channel: bool = False) -> TimeSeries:
    """Build a merged TimeSeries of one report field across all tags.

    With ``demean_per_channel`` each (channel, antenna) group's mean is
    subtracted first — the RSSI analogue of the paper's per-channel phase
    grouping, cancelling frequency-selective fading offsets that would
    otherwise swamp the breathing ripple.
    """
    ordered = sorted(reports, key=lambda r: r.timestamp_s)
    offsets = {}
    if demean_per_channel:
        sums: dict = {}
        for report in ordered:
            key = (report.channel_index, report.antenna_port)
            total, count = sums.get(key, (0.0, 0))
            sums[key] = (total + float(getattr(report, attribute)), count + 1)
        offsets = {key: total / count for key, (total, count) in sums.items()}
    times: List[float] = []
    values: List[float] = []
    for report in ordered:
        t = report.timestamp_s
        if times and t <= times[-1]:
            continue
        value = float(getattr(report, attribute))
        if demean_per_channel:
            value -= offsets[(report.channel_index, report.antenna_port)]
        times.append(t)
        values.append(value)
    return TimeSeries(times, values)


class _SeriesBaseline:
    """Shared machinery: regularise a series, filter, zero-cross."""

    def __init__(self, config: Optional[PipelineConfig] = None,
                 grid_hz: float = 20.0) -> None:
        self._config = config if config is not None else PipelineConfig()
        self._grid_hz = grid_hz
        self._extractor = BreathExtractor(self._config)

    def _estimate_from_series(self, series: TimeSeries) -> BreathingEstimate:
        if len(series) < 8:
            raise InsufficientDataError(
                f"only {len(series)} usable samples for baseline estimation"
            )
        regular = resample_linear(series, self._grid_hz)
        return self._extractor.estimate(regular)


class RSSIBreathEstimator(_SeriesBaseline):
    """Breathing rate from RSSI readings alone (the Fig. 2 observable).

    Groups readings by channel (cancelling frequency-selective offsets,
    just as the phase path groups by channel), averages each bin's RSSI
    (quantised values dither across the 0.5 dBm steps), then runs the
    same filter/zero-crossing machinery as the main pipeline.

    Args:
        config: pipeline parameters (cutoff, buffer M).
        grid_hz: regular grid rate for filtering.
    """

    def estimate(self, reports: Iterable[TagReport]) -> BreathingEstimate:
        """Estimate breathing from the RSSI track of one user's reports.

        Raises:
            InsufficientDataError: with too few reads or crossings.
        """
        series = _reports_to_series(list(reports), "rssi_dbm",
                                    demean_per_channel=True)
        if len(series) < 8:
            raise InsufficientDataError("too few reads for RSSI baseline")
        smoothed = bin_mean(series, 0.25)
        return self._estimate_from_series(smoothed)


class DopplerBreathEstimator(_SeriesBaseline):
    """Breathing rate from raw Doppler-shift reports (the Fig. 3 observable).

    Integrates the (noisy) Doppler reports into a pseudo-displacement
    track: ``d(t) ~ integral of lambda * f_doppler dt``.  Under Eq. (2)'s
    convention ``f = v / lambda``, so the integral recovers displacement up
    to heavy noise — which is exactly the paper's point about Doppler.
    """

    #: Nominal mid-band wavelength used for integration [m].
    NOMINAL_WAVELENGTH_M = 0.3276

    def estimate(self, reports: Iterable[TagReport]) -> BreathingEstimate:
        """Estimate breathing from the integrated Doppler track.

        Raises:
            InsufficientDataError: with too few reads or crossings.
        """
        series = _reports_to_series(list(reports), "doppler_hz")
        if len(series) < 8:
            raise InsufficientDataError("too few reads for Doppler baseline")
        gaps = np.diff(series.times)
        increments = series.values[1:] * gaps * self.NOMINAL_WAVELENGTH_M
        track = TimeSeries(series.times[1:], np.cumsum(increments))
        return self._estimate_from_series(track)


class FFTPeakEstimator:
    """The Section IV-B pitfall baseline: rate = FFT peak of the track.

    Resolution-limited to ``60 / window_s`` bpm, the reason the paper
    prefers zero crossings for the production path.

    Args:
        band_bpm: plausible-rate search band.
    """

    def __init__(self, band_bpm: tuple = (4.0, 40.0)) -> None:
        self._band = band_bpm

    def estimate_rate_bpm(self, track: TimeSeries) -> float:
        """Rate [bpm] from the spectral peak of a regular displacement track.

        Raises:
            StreamError: on irregular input or a window too short to place
                any FFT bin inside the search band.
        """
        return fft_peak_rate_bpm(track, band_bpm=self._band)
