"""Degradation bookkeeping shared by the batch and incremental paths.

Stable machine names for every way an estimate can be produced in
degraded mode.  Both estimate paths — the batch reference
(:meth:`repro.core.pipeline.TagBreathe._process_user`) and the
incremental streaming tick (:mod:`repro.core.incremental`) — attach
these to :class:`~repro.core.pipeline.UserEstimate`, and they are
re-exported from :mod:`repro.core.pipeline` (the historical home) so
callers import them from either place.
"""

from __future__ import annotations

#: The stream contained late/duplicate deliveries that were re-ordered or
#: dropped before processing.
REASON_DISORDERED = "late_or_duplicate_reports"
#: The user's read times contain gaps longer than the configured warning
#: threshold (bursty loss, interference, reader stall).
REASON_GAPS = "report_gaps"
#: One or more tag streams went permanently silent and were demoted out of
#: fusion (Eq. 6-7 re-weighted over the survivors).
REASON_TAG_DEATH = "tag_death"
#: The best-scoring antenna was dead at the end of the window; the
#: estimate rides the next-best live port.
REASON_ANTENNA_FAILOVER = "antenna_failover"
#: Hampel rejection removed a non-trivial fraction of displacement
#: samples (phase glitches / pi-ambiguity flips).
REASON_OUTLIERS = "phase_outliers"
#: The Doppler motion detector found gross body motion (walking,
#: turning) inside the analysis window; the displacement track is
#: dominated by the motion artifact, not breathing.
REASON_MOTION = "motion_artifact"
#: The fused displacement track's phase quality fell below the fallback
#: threshold (median sample-to-sample step too rough for zero-crossing
#: counting to mean breaths).
REASON_PHASE_DEGRADED = "phase_degraded"
#: The estimate was produced by the RSS-amplitude fallback estimator
#: rather than the paper's phase path.
REASON_RSS_FALLBACK = "rss_fallback"

#: Every degradation reason the pipeline can attach to an estimate.
DEGRADED_REASONS = (
    REASON_DISORDERED,
    REASON_GAPS,
    REASON_TAG_DEATH,
    REASON_ANTENNA_FAILOVER,
    REASON_OUTLIERS,
    REASON_MOTION,
    REASON_PHASE_DEGRADED,
    REASON_RSS_FALLBACK,
)
