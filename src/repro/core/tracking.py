"""Breathing-rate tracking over time: a smoothed realtime estimate.

The paper's prototype "buffers 7 zero crossings ... to calculate the
breathing rates for realtime visualization" — a moving estimate that
still jitters with every crossing.  This module adds the tracking layer
a production monitor would put on top: a constant-velocity Kalman filter
over the Eq. (5) instantaneous rates, with innovation gating so a single
corrupted crossing cannot yank the displayed rate.

State: ``[rate_bpm, rate_trend_bpm_per_s]``; measurements: the Eq. (5)
instantaneous rates at their crossing timestamps (irregular intervals are
handled by time-scaled process noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ReproError
from ..streams.timeseries import TimeSeries


@dataclass(frozen=True)
class TrackedRate:
    """One tracker output.

    Attributes:
        time_s: measurement timestamp.
        rate_bpm: smoothed rate estimate.
        trend_bpm_per_min: estimated rate-of-change (positive = speeding up).
        uncertainty_bpm: 1-sigma uncertainty of the rate estimate.
        gated: True when the raw measurement was rejected as an outlier.
    """

    time_s: float
    rate_bpm: float
    trend_bpm_per_min: float
    uncertainty_bpm: float
    gated: bool


class BreathingRateTracker:
    """Constant-velocity Kalman tracker over instantaneous breathing rates.

    Args:
        process_noise: rate-trend random-walk intensity
            [bpm^2 / s^3]-ish; larger = more responsive, jitterier.
        measurement_noise_bpm: 1-sigma of an Eq. (5) instantaneous rate.
        gate_sigmas: innovation gate; measurements farther than this many
            sigmas from the prediction are ignored (flagged ``gated``).
        initial_rate_bpm: optional prior; otherwise the first measurement
            initialises the state.

    Raises:
        ReproError: on non-positive noise/gate parameters.
    """

    def __init__(self, process_noise: float = 0.005,
                 measurement_noise_bpm: float = 0.8,
                 gate_sigmas: float = 4.0,
                 initial_rate_bpm: Optional[float] = None) -> None:
        if process_noise <= 0 or measurement_noise_bpm <= 0:
            raise ReproError("noise parameters must be > 0")
        if gate_sigmas <= 0:
            raise ReproError("gate_sigmas must be > 0")
        self._q = float(process_noise)
        self._r = float(measurement_noise_bpm) ** 2
        self._gate = float(gate_sigmas)
        self._t: Optional[float] = None
        self._x = np.zeros(2)
        self._p = np.diag([25.0, 1.0])
        if initial_rate_bpm is not None:
            if initial_rate_bpm <= 0:
                raise ReproError("initial rate must be > 0 bpm")
            self._x[0] = initial_rate_bpm
            self._initialised = True
        else:
            self._initialised = False

    @property
    def rate_bpm(self) -> Optional[float]:
        """Current smoothed rate (None before the first measurement)."""
        if not self._initialised:
            return None
        return float(self._x[0])

    # ------------------------------------------------------------------
    def update(self, time_s: float, measured_bpm: float) -> TrackedRate:
        """Ingest one instantaneous-rate measurement.

        Raises:
            ReproError: on a non-positive measurement or time going
                backwards.
        """
        if measured_bpm <= 0:
            raise ReproError(f"rate must be > 0 bpm, got {measured_bpm}")
        if self._t is not None and time_s < self._t:
            raise ReproError(f"time went backwards: {time_s} < {self._t}")

        if not self._initialised:
            self._x = np.array([measured_bpm, 0.0])
            self._p = np.diag([self._r, 0.25])
            self._initialised = True
            self._t = time_s
            return TrackedRate(time_s, measured_bpm, 0.0,
                               float(np.sqrt(self._p[0, 0])), False)

        dt = 0.0 if self._t is None else max(0.0, time_s - self._t)
        self._t = time_s
        # Predict.
        f = np.array([[1.0, dt], [0.0, 1.0]])
        q = self._q * np.array([
            [dt ** 3 / 3.0, dt ** 2 / 2.0],
            [dt ** 2 / 2.0, dt],
        ])
        self._x = f @ self._x
        self._p = f @ self._p @ f.T + q

        # Gate.
        innovation = measured_bpm - self._x[0]
        s = self._p[0, 0] + self._r
        gated = abs(innovation) > self._gate * np.sqrt(s)
        if not gated:
            # Update.
            k = self._p[:, 0] / s
            self._x = self._x + k * innovation
            self._p = self._p - np.outer(k, self._p[0, :])
        return TrackedRate(
            time_s=time_s,
            rate_bpm=float(self._x[0]),
            trend_bpm_per_min=float(self._x[1] * 60.0),
            uncertainty_bpm=float(np.sqrt(max(self._p[0, 0], 0.0))),
            gated=gated,
        )

    def track_series(self, rates: TimeSeries) -> List[TrackedRate]:
        """Run the tracker over a whole Eq. (5) rate series.

        Raises:
            ReproError: propagated from :meth:`update`.
        """
        return [self.update(float(t), float(v)) for t, v in rates]


def smooth_rate_series(rates: TimeSeries, **tracker_kwargs) -> TimeSeries:
    """Convenience: Kalman-smooth a rate series into a new TimeSeries.

    Raises:
        ReproError: on an empty input series.
    """
    if not rates:
        raise ReproError("cannot smooth an empty rate series")
    tracker = BreathingRateTracker(**tracker_kwargs)
    tracked = tracker.track_series(rates)
    return TimeSeries([t.time_s for t in tracked],
                      [t.rate_bpm for t in tracked])
