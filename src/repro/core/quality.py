"""Per-antenna data-quality scoring and optimal-antenna selection.

    "As the antennas are distributed geographically, the data qualities of
    antennas vary across different users in different locations.
    TagBreathe evaluates the data quality in terms of received signal
    strength and data sampling rate and extract breathing signals with the
    data reported by the optimal antenna for each user."  (Section IV-D-3)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import InsufficientDataError
from ..reader.tagreport import TagReport


@dataclass(frozen=True)
class AntennaQuality:
    """Quality metrics of one antenna's data for one user.

    Attributes:
        antenna_port: the LLRP port the metrics describe.
        read_count: reads of this user's tags via this antenna.
        sampling_rate_hz: reads per second of wall-clock span.
        mean_rssi_dbm: mean received signal strength.
        score: combined quality score (higher is better).
    """

    antenna_port: int
    read_count: int
    sampling_rate_hz: float
    mean_rssi_dbm: float
    score: float


#: Score weights: sampling rate matters more than raw RSSI (a strong but
#: rarely-read stream cannot carry a breathing signal), mirroring the
#: paper's ordering "received signal strength and data sampling rate".
_RATE_WEIGHT = 1.0
_RSSI_WEIGHT = 0.5
#: RSSI normalisation anchors [dBm] for the score's RSSI term.
_RSSI_FLOOR = -80.0
_RSSI_CEIL = -30.0


def quality_score(read_count: int, span_s: float,
                  mean_rssi_dbm: float) -> float:
    """The Section IV-D-3 quality score from its three raw ingredients.

    Pure and stateless so every antenna-selection path — the batch
    report-list scoring below and the incremental column-store scoring in
    :mod:`repro.core.incremental` — computes the *same float* from the
    same measurements.
    """
    rate = read_count / span_s
    rssi_norm = (mean_rssi_dbm - _RSSI_FLOOR) / (_RSSI_CEIL - _RSSI_FLOOR)
    rssi_norm = min(1.0, max(0.0, rssi_norm))
    # Rate term saturates at 50 Hz: beyond that, extra reads add
    # nothing for a sub-1 Hz signal.
    rate_norm = min(1.0, rate / 50.0)
    return _RATE_WEIGHT * rate_norm + _RSSI_WEIGHT * rssi_norm


def antenna_quality_scores(
    reports: Iterable[TagReport],
    span_s: Optional[float] = None,
) -> Dict[int, AntennaQuality]:
    """Score each antenna's data quality for one user's reports.

    Args:
        reports: one user's reads (all antennas mixed).
        span_s: wall-clock span for rate computation; defaults to the
            report span (use the trial duration for fair comparisons when
            an antenna saw only a brief burst).

    Returns:
        antenna_port -> quality metrics (empty dict for no reports).
    """
    by_port: Dict[int, List[TagReport]] = defaultdict(list)
    for report in reports:
        by_port[report.antenna_port].append(report)
    if not by_port:
        return {}
    all_times = [r.timestamp_s for rs in by_port.values() for r in rs]
    default_span = max(all_times) - min(all_times)
    span = span_s if span_s is not None else max(default_span, 1e-9)

    out: Dict[int, AntennaQuality] = {}
    for port, port_reports in by_port.items():
        rssi = float(np.mean([r.rssi_dbm for r in port_reports]))
        out[port] = AntennaQuality(
            antenna_port=port,
            read_count=len(port_reports),
            sampling_rate_hz=len(port_reports) / span,
            mean_rssi_dbm=rssi,
            score=quality_score(len(port_reports), span, rssi),
        )
    return out


def select_best_antenna(
    reports: Iterable[TagReport],
    span_s: Optional[float] = None,
) -> int:
    """The optimal antenna port for one user (Section IV-D-3).

    Raises:
        InsufficientDataError: when the user has no reports at all.
    """
    scores = antenna_quality_scores(reports, span_s=span_s)
    if not scores:
        raise InsufficientDataError("no reports: cannot select an antenna")
    return max(scores.values(), key=lambda q: q.score).antenna_port


def filter_to_antenna(reports: Iterable[TagReport], port: int) -> List[TagReport]:
    """Keep only reads delivered via ``port``, order preserved."""
    return [r for r in reports if r.antenna_port == port]


def select_antenna_with_failover(
    reports: Iterable[TagReport],
    stale_s: float,
    span_s: Optional[float] = None,
) -> Tuple[int, Tuple[int, ...]]:
    """Optimal-antenna selection that fails over past dead ports.

    :func:`select_best_antenna` scores ports over the whole window, so a
    port that delivered excellent data for 55 s and then went dark (cable
    kicked, port driver crashed) still wins the score — and the estimate
    would silently ride a dead antenna.  This variant demotes any port
    whose newest read lags the overall newest read by more than
    ``stale_s`` and picks the best-scoring *live* port instead.

    Args:
        reports: one user's reads (all antennas mixed).
        stale_s: silence at the window end that marks a port dead.
        span_s: wall-clock span forwarded to the quality scoring.

    Returns:
        ``(port, failed_over)`` — the chosen live port and the stale ports
        that outscored it (empty tuple = no failover happened, the result
        matches :func:`select_best_antenna` exactly).

    Raises:
        InsufficientDataError: when the user has no reports at all.  (A
        live port always exists — the port owning the newest read is live
        by definition — so failover itself cannot fail.)
    """
    report_list = list(reports)
    scores = antenna_quality_scores(report_list, span_s=span_s)
    if not scores:
        raise InsufficientDataError("no reports: cannot select an antenna")
    last_by_port: Dict[int, float] = {}
    for report in report_list:
        last_by_port[report.antenna_port] = max(
            last_by_port.get(report.antenna_port, -np.inf), report.timestamp_s
        )
    t_latest = max(last_by_port.values())
    live = {p for p, t in last_by_port.items() if t >= t_latest - stale_s}
    chosen = max(
        (scores[p] for p in live), key=lambda q: q.score
    ).antenna_port
    failed_over = tuple(sorted(
        p for p, q in scores.items()
        if p not in live and q.score > scores[chosen].score
    ))
    return chosen, failed_over
