"""RSS-amplitude breathing estimation — the fallback path of DESIGN.md §16.

The paper's Fig. 2 shows the RSSI of a chest tag rippling with
breathing, then Section IV-A rejects it for the production path: the
0.5 dBm quantisation cannot resolve subtle motion.  UbiBreathe (arXiv
1505.02388) demonstrated the opposite trade: RSS alone carries a usable
breathing estimate when processed carefully, and — crucially — its
failure modes are *independent* of the phase path's.  Heavy phase noise
(dense multipath, marginal SNR, interference) randomises the Eq. 3
displacement track while leaving the amplitude ripple intact, which is
exactly the regime where this estimator takes over from zero-crossing
(see :func:`repro.core.estimators.select_estimator`).

Recipe:

1. subtract each (tag, channel, antenna) group's mean RSSI — the
   amplitude analogue of the phase path's per-(tag, channel) grouping.
   Tag membership matters as much as channel: a user's tags sit at
   different ranges/placements, so their mean levels differ by many dB —
   far more than the sub-dB breathing ripple — and a merge without
   per-tag demeaning is dominated by inter-tag level jumps;
2. average each group *separately* within 0.25 s bins — quantised
   readings dither across the 0.5 dBm steps, so the bin mean recovers
   sub-step amplitude;
3. combine the groups coherently via their first principal component.
   The breathing ripple rides a standing-wave pattern whose phase is
   an independent unknown per link, so each (tag, channel, antenna)
   group sees the same chest motion with a *random sign and scale* —
   some groups even sit at a standing-wave null, where the response
   frequency-doubles.  A naive concatenation therefore cancels as
   often as it adds (and the cancellation residue beats at twice the
   breathing rate); the dominant SVD component instead learns each
   group's sign/weight and adds them in phase — the cheap analogue of
   the subcarrier-PCA combining used by CSI breathing sensors;
4. resample to a regular 20 Hz grid and run the same
   filter/zero-crossing extraction as the phase path (Eq. 5 semantics
   preserved: the estimate is still a median of crossing-pair rates;
   crossing positions are invariant to the principal component's
   arbitrary overall sign, which is canonicalised anyway).
"""

from __future__ import annotations

import numpy as np

from ..errors import InsufficientDataError
from ..streams.resample import resample_linear
from ..streams.timeseries import TimeSeries
from .estimators import BreathEstimator, EstimationWindow
from .extraction import BreathExtractor, BreathingEstimate

#: Averaging-bin width [s]; matches the Fig. 2 RSSI baseline.
RSS_BIN_S = 0.25

#: Regular-grid rate [Hz] for filtering; matches the baselines' grid.
RSS_GRID_HZ = 20.0

#: Antenna ports are 1-4 (Impinj R420), so 8 strides are enough to pack
#: the antenna into one integer key without collisions; 1024 channel
#: strides cover every regulatory hop plan.  Together they pack
#: (tag, channel, antenna) into a single collision-free int64 key.
_ANTENNA_STRIDE = 8
_CHANNEL_STRIDE = 1024


class RSSEstimator(BreathEstimator):
    """UbiBreathe-style estimator: rate from the RSS amplitude ripple."""

    name = "rss"

    def __init__(self, extractor: BreathExtractor) -> None:
        self._extractor = extractor

    def estimate(self, window: EstimationWindow) -> BreathingEstimate:
        """Estimate the window's breathing rate from its RSSI column.

        Raises:
            InsufficientDataError: with too few reads, too few distinct
                timestamps, or too few crossings downstream.
        """
        times = window.times
        n = int(times.shape[0])
        if n < 8:
            raise InsufficientDataError("too few reads for RSS estimation")
        key = ((window.tag.astype(np.int64) * _CHANNEL_STRIDE
                + window.channel.astype(np.int64)) * _ANTENNA_STRIDE
               + window.antenna.astype(np.int64))
        uniq, inverse = np.unique(key, return_inverse=True)
        n_groups = int(uniq.shape[0])
        # Canonicalise group ids to order-of-first-appearance: the tag
        # column only contracts the *partition* (the streaming path uses
        # different label values for the same groups), and the SVD below
        # must see the identical matrix either way.
        first_seen = np.full(n_groups, n, dtype=np.int64)
        np.minimum.at(first_seen, inverse, np.arange(n, dtype=np.int64))
        rank = np.empty(n_groups, dtype=np.int64)
        rank[np.argsort(first_seen, kind="stable")] = np.arange(n_groups)
        group = rank[inverse]
        sums = np.bincount(group, weights=window.rssi, minlength=n_groups)
        counts = np.bincount(group, minlength=n_groups)
        demeaned = window.rssi - (sums / counts)[group]

        # Per-group bin means on one shared grid.
        t0 = float(times[0])
        bins = np.floor((times - t0) / RSS_BIN_S).astype(np.int64)
        n_bins = int(bins[-1]) + 1
        flat = group * n_bins + bins
        bin_sums = np.bincount(flat, weights=demeaned,
                               minlength=n_groups * n_bins)
        bin_counts = np.bincount(flat, minlength=n_groups * n_bins)
        matrix = np.zeros(n_groups * n_bins)
        occupied = bin_counts > 0
        matrix[occupied] = bin_sums[occupied] / bin_counts[occupied]
        matrix = matrix.reshape(n_groups, n_bins)
        bin_occupied = occupied.reshape(n_groups, n_bins).any(axis=0)
        if int(bin_occupied.sum()) < 8:
            raise InsufficientDataError("too few RSS bins for estimation")

        # Coherent combine: dominant SVD component across groups.  The
        # overall sign is arbitrary; pin it so the largest-magnitude
        # sample is positive (crossing extraction would not care, but a
        # canonical series keeps both estimate paths bit-identical).
        _, singular, vt = np.linalg.svd(matrix, full_matrices=False)
        combined = vt[0] * singular[0]
        if combined[np.argmax(np.abs(combined))] < 0.0:
            combined = -combined
        centers = t0 + (np.arange(n_bins) + 0.5) * RSS_BIN_S
        series = TimeSeries(centers[bin_occupied], combined[bin_occupied])
        regular = resample_linear(series, RSS_GRID_HZ)
        return self._extractor.estimate(regular)
