"""Raw-data fusion of multiple tag streams — Eq. (6)–(7), Section IV-C.

    "we carry out low level data fusion by fusing the raw data before
    extracting breath signals. That is because we can effectively improve
    signal strength by fusing raw data, which substantially enhances
    signal extraction especially when the signals are weak."

Mechanics: each tag's displacement increments (Eq. 3) are summed within
time bins of width ``delta_t`` and the per-bin sums of all ``n`` tags are
added (Eq. 6); the binned fused increments are then accumulated (Eq. 7)
into the displacement track handed to the extraction stage.

Because all of a user's tags move in phase during breathing ("the three
tags' relative displacement to reader's antenna simultaneously decrease
and increase"), the signals add coherently while measurement noise adds
incoherently — the SNR gain that rescues weak-signal scenarios.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from ..errors import EmptyStreamError, StreamError
from ..reader.tagreport import TagReport
from ..streams.resample import bin_mean, bin_sum
from ..streams.timeseries import TimeSeries
from .preprocess import StreamKey

#: The paper's fusion bin width Delta-t; 50 ms keeps the fused stream at
#: 20 Hz, far above any breathing frequency yet coarse enough that every
#: bin usually contains reads from several tags.
DEFAULT_BIN_S = 0.05


def group_reports_by_user(
    reports: Iterable[TagReport],
    user_ids: Optional[Set[int]] = None,
) -> Dict[int, List[TagReport]]:
    """Split a capture by the EPC user-ID field (Fig. 9).

    Args:
        reports: the full capture (may include contending item tags).
        user_ids: when given, only these users' reads are kept — this is
            how the 3 monitoring tags are picked out from 30 contending
            item tags in the Fig. 14 experiment.

    Returns:
        user_id -> that user's reads, order preserved.
    """
    grouped: Dict[int, List[TagReport]] = defaultdict(list)
    for report in reports:
        if user_ids is not None and report.user_id not in user_ids:
            continue
        grouped[report.user_id].append(report)
    return dict(grouped)


@dataclass(frozen=True)
class FusedStream:
    """The output of raw-data fusion for one user.

    Attributes:
        user_id: whose tags were fused.
        increments: Eq. (6) — fused displacement increments per bin.
        track: Eq. (7) — accumulated displacement on the bin grid.
        tags_fused: how many tag streams contributed.
        bin_s: the fusion bin width used.
    """

    user_id: int
    increments: TimeSeries
    track: TimeSeries
    tags_fused: int
    bin_s: float


def fuse_streams(
    user_id: int,
    delta_streams: Dict[StreamKey, TimeSeries],
    bin_s: float = DEFAULT_BIN_S,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
) -> FusedStream:
    """Eq. (6)–(7): fuse one user's per-tag displacement increments.

    Args:
        user_id: the user the streams belong to (for bookkeeping).
        delta_streams: per-tag Eq. (3) increment series.
        bin_s: fusion bin width Delta-t.
        t_start / t_end: common grid bounds; default to the union span of
            all non-empty streams.

    Returns:
        The fused increments and the accumulated track.

    Raises:
        EmptyStreamError: if every stream is empty.
        StreamError: on a non-positive bin width.
    """
    if bin_s <= 0:
        raise StreamError("bin_s must be > 0")
    nonempty = [s for s in delta_streams.values() if s]
    if not nonempty:
        raise EmptyStreamError(f"user {user_id}: no displacement data to fuse")
    lo = min(s.start for s in nonempty) if t_start is None else t_start
    hi = max(s.end for s in nonempty) + 1e-9 if t_end is None else t_end

    fused: Optional[TimeSeries] = None
    for stream in nonempty:
        binned = bin_sum(stream, bin_s, t_start=lo, t_end=hi)
        if fused is None:
            fused = binned
        else:
            fused = TimeSeries.from_trusted(
                fused.times, fused.values + binned.values)
    assert fused is not None
    return FusedStream(
        user_id=user_id,
        increments=fused,
        track=fused.cumsum(),
        tags_fused=len(nonempty),
        bin_s=bin_s,
    )


def fuse_sample_streams(
    user_id: int,
    sample_streams: Dict[StreamKey, TimeSeries],
    bin_s: float = DEFAULT_BIN_S,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
) -> FusedStream:
    """Fuse per-tag *absolute* displacement samples (production path).

    The counterpart of :func:`fuse_streams` for the segment-normalised
    representation of :func:`repro.core.preprocess.displacement_samples`:
    each tag's samples are averaged within each Delta-t bin (empty bins
    interpolated) and the per-tag binned tracks are summed across tags.
    All of a user's tags move in phase during breathing (Section IV-D-1),
    so the sum is constructive exactly as Eq. (6) intends, while the
    per-sample noise of the tags averages down.

    Args:
        user_id: the user the streams belong to.
        sample_streams: per-tag displacement sample series.
        bin_s: fusion bin width Delta-t.
        t_start / t_end: common grid bounds (default: union span).

    Returns:
        FusedStream whose ``track`` is the summed binned displacement and
        whose ``increments`` is its first difference.

    Raises:
        EmptyStreamError: if every stream is empty.
        StreamError: on a non-positive bin width.
    """
    if bin_s <= 0:
        raise StreamError("bin_s must be > 0")
    nonempty = [s for s in sample_streams.values() if len(s) >= 2]
    if not nonempty:
        raise EmptyStreamError(f"user {user_id}: no displacement data to fuse")
    lo = min(s.start for s in nonempty) if t_start is None else t_start
    hi = max(s.end for s in nonempty) + 1e-9 if t_end is None else t_end

    fused: Optional[TimeSeries] = None
    for stream in nonempty:
        binned = bin_mean(stream, bin_s, t_start=lo, t_end=hi)
        if fused is None:
            fused = binned
        else:
            fused = TimeSeries.from_trusted(
                fused.times, fused.values + binned.values)
    assert fused is not None
    return FusedStream(
        user_id=user_id,
        increments=fused.diff(),
        track=fused,
        tags_fused=len(nonempty),
        bin_s=bin_s,
    )
