"""The end-to-end TagBreathe engine — Fig. 10's workflow as a public API.

    Data Collection -> Data Fusion -> Vital Sign Extraction

Batch mode (:meth:`TagBreathe.process`) consumes a full LLRP capture and
returns per-user estimates; streaming mode (:meth:`TagBreathe.feed` +
:meth:`TagBreathe.estimate_user`) consumes reports one at a time, the way
the paper's prototype visualised breathing "in realtime" (Section V).

Two preprocessing representations are supported (see DESIGN.md):

* ``mode="samples"`` (default, production): per-channel unwrapped phase
  segments, offset-normalised and fused by binned averaging.  Every sample
  carries only its own noise — no dwell-boundary random walk — and channel
  recurrences preserve continuity even when reads are sparse (30
  contending tags, 90-degree orientation).
* ``mode="increments"``: the literal Eq. (3)/(6)/(7) increment pipeline of
  the paper's text, retained for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..config import PipelineConfig
from ..errors import ExtractionError, InsufficientDataError
from ..reader.tagreport import TagReport
from ..streams.timeseries import TimeSeries
from .extraction import BreathExtractor, BreathingEstimate
from .fusion import (
    fuse_sample_streams,
    fuse_streams,
    group_reports_by_user,
)
from .preprocess import (
    DEFAULT_MAX_GAP_S,
    DEFAULT_SEGMENT_GAP_S,
    DEFAULT_SMOOTH_K,
    StreamKey,
    default_frequencies,
    displacement_deltas,
    displacement_samples,
    group_reports_by_stream,
)
from .quality import filter_to_antenna, select_best_antenna

#: Supported preprocessing representations.
MODES = ("samples", "increments")


@dataclass(frozen=True)
class UserEstimate:
    """One user's monitoring result.

    Attributes:
        user_id: the monitored user.
        estimate: the extraction output (rate, signal, crossings).
        antenna_port: the antenna whose data was used (None = all fused).
        tags_fused: how many tag streams contributed.
        read_count: how many low-level reads backed the estimate.
    """

    user_id: int
    estimate: BreathingEstimate
    antenna_port: Optional[int]
    tags_fused: int
    read_count: int

    @property
    def rate_bpm(self) -> float:
        """Shortcut to the headline breathing rate."""
        return self.estimate.rate_bpm


class TagBreathe:
    """The TagBreathe breath-monitoring engine.

    Args:
        frequencies_hz: channel-index -> carrier frequency map of the
            reader's hop table (defaults to the 10-channel FCC plan).
        config: signal-processing parameters (cutoff, buffer M, ...).
        user_ids: when given, only these users are monitored; all other
            EPCs (e.g. item-labelling tags) are ignored — the Fig. 14
            setup.
        filter_type: "fft" (paper default) or "fir".
        select_antenna: restrict each user's data to the best-quality
            antenna (Section IV-D-3) when reads arrive via several
            antennas.
        mode: "samples" (production) or "increments" (paper-literal);
            see the module docstring.
        max_gap_s: chain/segment gap limit for the chosen mode (defaults
            to the mode's recommended value).
        smooth_k: phase moving-average window (increments mode only).

    Raises:
        ExtractionError: on an unknown mode or filter type.
    """

    def __init__(
        self,
        frequencies_hz: Optional[Sequence[float]] = None,
        config: Optional[PipelineConfig] = None,
        user_ids: Optional[Set[int]] = None,
        filter_type: str = "fft",
        select_antenna: bool = True,
        mode: str = "samples",
        max_gap_s: Optional[float] = None,
        smooth_k: int = DEFAULT_SMOOTH_K,
    ) -> None:
        if mode not in MODES:
            raise ExtractionError(f"mode must be one of {MODES}, got {mode!r}")
        self._frequencies = list(
            frequencies_hz if frequencies_hz is not None else default_frequencies()
        )
        self._config = config if config is not None else PipelineConfig()
        self._user_ids = set(user_ids) if user_ids is not None else None
        self._extractor = BreathExtractor(self._config, filter_type=filter_type)
        self._select_antenna = select_antenna
        self._mode = mode
        if max_gap_s is None:
            max_gap_s = (DEFAULT_SEGMENT_GAP_S if mode == "samples"
                         else DEFAULT_MAX_GAP_S)
        self._max_gap_s = max_gap_s
        self._smooth_k = smooth_k
        # Streaming state: raw reports buffered per (user, tag) stream;
        # estimates re-run the batch path over the trailing window, so
        # streaming and batch results agree by construction.
        self._report_buffers: Dict[StreamKey, List[TagReport]] = {}

    @property
    def config(self) -> PipelineConfig:
        """The signal-processing configuration in force."""
        return self._config

    @property
    def mode(self) -> str:
        """The preprocessing representation in use."""
        return self._mode

    @property
    def extractor(self) -> BreathExtractor:
        """The extraction stage (exposed for inspection/ablation)."""
        return self._extractor

    # ------------------------------------------------------------------
    # Batch mode
    # ------------------------------------------------------------------
    def process(self, reports: Iterable[TagReport]) -> Dict[int, UserEstimate]:
        """Process a full capture; estimates for every estimable user.

        Users without enough data (fully blocked LOS, too few crossings)
        are silently absent — the paper's "does not report" behaviour.
        Use :meth:`process_detailed` to see why a user is missing.
        """
        estimates, _failures = self.process_detailed(reports)
        return estimates

    def process_detailed(
        self, reports: Iterable[TagReport]
    ) -> Tuple[Dict[int, UserEstimate], Dict[int, str]]:
        """Like :meth:`process`, also returning per-user failure reasons."""
        by_user = group_reports_by_user(reports, user_ids=self._user_ids)
        estimates: Dict[int, UserEstimate] = {}
        failures: Dict[int, str] = {}
        for user_id, user_reports in sorted(by_user.items()):
            try:
                estimates[user_id] = self._process_user(user_id, user_reports)
            except InsufficientDataError as exc:
                failures[user_id] = str(exc)
        if self._user_ids is not None:
            for user_id in self._user_ids - set(by_user):
                failures[user_id] = "no reads received (tag unreadable?)"
        return estimates, failures

    def fused_track(self, user_id: int,
                    user_reports: Sequence[TagReport]) -> TimeSeries:
        """The fused displacement track for one user's reports.

        Exposed for diagnostics and the characterisation benchmarks
        (Figs. 6-8 plot exactly this series and its derivatives).

        Raises:
            InsufficientDataError / EmptyStreamError: with too little data.
        """
        streams = group_reports_by_stream(user_reports)
        if self._mode == "samples":
            sample_streams = {
                key: displacement_samples(tag_reports, self._frequencies,
                                          max_gap_s=self._max_gap_s)
                for key, tag_reports in streams.items()
            }
            fused = fuse_sample_streams(user_id, sample_streams,
                                        bin_s=self._config.fusion_bin_s)
        else:
            delta_streams = {
                key: displacement_deltas(tag_reports, self._frequencies,
                                         max_gap_s=self._max_gap_s,
                                         smooth_k=self._smooth_k)
                for key, tag_reports in streams.items()
            }
            fused = fuse_streams(user_id, delta_streams,
                                 bin_s=self._config.fusion_bin_s)
        return fused.track

    def _process_user(self, user_id: int,
                      user_reports: List[TagReport]) -> UserEstimate:
        antenna_port: Optional[int] = None
        working = user_reports
        ports = {r.antenna_port for r in user_reports}
        if self._select_antenna and len(ports) > 1:
            antenna_port = select_best_antenna(user_reports)
            working = filter_to_antenna(user_reports, antenna_port)
        elif len(ports) == 1:
            antenna_port = next(iter(ports))

        streams = group_reports_by_stream(working)
        track = self.fused_track(user_id, working)
        estimate = self._extractor.estimate(track)
        return UserEstimate(
            user_id=user_id,
            estimate=estimate,
            antenna_port=antenna_port,
            tags_fused=len(streams),
            read_count=len(working),
        )

    # ------------------------------------------------------------------
    # Streaming mode
    # ------------------------------------------------------------------
    def feed(self, report: TagReport) -> None:
        """Consume one report into the streaming buffers.

        Reports for unmonitored users (when ``user_ids`` was given) are
        dropped; out-of-order reports within a stream are ignored rather
        than corrupting the buffers.
        """
        if self._user_ids is not None and report.user_id not in self._user_ids:
            return
        if report.channel_index >= len(self._frequencies):
            raise InsufficientDataError(
                f"channel index {report.channel_index} outside the "
                f"{len(self._frequencies)}-channel frequency map"
            )
        key = report.stream_key
        buffer = self._report_buffers.setdefault(key, [])
        if buffer and report.timestamp_s <= buffer[-1].timestamp_s:
            return
        buffer.append(report)
        # Bound memory: keep ~4 analysis windows of raw reports.
        if len(buffer) % 512 == 0:
            horizon = report.timestamp_s - 4.0 * self._window_s()
            if buffer[0].timestamp_s < horizon:
                self._report_buffers[key] = [
                    r for r in buffer if r.timestamp_s >= horizon
                ]

    def feed_many(self, reports: Iterable[TagReport]) -> None:
        """Feed a batch of reports in order."""
        for report in reports:
            self.feed(report)

    def estimate_user(self, user_id: int,
                      window_s: Optional[float] = None) -> UserEstimate:
        """Estimate from the trailing window of streamed data.

        Args:
            user_id: the user to estimate.
            window_s: analysis window length (default: 25 s, the paper's
                characterisation window).

        Raises:
            InsufficientDataError: when no streamed data covers the user
                or the window holds too little signal.
        """
        window = window_s if window_s is not None else self._window_s()
        user_reports: List[TagReport] = []
        t_latest = None
        for key, buffer in self._report_buffers.items():
            if key[0] != user_id or not buffer:
                continue
            last = buffer[-1].timestamp_s
            t_latest = last if t_latest is None else max(t_latest, last)
        if t_latest is None:
            raise InsufficientDataError(f"no streamed data for user {user_id}")
        cutoff = t_latest - window
        for key, buffer in self._report_buffers.items():
            if key[0] != user_id:
                continue
            user_reports.extend(r for r in buffer if r.timestamp_s >= cutoff)
        user_reports.sort(key=lambda r: r.timestamp_s)
        if not user_reports:
            raise InsufficientDataError(f"no streamed data for user {user_id}")
        return self._process_user(user_id, user_reports)

    def streamed_users(self) -> List[int]:
        """Users with at least one buffered report."""
        return sorted({key[0] for key, buf in self._report_buffers.items() if buf})

    def reset_streaming(self) -> None:
        """Drop all streaming state (start a fresh monitoring session)."""
        self._report_buffers.clear()

    # ------------------------------------------------------------------
    def _window_s(self) -> float:
        """The default streaming analysis window: 25 s as in Section IV-A."""
        return max(25.0, self._config.min_window_s)
