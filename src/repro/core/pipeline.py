"""The end-to-end TagBreathe engine — Fig. 10's workflow as a public API.

    Data Collection -> Data Fusion -> Vital Sign Extraction

Batch mode (:meth:`TagBreathe.process`) consumes a full LLRP capture and
returns per-user estimates; streaming mode (:meth:`TagBreathe.feed` +
:meth:`TagBreathe.estimate_user`) consumes reports one at a time, the way
the paper's prototype visualised breathing "in realtime" (Section V).

Batch mode is the *reference implementation*; the streaming tick is
O(new-samples) — ``feed()`` differences each report once into per-stream
phase chains and a timestamp-ordered window index, ``estimate_user``
slices the trailing window out of that state (bit-for-bit equal to the
from-scratch :meth:`TagBreathe.estimate_user_recompute`), and a tick with
no new reports returns the memoized ``UserEstimate`` without touching the
filter (DESIGN.md §12).  All three paths share one trailing-window
definition: ``(t_latest - window_s, t_latest]``
(:func:`repro.streams.windows.trailing_window_bounds`).

Two preprocessing representations are supported (see DESIGN.md):

* ``mode="samples"`` (default, production): per-channel unwrapped phase
  segments, offset-normalised and fused by binned averaging.  Every sample
  carries only its own noise — no dwell-boundary random walk — and channel
  recurrences preserve continuity even when reads are sparse (30
  contending tags, 90-degree orientation).
* ``mode="increments"``: the literal Eq. (3)/(6)/(7) increment pipeline of
  the paper's text, retained for the ablation benchmarks.
"""

from __future__ import annotations

import warnings
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import obs, perf
from ..config import (
    EstimatorConfig,
    MotionConfig,
    PipelineConfig,
    RobustnessConfig,
)
from ..epc.codec import EPC96
from ..errors import (
    DegradedEstimateWarning,
    EmptyStreamError,
    ExtractionError,
    InsufficientDataError,
)
from ..reader.batch import ReportBatch
from ..reader.tagreport import TagReport
from ..streams.timeseries import TimeSeries
from ..streams.windows import trailing_window_bounds
from .degradation import (
    DEGRADED_REASONS,
    REASON_ANTENNA_FAILOVER,
    REASON_DISORDERED,
    REASON_GAPS,
    REASON_MOTION,
    REASON_OUTLIERS,
    REASON_PHASE_DEGRADED,
    REASON_RSS_FALLBACK,
    REASON_TAG_DEATH,
)
from .estimators import (
    EstimationWindow,
    build_estimators,
    resolve_estimator,
    track_roughness,
)
from .extraction import BreathExtractor, BreathingEstimate
from .fusion import (
    fuse_sample_streams,
    fuse_streams,
    group_reports_by_user,
)
from .incremental import IncrementalEstimator
from .motion import STILL, MotionReport, apply_motion, score_motion
from .preprocess import (
    DEFAULT_MAX_GAP_S,
    DEFAULT_SEGMENT_GAP_S,
    DEFAULT_SMOOTH_K,
    StreamKey,
    default_frequencies,
    displacement_deltas,
    displacement_samples,
    group_reports_by_stream,
    hampel_filter,
)
from .quality import filter_to_antenna, select_antenna_with_failover

__all__ = [
    "MODES", "FEED_DROP_KEYS", "DEGRADED_REASONS",
    "REASON_DISORDERED", "REASON_GAPS", "REASON_TAG_DEATH",
    "REASON_ANTENNA_FAILOVER", "REASON_OUTLIERS",
    "REASON_MOTION", "REASON_PHASE_DEGRADED", "REASON_RSS_FALLBACK",
    "sanitize_reports", "UserEstimate", "TagBreathe",
]

#: Supported preprocessing representations.
MODES = ("samples", "increments")

#: The stable key set of :attr:`TagBreathe.feed_drop_counts` — the
#: per-cause accounting of reports the streaming entry point discarded.
#: ``late``: older than the newest buffered report of the same tag
#: stream; ``duplicate``: identical timestamp on the same stream (a
#: re-delivery); ``invalid_channel``: channel index outside the
#: configured hop table.  :mod:`repro.serve` forwards these counters in
#: its ``estimate`` messages so dashboards can watch them like
#: packet-loss stats.
FEED_DROP_KEYS = ("late", "duplicate", "invalid_channel")

#: Accepted reports per stream between bounded-memory prune checks.
_PRUNE_EVERY = 512


class _StreamBuffer:
    """Columnar storage of one (user, tag) stream's buffered reports.

    The streaming hot path appends scalars to plain python lists (six
    ``list.append`` calls — cheaper than building an object per report),
    and the batched path bulk-extends from numpy columns; ``TagReport``
    objects are materialised only on the cold paths (checkpointing,
    recompute-reference ticks).  Timestamps are strictly increasing by
    the feed contract, so windowing and pruning are binary searches.

    ``since_prune`` is the per-stream accepted-reports counter behind
    the bounded-memory prune trigger (it replaces the historical
    ``len(buffer) % 512`` check, which could stop firing forever once a
    prune moved the length off the modulo phase).
    """

    __slots__ = ("key", "t", "phase", "rssi", "doppler", "channel",
                 "antenna", "last_t", "since_prune")

    def __init__(self, key: StreamKey) -> None:
        self.key = key
        self.t: List[float] = []
        self.phase: List[float] = []
        self.rssi: List[float] = []
        self.doppler: List[float] = []
        self.channel: List[int] = []
        self.antenna: List[int] = []
        self.last_t: Optional[float] = None
        self.since_prune = 0

    def __len__(self) -> int:
        return len(self.t)

    def append(self, report: TagReport) -> None:
        """Buffer one accepted report (must advance the stream's time)."""
        t = report.timestamp_s
        self.t.append(t)
        self.phase.append(report.phase_rad)
        self.rssi.append(report.rssi_dbm)
        self.doppler.append(report.doppler_hz)
        self.channel.append(report.channel_index)
        self.antenna.append(report.antenna_port)
        self.last_t = t

    def extend_columns(self, t, phase, rssi, doppler, channel,
                       antenna) -> None:
        """Bulk-append accepted batch rows (strictly increasing times).

        ``ndarray.tolist()`` yields the same plain python floats/ints
        :meth:`append` stores, so scalar- and batch-fed buffers compare
        equal element for element.
        """
        self.t.extend(t.tolist())
        self.phase.extend(phase.tolist())
        self.rssi.extend(rssi.tolist())
        self.doppler.extend(doppler.tolist())
        self.channel.extend(channel.tolist())
        self.antenna.extend(antenna.tolist())
        self.last_t = self.t[-1]

    def prune(self, horizon: float) -> None:
        """Drop rows with ``t < horizon`` from the front."""
        cut = bisect_left(self.t, horizon)
        if not cut:
            return
        del self.t[:cut]
        del self.phase[:cut]
        del self.rssi[:cut]
        del self.doppler[:cut]
        del self.channel[:cut]
        del self.antenna[:cut]

    def reports(self, after: Optional[float] = None) -> List[TagReport]:
        """Materialise rows (those with ``t > after``) as ``TagReport``s."""
        start = 0 if after is None else bisect_right(self.t, after)
        if start >= len(self.t):
            return []
        epc = EPC96.from_user_tag(*self.key)
        return [
            TagReport(epc=epc, timestamp_s=ts, phase_rad=ph, rssi_dbm=rs,
                      doppler_hz=dp, channel_index=ch, antenna_port=an)
            for ts, ph, rs, dp, ch, an in zip(
                self.t[start:], self.phase[start:], self.rssi[start:],
                self.doppler[start:], self.channel[start:],
                self.antenna[start:])
        ]


def sanitize_reports(
    reports: Sequence[TagReport],
) -> Tuple[List[TagReport], int, int]:
    """Restore timestamp order and drop duplicate deliveries.

    The batch pipeline historically assumed its input was the pristine,
    timestamp-ordered capture a healthy simulator emits; real LLRP feeds
    (and :mod:`repro.faults`) deliver reports late, reordered, and twice.
    This pass makes the stream safe for the differencing stages:

    * out-of-order reports are re-sorted into place (stable, so equal
      timestamps keep their delivery order) and counted;
    * byte-identical re-deliveries — same stream, timestamp, antenna, and
      channel — are dropped and counted.

    Returns:
        ``(clean, n_disordered, n_duplicates)``.  Already-clean input
        comes back as the same report objects in the same order.
    """
    report_list = list(reports)
    n_disordered = sum(
        1 for a, b in zip(report_list, report_list[1:])
        if b.timestamp_s < a.timestamp_s
    )
    if n_disordered:
        report_list = sorted(report_list, key=lambda r: r.timestamp_s)
    seen: Set[Tuple] = set()
    clean: List[TagReport] = []
    n_duplicates = 0
    for report in report_list:
        key = (report.stream_key, report.timestamp_s,
               report.antenna_port, report.channel_index)
        if key in seen:
            n_duplicates += 1
            continue
        seen.add(key)
        clean.append(report)
    return clean, n_disordered, n_duplicates


def _trailing_reports(reports: List[TagReport],
                      window_s: float) -> List[TagReport]:
    """One user's reports inside the pinned trailing window, order kept."""
    t_latest = max(r.timestamp_s for r in reports)
    lo, hi = trailing_window_bounds(t_latest, window_s)
    return [r for r in reports if lo < r.timestamp_s <= hi]


@dataclass(frozen=True)
class UserEstimate:
    """One user's monitoring result.

    Attributes:
        user_id: the monitored user.
        estimate: the extraction output (rate, signal, crossings).
        antenna_port: the antenna whose data was used (None = all fused).
        tags_fused: how many tag streams contributed.
        read_count: how many low-level reads backed the estimate.
        confidence: 1.0 for a clean, fully-backed estimate; lowered
            multiplicatively for every degradation the pipeline had to
            survive (report loss, dead tags, antenna failover, rejected
            outliers, detected motion).  Callers gate on this to tell a
            trustworthy estimate from a best-effort one.
        degraded_reasons: which degradations occurred, as stable machine
            names from :data:`DEGRADED_REASONS` (empty = clean).
        estimator: which :class:`~repro.core.estimators.BreathEstimator`
            produced the rate — ``"zero_crossing"`` (the paper's path),
            ``"spectral"``, or ``"rss"`` (the UbiBreathe-style
            fallback; accompanied by ``rss_fallback`` in
            ``degraded_reasons`` when ``auto`` mode chose it).
        motion_gated: the Doppler motion detector found gross body
            motion extensive or recent enough that the rate over this
            window should not be trusted at all (DESIGN.md §16);
            confidence is pinned low when set.
        motion_score: the detector's largest bin z-score (0.0 when
            still or the detector is disabled; walking-scale motion
            scores in the tens).
    """

    user_id: int
    estimate: BreathingEstimate
    antenna_port: Optional[int]
    tags_fused: int
    read_count: int
    confidence: float = 1.0
    degraded_reasons: Tuple[str, ...] = field(default=())
    estimator: str = "zero_crossing"
    motion_gated: bool = False
    motion_score: float = 0.0

    @property
    def rate_bpm(self) -> float:
        """Shortcut to the headline breathing rate."""
        return self.estimate.rate_bpm

    @property
    def degraded(self) -> bool:
        """True when the estimate was produced in degraded mode."""
        return bool(self.degraded_reasons)


class TagBreathe:
    """The TagBreathe breath-monitoring engine.

    Args:
        frequencies_hz: channel-index -> carrier frequency map of the
            reader's hop table (defaults to the 10-channel FCC plan).
        config: signal-processing parameters (cutoff, buffer M, ...).
        user_ids: when given, only these users are monitored; all other
            EPCs (e.g. item-labelling tags) are ignored — the Fig. 14
            setup.
        filter_type: "fft" (paper default) or "fir".
        select_antenna: restrict each user's data to the best-quality
            antenna (Section IV-D-3) when reads arrive via several
            antennas.
        mode: "samples" (production) or "increments" (paper-literal);
            see the module docstring.
        max_gap_s: chain/segment gap limit for the chosen mode (defaults
            to the mode's recommended value).
        smooth_k: phase moving-average window (increments mode only).
        robustness: graceful-degradation thresholds (Hampel rejection,
            staleness watchdog, antenna failover); defaults preserve
            clean-capture output bit for bit.
        incremental: maintain feed-time incremental state so streaming
            ticks are O(new-samples) (samples mode only; increments mode
            always recomputes — see :mod:`repro.core.incremental`).
            Disable to benchmark against, or fall back to, the
            from-scratch recompute path; results are identical either
            way.
        motion: Doppler motion-detection thresholds (DESIGN.md §16);
            defaults never flag a clean still-subject capture.
        estimators: estimator selection and fallback hysteresis; the
            default ``auto`` runs the paper's zero-crossing path with
            RSS fallback under degraded phase, which on clean captures
            is bit-identical to the pre-lattice pipeline.

    Raises:
        ExtractionError: on an unknown mode or filter type.
    """

    def __init__(
        self,
        frequencies_hz: Optional[Sequence[float]] = None,
        config: Optional[PipelineConfig] = None,
        user_ids: Optional[Set[int]] = None,
        filter_type: str = "fft",
        select_antenna: bool = True,
        mode: str = "samples",
        max_gap_s: Optional[float] = None,
        smooth_k: int = DEFAULT_SMOOTH_K,
        robustness: Optional[RobustnessConfig] = None,
        incremental: bool = True,
        motion: Optional[MotionConfig] = None,
        estimators: Optional[EstimatorConfig] = None,
    ) -> None:
        if mode not in MODES:
            raise ExtractionError(f"mode must be one of {MODES}, got {mode!r}")
        self._frequencies = list(
            frequencies_hz if frequencies_hz is not None else default_frequencies()
        )
        self._config = config if config is not None else PipelineConfig()
        self._user_ids = set(user_ids) if user_ids is not None else None
        self._extractor = BreathExtractor(self._config, filter_type=filter_type)
        self._select_antenna = select_antenna
        self._mode = mode
        if max_gap_s is None:
            max_gap_s = (DEFAULT_SEGMENT_GAP_S if mode == "samples"
                         else DEFAULT_MAX_GAP_S)
        self._max_gap_s = max_gap_s
        self._smooth_k = smooth_k
        self._robustness = robustness if robustness is not None else RobustnessConfig()
        self._motion = motion if motion is not None else MotionConfig()
        self._est_config = (estimators if estimators is not None
                            else EstimatorConfig())
        # The estimator lattice: every rate-producing path behind one
        # interface, sharing the extraction stage (DESIGN.md §16).
        self._estimators = build_estimators(self._extractor)
        # Per-user fallback hysteresis memory for auto mode: the
        # estimator that produced the user's previous *streaming*
        # estimate.  Batch process() stays stateless (previous=None).
        self._active_estimator: Dict[int, str] = {}
        # Streaming state: raw reports buffered per (user, tag) stream.
        # The buffers are the checkpointable source of truth; the
        # incremental estimator below is derived state, rebuilt
        # deterministically by re-feeding them (restore_streaming).
        self._report_buffers: Dict[StreamKey, _StreamBuffer] = {}
        # Tolerate-and-count accounting of reports feed() had to discard.
        self._feed_drops: Dict[str, int] = dict.fromkeys(FEED_DROP_KEYS, 0)
        # Drops incurred while restore_streaming replayed a snapshot —
        # kept apart from live-traffic counters (see last_restore_drop_counts).
        self._last_restore_drops: Dict[str, int] = dict.fromkeys(FEED_DROP_KEYS, 0)
        # Incremental streaming state (samples mode): per-user window
        # index + feed-time phase chains, plus the per-(user, window)
        # estimate memo keyed by state version.
        self._inc: Optional[IncrementalEstimator] = None
        if incremental and mode == "samples":
            self._inc = IncrementalEstimator(
                self._frequencies, self._config, self._robustness,
                self._extractor, self._select_antenna, self._max_gap_s,
                motion=self._motion, est_config=self._est_config,
                estimators=self._estimators)
        # Memo key: (user_id, window_s, per-call estimator override).
        self._tick_memo: Dict[Tuple[int, float, Optional[str]],
                              Tuple[int, str, object]] = {}

    @property
    def config(self) -> PipelineConfig:
        """The signal-processing configuration in force."""
        return self._config

    @property
    def robustness(self) -> RobustnessConfig:
        """The graceful-degradation thresholds in force."""
        return self._robustness

    @property
    def mode(self) -> str:
        """The preprocessing representation in use."""
        return self._mode

    @property
    def extractor(self) -> BreathExtractor:
        """The extraction stage (exposed for inspection/ablation)."""
        return self._extractor

    # ------------------------------------------------------------------
    # Batch mode
    # ------------------------------------------------------------------
    def process(self, reports: Iterable[TagReport],
                window_s: Optional[float] = None) -> Dict[int, UserEstimate]:
        """Process a full capture; estimates for every estimable user.

        Users without enough data (fully blocked LOS, too few crossings)
        are silently absent — the paper's "does not report" behaviour.
        Use :meth:`process_detailed` to see why a user is missing.

        Args:
            reports: the capture to process.
            window_s: when given, restrict each user to their trailing
                ``(t_latest - window_s, t_latest]`` window — the same
                pinned boundary semantics :meth:`estimate_user` applies
                (:func:`repro.streams.windows.trailing_window_bounds`),
                so batch and streamed results over identical reports are
                directly comparable.  Default: the whole capture.
        """
        estimates, _failures = self.process_detailed(reports,
                                                     window_s=window_s)
        return estimates

    def process_detailed(
        self, reports: Iterable[TagReport],
        window_s: Optional[float] = None,
    ) -> Tuple[Dict[int, UserEstimate], Dict[int, str]]:
        """Like :meth:`process`, also returning per-user failure reasons."""
        with obs.span("pipeline.process"), perf.stage("pipeline.process"):
            by_user = group_reports_by_user(reports, user_ids=self._user_ids)
            if window_s is not None:
                by_user = {
                    uid: _trailing_reports(urs, window_s)
                    for uid, urs in by_user.items()
                }
            perf.count("pipeline.reports_processed",
                       sum(len(v) for v in by_user.values()))
            estimates: Dict[int, UserEstimate] = {}
            failures: Dict[int, str] = {}
            for user_id, user_reports in sorted(by_user.items()):
                try:
                    with obs.span("pipeline.user", user_id=user_id) as span:
                        est = self._process_user(user_id, user_reports)
                        span.set(rate_bpm=est.rate_bpm,
                                 confidence=est.confidence,
                                 tags_fused=est.tags_fused,
                                 reads=est.read_count,
                                 degraded=list(est.degraded_reasons))
                    estimates[user_id] = est
                except InsufficientDataError as exc:
                    failures[user_id] = str(exc)
            if self._user_ids is not None:
                for user_id in self._user_ids - set(by_user):
                    failures[user_id] = "no reads received (tag unreadable?)"
            perf.count("pipeline.users_estimated", len(estimates))
        return estimates, failures

    def fused_track(self, user_id: int,
                    user_reports: Sequence[TagReport]) -> TimeSeries:
        """The fused displacement track for one user's reports.

        Exposed for diagnostics and the characterisation benchmarks
        (Figs. 6-8 plot exactly this series and its derivatives).

        Raises:
            InsufficientDataError / EmptyStreamError: with too little data.
        """
        track, _rejected, _total = self._fused_track_counting(user_id, user_reports)
        return track

    def _fused_track_counting(
        self, user_id: int, user_reports: Sequence[TagReport],
    ) -> Tuple[TimeSeries, int, int]:
        """Fused track plus Hampel accounting: (track, n_rejected, n_samples)."""
        streams = group_reports_by_stream(user_reports)
        rb = self._robustness
        n_rejected = 0
        n_samples = 0
        per_tag: Dict[StreamKey, TimeSeries] = {}
        for key, tag_reports in streams.items():
            if self._mode == "samples":
                stream = displacement_samples(tag_reports, self._frequencies,
                                              max_gap_s=self._max_gap_s)
            else:
                stream = displacement_deltas(tag_reports, self._frequencies,
                                             max_gap_s=self._max_gap_s,
                                             smooth_k=self._smooth_k)
            if rb.outlier_rejection and stream:
                stream, rejected = hampel_filter(
                    stream, window=rb.hampel_window,
                    n_sigmas=rb.hampel_n_sigmas)
                n_rejected += rejected
            per_tag[key] = stream
        n_samples = sum(len(s) for s in per_tag.values()) + n_rejected
        if self._mode == "samples":
            fused = fuse_sample_streams(user_id, per_tag,
                                        bin_s=self._config.fusion_bin_s)
        else:
            fused = fuse_streams(user_id, per_tag,
                                 bin_s=self._config.fusion_bin_s)
        return fused.track, n_rejected, n_samples

    def _process_user(self, user_id: int,
                      user_reports: List[TagReport],
                      previous_estimator: Optional[str] = None,
                      estimator_override: Optional[str] = None
                      ) -> UserEstimate:
        rb = self._robustness
        reasons: List[str] = []
        confidence = 1.0

        # 1. Delivery hygiene: re-order late reports, drop duplicates.
        working, n_disordered, n_duplicates = sanitize_reports(user_reports)
        n_bad = n_disordered + n_duplicates
        if n_bad:
            reasons.append(REASON_DISORDERED)
            confidence *= max(0.6, 1.0 - n_bad / max(1, len(user_reports)))

        # The Doppler motion screen (stage 4b) scores the *full* sanitized
        # window, before antenna selection and staleness demotion: those
        # filters exist for phase continuity, while Doppler motion
        # evidence is antenna-agnostic and halving the reports halves the
        # z-test's sqrt(n).
        motion_window = working

        # 2. Antenna selection with failover past dead ports.
        antenna_port: Optional[int] = None
        ports = {r.antenna_port for r in working}
        if self._select_antenna and len(ports) > 1:
            antenna_port, failed_over = select_antenna_with_failover(
                working, stale_s=rb.antenna_stale_s)
            if failed_over:
                reasons.append(REASON_ANTENNA_FAILOVER)
                confidence *= 0.85
            working = filter_to_antenna(working, antenna_port)
        elif len(ports) == 1:
            antenna_port = next(iter(ports))

        # 3. Staleness watchdog: demote permanently-dead tag streams so
        #    Eq. (6)-(7) fuse only live survivors.
        streams = group_reports_by_stream(working)
        if working and len(streams) > 1:
            t_latest = max(r.timestamp_s for r in working)
            dead = {
                key for key, tag_reports in streams.items()
                if tag_reports[-1].timestamp_s < t_latest - rb.stale_stream_s
            }
            if dead and len(dead) < len(streams):
                reasons.append(REASON_TAG_DEATH)
                confidence *= max(0.5, (len(streams) - len(dead)) / len(streams))
                working = [r for r in working if r.stream_key not in dead]
                streams = group_reports_by_stream(working)

        # 4. Coverage: seconds-long holes in the read times (bursty loss,
        #    interference) degrade the estimate even when it still lands.
        if len(working) > 1:
            times = [r.timestamp_s for r in working]
            span = max(times[-1] - times[0], 1e-9)
            excess = sum(
                gap for gap in (b - a for a, b in zip(times, times[1:]))
                if gap > rb.gap_warn_s
            )
            if excess > 0.0:
                reasons.append(REASON_GAPS)
                confidence *= max(0.5, 1.0 - excess / span)

        # 4b. Doppler motion screen over the full sanitized window (all
        #     antennas, pre-demotion — see stage 2) — gross body motion
        #     (walking, turning) corrupts phase *and* RSS, so the verdict
        #     applies whichever estimator runs below.
        motion: MotionReport = STILL
        if self._motion.enabled and motion_window:
            m_times = np.array([r.timestamp_s for r in motion_window])
            m_dop = np.array([r.doppler_hz for r in motion_window])
            motion = score_motion(m_times, m_dop, self._motion)
            confidence = apply_motion(motion, reasons, confidence)

        # 5. Fusion with per-stream Hampel outlier rejection.  Too few
        # reads to even form a displacement sample is an insufficient-data
        # failure, not a stream-misuse bug: translate so process_detailed
        # and estimate_user keep their documented contracts.
        try:
            track, n_rejected, n_samples = self._fused_track_counting(
                user_id, working)
        except EmptyStreamError as exc:
            raise InsufficientDataError(str(exc)) from exc
        if n_samples and n_rejected / n_samples > rb.outlier_warn_fraction:
            reasons.append(REASON_OUTLIERS)
            confidence *= max(0.7, 1.0 - 5.0 * n_rejected / n_samples)

        # 6. Estimator selection (DESIGN.md §16): the fused track's
        #    roughness decides whether the paper's zero-crossing path is
        #    trustworthy or the RSS fallback takes over.
        roughness = track_roughness(track)
        chosen, est_factor = resolve_estimator(
            self._est_config, roughness, previous_estimator,
            estimator_override, reasons)
        confidence *= est_factor
        window = EstimationWindow(
            track=track,
            times=np.array([r.timestamp_s for r in working]),
            rssi=np.array([r.rssi_dbm for r in working]),
            channel=np.array([r.channel_index for r in working],
                             dtype=np.int64),
            antenna=np.array([r.antenna_port for r in working],
                             dtype=np.int64),
            tag=np.array([r.tag_id for r in working], dtype=np.int64),
        )
        estimate = self._estimators[chosen].estimate(window)
        return self._finalize_estimate(
            user_id, estimate, antenna_port, len(streams), len(working),
            confidence, reasons, n_rejected, warn_stacklevel=4,
            estimator=chosen, motion_gated=motion.gated,
            motion_score=motion.score)

    def _finalize_estimate(
        self,
        user_id: int,
        estimate: BreathingEstimate,
        antenna_port: Optional[int],
        tags_fused: int,
        read_count: int,
        confidence: float,
        reasons: List[str],
        n_rejected: int,
        warn_stacklevel: int,
        estimator: str = "zero_crossing",
        motion_gated: bool = False,
        motion_score: float = 0.0,
    ) -> UserEstimate:
        """Shared tail of both estimate paths: clamp, count, warn, build.

        Factoring this out of :meth:`_process_user` is what guarantees the
        incremental tick cannot drift from the batch reference in the
        bookkeeping: obs counters, the confidence clamp, and the degraded
        warning all run through this single implementation.
        """
        confidence = min(1.0, max(0.0, confidence))
        if obs.enabled():
            registry = obs.get_registry()
            registry.counter("repro_pipeline_estimates_total").inc()
            registry.counter("repro_pipeline_estimator_total",
                             estimator=estimator).inc()
            if motion_gated:
                registry.counter("repro_pipeline_motion_gated_total").inc()
            if n_rejected:
                registry.counter(
                    "repro_pipeline_hampel_rejected_total").inc(n_rejected)
            for reason in reasons:
                registry.counter("repro_pipeline_degraded_total",
                                 reason=reason).inc()
            registry.histogram("repro_pipeline_confidence",
                               bounds=obs.UNIT_BUCKETS).observe(confidence)
        if reasons and confidence < self._robustness.warn_confidence:
            warnings.warn(
                f"user {user_id}: degraded estimate "
                f"(confidence {confidence:.2f}; {', '.join(reasons)})",
                DegradedEstimateWarning,
                stacklevel=warn_stacklevel,
            )
        return UserEstimate(
            user_id=user_id,
            estimate=estimate,
            antenna_port=antenna_port,
            tags_fused=tags_fused,
            read_count=read_count,
            confidence=confidence,
            degraded_reasons=tuple(reasons),
            estimator=estimator,
            motion_gated=motion_gated,
            motion_score=motion_score,
        )

    # ------------------------------------------------------------------
    # Streaming mode
    # ------------------------------------------------------------------
    def feed(self, report: TagReport) -> bool:
        """Consume one report into the streaming buffers.

        Tolerate-and-count: a public streaming API must never let one bad
        delivery take down the monitoring loop, so nothing here raises on
        malformed *streams* (malformed *reports* cannot be constructed —
        :class:`~repro.reader.tagreport.TagReport` validates itself).
        Reports for unmonitored users (when ``user_ids`` was given) are
        silently dropped; late, duplicate, and unknown-channel reports are
        dropped **and counted** in :attr:`feed_drop_counts`.

        Returns:
            True when the report was buffered, False when it was dropped.
        """
        if self._user_ids is not None and report.user_id not in self._user_ids:
            return False
        if report.channel_index >= len(self._frequencies):
            self._feed_drops["invalid_channel"] += 1
            return False
        key = report.stream_key
        buffer = self._report_buffers.get(key)
        if buffer is None:
            buffer = _StreamBuffer(key)
            self._report_buffers[key] = buffer
        t = report.timestamp_s
        last = buffer.last_t
        if last is not None and t <= last:
            self._feed_drops["duplicate" if t == last else "late"] += 1
            return False
        buffer.append(report)
        if self._inc is not None:
            # Incremental maintenance: index the report and difference it
            # against its (channel, antenna) chain — Eq. (3) runs once,
            # here, instead of on every subsequent tick.
            self._inc.ingest(report)
        # Bound memory: keep ~4 analysis windows of raw reports.  The
        # trigger counts accepted reports since the last prune check —
        # a buffer-length modulo would stop firing once a prune moved
        # the length off the modulo phase.
        buffer.since_prune += 1
        if buffer.since_prune >= _PRUNE_EVERY:
            buffer.since_prune = 0
            horizon = t - 4.0 * self._window_s()
            if buffer.t[0] < horizon:
                buffer.prune(horizon)
                if self._inc is not None:
                    self._inc.prune_stream(report.user_id, key, horizon)
        return True

    def feed_batch(self, batch: ReportBatch) -> int:
        """Consume a column batch; bit-exact with per-report :meth:`feed`.

        The SoA hot path: screening (unmonitored users, invalid
        channels, per-stream late/duplicate deliveries), buffering, the
        incremental Eq. (3) differencing, and the bounded-memory prune
        all run as array operations over the batch's numpy columns.
        After the call, buffered state and :attr:`feed_drop_counts` are
        identical — bit for bit — to what a loop of ``feed()`` calls
        over ``batch.to_reports()`` would have left, so every subsequent
        :meth:`estimate_user` result is too.

        Late/duplicate screening per stream reduces to a running
        maximum: seeding a cumulative max with the stream's buffered
        tail, row *i* is accepted iff ``t[i] > cummax[i]``, a duplicate
        iff equal, late iff below — dropped rows never raise the running
        max, so including them in the cummax is exact.

        Args:
            batch: the reports, in arrival order.

        Returns:
            How many reports were buffered (the rest were dropped and
            counted, exactly as ``feed`` would).
        """
        n = len(batch)
        if n == 0:
            return 0
        t = batch.t
        user = batch.user_id
        tag = batch.tag_id
        keep = np.ones(n, dtype=bool)
        if self._user_ids is not None:
            allowed = np.fromiter(self._user_ids, dtype=np.uint64,
                                  count=len(self._user_ids))
            keep = np.isin(user, allowed)
        invalid = keep & (batch.channel >= len(self._frequencies))
        n_invalid = int(np.count_nonzero(invalid))
        if n_invalid:
            self._feed_drops["invalid_channel"] += n_invalid
            keep[invalid] = False
        cand = np.flatnonzero(keep)
        if not cand.size:
            return 0

        # Group candidate rows per (user, tag) stream; the stable
        # lexsort keeps arrival order inside each group.
        cu = user[cand]
        ct = tag[cand]
        order = np.lexsort((ct, cu))
        sorted_cand = cand[order]
        su = cu[order]
        st = ct[order]
        starts = np.flatnonzero(np.concatenate(
            ([True], (su[1:] != su[:-1]) | (st[1:] != st[:-1]))))
        bounds = np.append(starts, sorted_cand.shape[0])

        n_late = 0
        n_dup = 0
        n_accepted = 0
        accepted: List[Tuple[StreamKey, np.ndarray]] = []
        prunes: List[Tuple[StreamKey, float]] = []
        for gi in range(starts.shape[0]):
            rows = sorted_cand[bounds[gi]: bounds[gi + 1]]
            key: StreamKey = (int(su[starts[gi]]), int(st[starts[gi]]))
            buffer = self._report_buffers.get(key)
            tail = (buffer.last_t if buffer is not None
                    and buffer.last_t is not None else -np.inf)
            tg = t[rows]
            prior = np.maximum.accumulate(
                np.concatenate(([tail], tg)))[:-1]
            acc = tg > prior
            m_acc = int(np.count_nonzero(acc))
            if m_acc != rows.shape[0]:
                dup = int(np.count_nonzero(tg == prior))
                n_dup += dup
                n_late += rows.shape[0] - m_acc - dup
            if not m_acc:
                continue
            arows = rows[acc]
            if buffer is None:
                buffer = _StreamBuffer(key)
                self._report_buffers[key] = buffer
            buffer.extend_columns(
                t[arows], batch.phase[arows], batch.rssi[arows],
                batch.doppler[arows], batch.channel[arows],
                batch.antenna[arows])
            accepted.append((key, arows))
            n_accepted += m_acc
            # Prune trigger, shared with feed(): the counter crosses the
            # threshold at accepted row (PRUNE_EVERY - since_prune - 1),
            # then every PRUNE_EVERY rows after; horizons are monotone
            # and pruning is idempotent, so applying only the LAST
            # trigger's horizon leaves the identical final buffer.
            total = buffer.since_prune + m_acc
            if total >= _PRUNE_EVERY:
                buffer.since_prune = total % _PRUNE_EVERY
                last_trigger = m_acc - 1 - buffer.since_prune
                horizon = (float(t[arows[last_trigger]])
                           - 4.0 * self._window_s())
                if buffer.t[0] < horizon:
                    prunes.append((key, horizon))
            else:
                buffer.since_prune = total

        if self._inc is not None and accepted:
            # Streams sorted by their first accepted row — the order
            # row-wise ingest would first see (and so create) each.
            accepted.sort(key=lambda kr: int(kr[1][0]))
            self._inc.ingest_streams(
                accepted, user, tag, t, batch.phase, batch.rssi,
                batch.doppler, batch.channel, batch.antenna)
        if n_late:
            self._feed_drops["late"] += n_late
        if n_dup:
            self._feed_drops["duplicate"] += n_dup
        for key, horizon in prunes:
            self._report_buffers[key].prune(horizon)
            if self._inc is not None:
                self._inc.prune_stream(key[0], key, horizon)
        return n_accepted

    def feed_many(self, reports: Iterable[TagReport]) -> int:
        """Feed a batch of reports in order; returns how many were buffered."""
        return sum(1 for report in reports if self.feed(report))

    @property
    def feed_drop_counts(self) -> Dict[str, int]:
        """Reports :meth:`feed` discarded, by cause.

        The key set is stable and exactly :data:`FEED_DROP_KEYS`:

        * ``"late"`` — the report is older than the newest buffered
          report of its tag stream (out-of-order delivery after the
          per-stream cursor already advanced);
        * ``"duplicate"`` — same stream, same timestamp as the newest
          buffered report (an LLRP re-delivery);
        * ``"invalid_channel"`` — channel index outside the configured
          hop table, so Eq. (1) has no carrier frequency for it.

        All three are *tolerated* faults: the report is discarded, the
        counter ticks, and the monitoring loop continues — one bad
        delivery never raises.  Note the difference from batch mode:
        :meth:`process` re-sorts late reports and keeps them (surfacing
        ``late_or_duplicate_reports`` in ``degraded_reasons`` instead),
        while streaming mode must drop them because the per-stream
        buffers are append-only.  Monitoring dashboards — and the
        ``estimate`` messages of :mod:`repro.serve`, which embed these
        counters — watch them the way they watch packet-loss stats.
        """
        return dict(self._feed_drops)

    @property
    def dropped_report_count(self) -> int:
        """Total reports :meth:`feed` discarded across all causes."""
        return sum(self._feed_drops.values())

    def estimate_user(self, user_id: int,
                      window_s: Optional[float] = None,
                      estimator: Optional[str] = None) -> UserEstimate:
        """Estimate from the trailing window of streamed data.

        With incremental state enabled (the default in samples mode) this
        is an O(new-samples) tick: the trailing window
        ``(t_latest - window_s, t_latest]`` is sliced out of the per-user
        window index, the feed-time phase chains supply the Eq. (3)
        deltas, and the result is **memoized** — calling again before any
        new report is accepted returns the same ``UserEstimate`` object
        (and cached insufficient-data failures re-raise) without touching
        the filter.  Cache traffic is counted in
        ``repro_pipeline_tick_cache_total{result=hit|miss}``; the
        degraded-estimate warning fires when the estimate is *computed*,
        not on cache hits.  Results are bit-for-bit identical to
        :meth:`estimate_user_recompute`.

        The returned :class:`UserEstimate` carries the full degradation
        bookkeeping: ``confidence`` (1.0 for a clean window, lowered
        multiplicatively per survived fault), ``degraded_reasons``
        (stable machine names from :data:`DEGRADED_REASONS`),
        ``estimator`` (which lattice path produced the rate —
        ``auto`` mode falls back from zero-crossing to RSS under
        degraded phase and tags the estimate ``rss_fallback``), and
        ``motion_gated``/``motion_score`` (the Doppler motion
        detector's verdict; a gated estimate should not be trusted).

        Args:
            user_id: the user to estimate.
            window_s: analysis window length (default: 25 s, the paper's
                characterisation window).
            estimator: per-call estimator override ("zero_crossing",
                "spectral", or "rss") — bypasses ``auto`` selection
                without touching the user's fallback hysteresis state.

        Raises:
            InsufficientDataError: when no streamed data covers the user
                or the window holds too little signal.
            ExtractionError: on an unknown ``estimator`` name.
        """
        if self._inc is None:
            return self.estimate_user_recompute(user_id, window_s=window_s,
                                                estimator=estimator)
        window = window_s if window_s is not None else self._window_s()
        version = self._inc.version(user_id)
        if version < 0:
            raise InsufficientDataError(f"no streamed data for user {user_id}")
        memo_key = (user_id, window, estimator)
        cached = self._tick_memo.get(memo_key)
        if cached is not None and cached[0] == version:
            obs.counter("repro_pipeline_tick_cache_total",
                        result="hit").inc()
            if cached[1] == "ok":
                return cached[2]
            raise InsufficientDataError(cached[2])
        obs.counter("repro_pipeline_tick_cache_total", result="miss").inc()
        previous = self._active_estimator.get(user_id)
        with obs.span("pipeline.tick", user_id=user_id), \
                perf.stage("pipeline.tick"):
            try:
                outcome = self._inc.estimate(
                    user_id, window, previous_estimator=previous,
                    estimator_override=estimator)
            except InsufficientDataError as exc:
                self._tick_memo[memo_key] = (version, "err", str(exc))
                raise
            result = self._finalize_estimate(
                user_id, outcome.estimate, outcome.antenna_port,
                outcome.tags_fused, outcome.read_count, outcome.confidence,
                outcome.reasons, outcome.n_rejected, warn_stacklevel=3,
                estimator=outcome.estimator,
                motion_gated=outcome.motion_gated,
                motion_score=outcome.motion_score)
        self._tick_memo[memo_key] = (version, "ok", result)
        if estimator is None:
            self._note_estimator(user_id, previous, result.estimator)
        return result

    def _note_estimator(self, user_id: int, previous: Optional[str],
                        chosen: str) -> None:
        """Update the fallback hysteresis memory; count transitions."""
        self._active_estimator[user_id] = chosen
        if previous is not None and previous != chosen:
            obs.counter("repro_pipeline_estimator_transitions_total",
                        to=chosen).inc()

    def estimate_user_recompute(self, user_id: int,
                                window_s: Optional[float] = None,
                                estimator: Optional[str] = None
                                ) -> UserEstimate:
        """The from-scratch reference tick over the streamed buffers.

        Gathers the user's buffered reports inside the pinned trailing
        window (:func:`repro.streams.windows.trailing_window_bounds`) and
        runs them through the batch per-user path — O(window) per call.
        This is the oracle :meth:`estimate_user`'s incremental state is
        validated against, the fallback for ``mode="increments"`` and
        engines built with ``incremental=False``, and the baseline the
        serve-capacity benchmark measures against.  Shares the fallback
        hysteresis memory with :meth:`estimate_user` (the selection is
        idempotent once the memory holds the choice, so interleaving the
        two paths cannot diverge).

        Args:
            user_id: the user to estimate.
            window_s: analysis window length (default: 25 s).
            estimator: per-call estimator override, as in
                :meth:`estimate_user`.
        """
        window = window_s if window_s is not None else self._window_s()
        t_latest = None
        for key, buffer in self._report_buffers.items():
            if key[0] != user_id or not len(buffer):
                continue
            last = buffer.last_t
            t_latest = last if t_latest is None else max(t_latest, last)
        if t_latest is None:
            raise InsufficientDataError(f"no streamed data for user {user_id}")
        # Buffered reports never exceed t_latest, so only the half-open
        # lower bound needs filtering.
        lo, _hi = trailing_window_bounds(t_latest, window)
        user_reports: List[TagReport] = []
        for key, buffer in self._report_buffers.items():
            if key[0] != user_id:
                continue
            user_reports.extend(buffer.reports(after=lo))
        user_reports.sort(key=lambda r: r.timestamp_s)
        if not user_reports:
            raise InsufficientDataError(f"no streamed data for user {user_id}")
        previous = self._active_estimator.get(user_id)
        result = self._process_user(user_id, user_reports,
                                    previous_estimator=previous,
                                    estimator_override=estimator)
        if estimator is None:
            self._note_estimator(user_id, previous, result.estimator)
        return result

    def streamed_users(self) -> List[int]:
        """Users with at least one buffered report."""
        return sorted({key[0] for key, buf in self._report_buffers.items()
                       if len(buf)})

    def buffered_reports(self, user_id: Optional[int] = None) -> List[TagReport]:
        """The streamed reports currently buffered, timestamp-ordered.

        Args:
            user_id: restrict to one user (default: all users).

        This is the engine's whole recoverable streaming state: feeding
        the returned reports into a fresh engine (see
        :meth:`restore_streaming`) reproduces every subsequent
        :meth:`estimate_user` result, which is how :mod:`repro.serve`
        checkpoints a live monitoring session.  Reports older than the
        bounded-memory horizon (~4 analysis windows) have already been
        pruned and are not part of the state.
        """
        reports: List[TagReport] = []
        for key, buffer in self._report_buffers.items():
            if user_id is None or key[0] == user_id:
                reports.extend(buffer.reports())
        reports.sort(key=lambda r: r.timestamp_s)
        return reports

    #: Estimated resident bytes per buffered ``_StreamBuffer`` row: six
    #: list slots (8 B of pointer each) plus four boxed floats (~24 B
    #: each — t/phase/rssi/doppler; channel/antenna hit the small-int
    #: cache).  An estimate because python objects are not directly
    #: measurable per-row; the numpy side is counted exactly.
    _BUFFER_ROW_BYTES = 6 * 8 + 4 * 24

    def streaming_nbytes(self, user_id: Optional[int] = None) -> int:
        """Approximate resident bytes of the streaming state.

        Sums the incremental estimator's numpy backing (exact — window
        index plus chain columns, see ``IncrementalEstimator.nbytes``)
        and the per-stream report buffers (estimated at
        ``_BUFFER_ROW_BYTES`` per row).  This is the per-user cost the
        idle-economics benchmark reports and hibernation reclaims.

        Args:
            user_id: restrict to one user (default: whole engine).
        """
        total = 0
        for key, buffer in self._report_buffers.items():
            if user_id is None or key[0] == user_id:
                total += len(buffer) * self._BUFFER_ROW_BYTES
        if self._inc is not None:
            total += self._inc.nbytes(user_id)
        return total

    @property
    def last_restore_drop_counts(self) -> Dict[str, int]:
        """Reports the most recent :meth:`restore_streaming` replay dropped.

        Replaying a snapshot runs every report back through :meth:`feed`,
        so a corrupted or hand-assembled snapshot (duplicate timestamps,
        out-of-order streams, unknown channels) can incur drops *during
        the replay itself*.  Those are a property of the restore, not of
        live traffic, and are therefore kept out of
        :attr:`feed_drop_counts` — this side channel (and the
        ``repro_pipeline_restore_replay_drops_total`` counter) is where
        they land instead.  All zeros after a clean restore.
        """
        return dict(self._last_restore_drops)

    def restore_streaming(self, reports: Iterable[TagReport],
                          drop_counts: Optional[Dict[str, int]] = None) -> int:
        """Replace the streaming state with a saved snapshot.

        The inverse of :meth:`buffered_reports` + :attr:`feed_drop_counts`:
        clears current state, re-feeds ``reports`` (which must be
        timestamp-ordered, as :meth:`buffered_reports` returns them) —
        deterministically rebuilding the derived incremental state, so a
        restored engine's subsequent :meth:`estimate_user` results are
        bit-identical to an uninterrupted session's — and restores the
        drop counters so monitoring dashboards do not see loss statistics
        reset to zero after a checkpoint resume.

        Drops incurred *while replaying the snapshot* are never conflated
        with the restored counters: :attr:`feed_drop_counts` afterwards
        holds exactly ``drop_counts`` (or all zeros when None), and the
        replay's own drops are reported via
        :attr:`last_restore_drop_counts`.

        Returns:
            The number of reports buffered.
        """
        self.reset_streaming()
        buffered = self.feed_many(reports)
        self._last_restore_drops = dict(self._feed_drops)
        self._feed_drops = dict.fromkeys(FEED_DROP_KEYS, 0)
        if drop_counts:
            for key in FEED_DROP_KEYS:
                self._feed_drops[key] = int(drop_counts.get(key, 0))
        replayed = sum(self._last_restore_drops.values())
        if replayed:
            obs.counter(
                "repro_pipeline_restore_replay_drops_total").inc(replayed)
        return buffered

    def reset_streaming(self) -> None:
        """Drop all streaming state (start a fresh monitoring session).

        Clears the per-stream report buffers *and* zeroes every
        :attr:`feed_drop_counts` counter — after a reset the engine is
        indistinguishable from a newly constructed one as far as
        streaming is concerned.  Batch mode (:meth:`process`) is
        stateless and unaffected.  Robustness thresholds, the analysis
        window, and all signal-processing configuration survive the
        reset; only data does not.
        """
        self._report_buffers.clear()
        self._feed_drops = dict.fromkeys(FEED_DROP_KEYS, 0)
        self._last_restore_drops = dict.fromkeys(FEED_DROP_KEYS, 0)
        self._tick_memo.clear()
        self._active_estimator.clear()
        if self._inc is not None:
            self._inc.reset()

    # ------------------------------------------------------------------
    def _window_s(self) -> float:
        """The default streaming analysis window: 25 s as in Section IV-A."""
        return max(25.0, self._config.min_window_s)
