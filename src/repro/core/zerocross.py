"""Zero-crossing detection and the instantaneous rate estimator (Eq. 5).

    "To monitor breathing rates, we detect the zero crossings ... We record
    the time stamps of the zero crossing events as t_i and calculate the
    instant breathing rate as f_BR(t_i) = (M - 1) / (2 (t_i - t_{i-M})).
    ... we buffer 7 zero crossings which correspond to 3 breaths"
    (Section IV-B)

Indexing note: with a buffer of M crossings ``t_{i-M+1} .. t_i`` there are
``M - 1`` crossing intervals = ``(M - 1) / 2`` breaths between the oldest
and newest buffered crossing, giving rate ``(M - 1) / (2 * span)``.  The
paper writes the span as ``t_i - t_{i-M}`` but its own calibration (7
crossings = 3 breaths = 6 half-cycles) matches the M-crossing buffer, so
that is what we implement.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import InsufficientDataError, StreamError
from ..streams.timeseries import TimeSeries
from ..units import BPM_PER_HZ

#: The paper's buffer size: 7 crossings = 3 breaths.
PAPER_BUFFER_M = 7


def zero_crossing_times(series: TimeSeries, hysteresis: float = 0.0) -> List[float]:
    """Timestamps where the signal crosses zero, linearly interpolated.

    Args:
        series: the filtered breathing signal (zero-mean).
        hysteresis: ignore crossings whose neighbouring extremum stays
            within ``hysteresis`` of zero — suppresses chatter from residual
            noise riding on the filtered signal.  0 disables.

    Returns:
        Crossing times in order (possibly empty).

    Raises:
        StreamError: on negative hysteresis.
    """
    if hysteresis < 0:
        raise StreamError("hysteresis must be >= 0")
    if len(series) < 2:
        return []
    v = series.values
    t = series.times
    sign = np.sign(v)
    # Exact zeros carry no side information: an interior zero belongs to
    # the *previous* sign (so a sample landing exactly on zero is not
    # double-counted), and a run of leading zeros belongs to the *first*
    # nonzero sign (so the flat lead-in never manufactures a crossing).
    # An identically-zero signal has no crossings at all.  Propagation is
    # a vectorized forward-fill of last-nonzero indices — this sits on
    # the per-tick streaming hot path.
    nonzero = np.flatnonzero(sign)
    if nonzero.size == 0:
        return []
    carry = np.where(sign != 0, np.arange(sign.size), -1)
    np.maximum.accumulate(carry, out=carry)
    carry[carry < 0] = nonzero[0]
    sign = sign[carry]

    crossings: List[float] = []
    idx = np.nonzero(sign[1:] != sign[:-1])[0]
    for i in idx:
        # Linear interpolation between samples i and i+1.
        v0, v1 = v[i], v[i + 1]
        if v1 == v0:
            t_cross = t[i]
        else:
            t_cross = t[i] + (t[i + 1] - t[i]) * (-v0) / (v1 - v0)
        crossings.append(float(t_cross))

    if hysteresis <= 0.0 or len(crossings) < 2:
        return crossings
    # Hysteresis: between two kept crossings, the excursion must exceed
    # the threshold; merge chattery crossing pairs that it doesn't.
    kept: List[float] = [crossings[0]]
    abs_v = np.abs(v)
    for i in range(1, len(crossings)):
        lo, hi = kept[-1], crossings[i]
        # Samples with lo <= t <= hi, located by bisection (t is sorted).
        i0 = int(t.searchsorted(lo, side="left"))
        i1 = int(t.searchsorted(hi, side="right"))
        excursion = float(abs_v[i0:i1].max()) if i1 > i0 else 0.0
        if excursion >= hysteresis:
            kept.append(crossings[i])
        else:
            kept.pop()  # the pair cancels: signal never really left zero
            if not kept:
                kept.append(crossings[i])
    return kept


def instant_rates_bpm(crossing_times: List[float],
                      buffer_m: int = PAPER_BUFFER_M) -> TimeSeries:
    """Eq. (5): instantaneous breathing rate at each crossing [bpm].

    Args:
        crossing_times: ordered zero-crossing timestamps.
        buffer_m: crossings buffered per estimate (paper: 7).

    Returns:
        TimeSeries of rates, timestamped at the newest buffered crossing.

    Raises:
        InsufficientDataError: with fewer crossings than the buffer holds.
        StreamError: on a buffer size below 2.
    """
    if buffer_m < 2:
        raise StreamError("buffer_m must be >= 2")
    if len(crossing_times) < buffer_m:
        raise InsufficientDataError(
            f"need at least {buffer_m} zero crossings, got {len(crossing_times)}"
        )
    times: List[float] = []
    rates: List[float] = []
    for i in range(buffer_m - 1, len(crossing_times)):
        newest = crossing_times[i]
        oldest = crossing_times[i - (buffer_m - 1)]
        span = newest - oldest
        if span <= 0:
            continue
        rate_hz = (buffer_m - 1) / (2.0 * span)
        times.append(newest)
        rates.append(rate_hz * BPM_PER_HZ)
    if not times:
        raise InsufficientDataError("no positive-span crossing windows")
    return TimeSeries(times, rates)


def rate_series_bpm(series: TimeSeries, buffer_m: int = PAPER_BUFFER_M,
                    hysteresis: float = 0.0) -> TimeSeries:
    """Convenience: zero crossings + Eq. (5) in one call.

    Raises:
        InsufficientDataError: when the signal yields too few crossings.
    """
    crossings = zero_crossing_times(series, hysteresis=hysteresis)
    return instant_rates_bpm(crossings, buffer_m=buffer_m)
