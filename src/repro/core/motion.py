"""Doppler-based gross-motion detection — DESIGN.md §16.

The paper's pipeline assumes a mostly-still subject; its Fig. 3 shows
the reader already reports a per-read Doppler shift (Eq. 2) that is far
too noisy for breathing (~0.01 Hz signal under a ~1.5 Hz per-report
sigma) and is therefore discarded by the phase path.  Gross body motion
is a different regime entirely: a torso walking or turning moves the
tag at ~0.1-1 m/s, a Doppler shift of 0.3-3 Hz at 915 MHz — and unlike
the noise, it is *coherent across reads*.  Averaging the reports inside
a half-second bin shrinks the noise by ``sqrt(n)`` (~30 reads per bin
at the paper's 64 Hz read rate → sigma of the mean ~0.27 Hz) while the
motion signal survives untouched, so a simple z-test on bin means
separates the two regimes by an order of magnitude.

The detector is a pure function of the window's ``(times, doppler)``
column pair.  Both estimate paths — the batch reference
(:meth:`repro.core.pipeline.TagBreathe._process_user`) and the
incremental streaming tick (:mod:`repro.core.incremental`) — call it on
the *full* sanitized window, before antenna selection and staleness
demotion: those filters exist for phase continuity, while Doppler
motion evidence is antenna-agnostic and halving the reports would halve
the z-test's ``sqrt(n)``.  The arrays are identical across paths, so
the streamed and recomputed verdicts are bit-identical by construction.

Detection recipe (thresholds in :class:`~repro.config.MotionConfig`):

1. bin the window's Doppler reports into ``bin_s``-wide bins anchored
   at the first report time — twice, at bin offsets of 0 and half a
   bin, keeping the stronger verdict: a burst that straddles one
   grid's bin edges (each half too weak alone) lands squarely inside
   the other grid's bins;
2. estimate the per-report noise sigma robustly (MAD over the whole
   window — motion bursts inflate it slightly, which only makes the
   test more conservative);
3. flag a bin when ``|mean| * sqrt(n) / sigma >= z_threshold`` **and**
   ``|mean| >= min_shift_hz`` (the absolute floor guards against a
   tiny MAD sigma promoting noise to significance);
4. require ``min_run_bins`` consecutive flagged bins — a moving body
   spans bins; single-bin blips are interference.  "Consecutive" is
   judged over the *occupied* bins only: fast motion routinely breaks
   the link itself (the tag swings out of range mid-burst), so the
   hottest bins often sandwich a report dropout, and a bin with no
   evidence must not veto the run a moving body started;
5. *gate* (rather than merely flag) when the flagged fraction exceeds
   ``gate_fraction`` or any flagged run touches the trailing
   ``gate_recent_s`` of the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..config import MotionConfig
from .degradation import REASON_MOTION

#: Fewest Doppler reports a window needs before the z-test means
#: anything; below this the detector reports "still" (never gates).
MIN_WINDOW_REPORTS = 8

#: Fewest reports a *bin* needs for its mean to enter the z-test.
MIN_BIN_REPORTS = 3

#: Consistency factor turning a MAD into a Gaussian sigma estimate.
MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True)
class MotionReport:
    """Verdict of the Doppler motion detector for one analysis window.

    Attributes:
        score: largest bin z-score observed (0.0 when the window is too
            sparse to test).  A clean still-subject window sits well
            under the configured threshold; walking-scale motion scores
            in the tens.
        flagged: at least one qualifying run of significant bins exists
            — the estimate must carry ``REASON_MOTION``.
        gated: the motion is extensive or recent enough that no rate
            estimate over this window should be trusted at all.
        flagged_fraction: fraction of the window's occupied bins that
            were flagged.
        motion_spans: ``(start_s, end_s)`` extents of each qualifying
            flagged run, in report-timestamp coordinates.
    """

    score: float
    flagged: bool
    gated: bool
    flagged_fraction: float
    motion_spans: Tuple[Tuple[float, float], ...]


#: The verdict for a window with no usable Doppler evidence.
STILL = MotionReport(score=0.0, flagged=False, gated=False,
                     flagged_fraction=0.0, motion_spans=())


def score_motion(times: np.ndarray, doppler: np.ndarray,
                 config: MotionConfig) -> MotionReport:
    """Score one window's Doppler column for gross body motion.

    Args:
        times: report timestamps, sorted ascending (seconds).
        doppler: per-report Doppler shifts (Hz), same length as
            ``times``.
        config: detection thresholds.

    Returns:
        The window's :class:`MotionReport`; :data:`STILL` when the
        detector is disabled or the window is too sparse.
    """
    n = int(times.shape[0])
    if not config.enabled or n < MIN_WINDOW_REPORTS:
        return STILL

    med = float(np.median(doppler))
    sigma = MAD_TO_SIGMA * float(np.median(np.abs(doppler - med)))
    # A degenerate (near-constant) Doppler column has no noise scale to
    # test against; the absolute min_shift_hz floor still applies.
    sigma = max(sigma, 1e-9)

    # Two bin grids, half a bin apart: a burst that straddles one grid's
    # bin edges lands squarely inside the other's.  Keep the stronger
    # verdict — flagged beats unflagged, then more flagged bins, then
    # the higher score.
    first = _score_grid(times, doppler, sigma, config, 0.0)
    second = _score_grid(times, doppler, sigma, config,
                         0.5 * config.bin_s)
    return max(
        (first, second),
        key=lambda r: (r.flagged, r.flagged_fraction, r.score))


def _score_grid(times: np.ndarray, doppler: np.ndarray, sigma: float,
                config: MotionConfig, offset_s: float) -> MotionReport:
    """Score one bin grid; :data:`STILL` when no bin has enough reports."""
    t0 = float(times[0]) - offset_s
    idx = np.floor((times - t0) / config.bin_s).astype(np.int64)
    n_bins = int(idx[-1]) + 1
    counts = np.bincount(idx, minlength=n_bins)
    sums = np.bincount(idx, weights=doppler, minlength=n_bins)
    occupied = counts >= MIN_BIN_REPORTS
    if not occupied.any():
        return STILL

    means = np.zeros(n_bins)
    means[occupied] = sums[occupied] / counts[occupied]
    z = np.zeros(n_bins)
    z[occupied] = (np.abs(means[occupied])
                   * np.sqrt(counts[occupied].astype(np.float64)) / sigma)
    significant = (occupied
                   & (z >= config.z_threshold)
                   & (np.abs(means) >= config.min_shift_hz))

    score = float(z[occupied].max())
    if not significant.any():
        return MotionReport(score=score, flagged=False, gated=False,
                            flagged_fraction=0.0, motion_spans=())

    # Qualifying runs: >= min_run_bins significant bins consecutive
    # *among the occupied bins*.  A calm occupied bin breaks the run; an
    # unoccupied bin (report dropout) is skipped — fast motion destroys
    # the link itself, so the hottest bins often sandwich an outage.
    occ_idx = np.flatnonzero(occupied)
    sig_occ = significant[occ_idx]
    n_occ = int(occ_idx.shape[0])
    spans = []
    flagged_bins = 0
    run_start = None
    for j in range(n_occ + 1):
        if j < n_occ and sig_occ[j]:
            if run_start is None:
                run_start = j
            continue
        if run_start is not None:
            run_len = j - run_start
            if run_len >= config.min_run_bins:
                flagged_bins += run_len
                spans.append((t0 + int(occ_idx[run_start]) * config.bin_s,
                              t0 + (int(occ_idx[j - 1]) + 1) * config.bin_s))
            run_start = None
    if not spans:
        return MotionReport(score=score, flagged=False, gated=False,
                            flagged_fraction=0.0, motion_spans=())

    fraction = flagged_bins / float(int(occupied.sum()))
    t_end = float(times[-1])
    recent = any(span_end >= t_end - config.gate_recent_s
                 for _, span_end in spans)
    gated = fraction >= config.gate_fraction or recent
    return MotionReport(score=score, flagged=True, gated=gated,
                        flagged_fraction=fraction,
                        motion_spans=tuple(spans))


def apply_motion(motion: MotionReport, reasons: List[str],
                 confidence: float) -> float:
    """Fold a motion verdict into an estimate's degradation bookkeeping.

    Shared verbatim by both estimate paths so the reason ordering and
    the confidence arithmetic cannot drift between them: a flagged
    window appends ``REASON_MOTION`` and scales confidence by how much
    of the window the motion covers; a *gated* window takes a further
    hard cut that pins confidence well below any warn threshold — the
    estimate is published, but no caller should trust it.

    Returns:
        The updated confidence (``reasons`` is mutated in place).
    """
    if not motion.flagged:
        return confidence
    reasons.append(REASON_MOTION)
    confidence *= max(0.3, 1.0 - 0.5 * motion.flagged_fraction)
    if motion.gated:
        confidence *= 0.25
    return confidence
