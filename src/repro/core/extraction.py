"""Breath-signal extraction: filter, detect crossings, estimate the rate.

This stage consumes the fused displacement track (Eq. 7) and produces what
the paper's realtime UI shows (Fig. 8 / Fig. 11): the extracted breathing
signal and the instantaneous breathing rate from Eq. (5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..config import PipelineConfig
from ..errors import ExtractionError, InsufficientDataError
from ..streams.timeseries import TimeSeries
from .filters import detrend_series, fft_lowpass, fir_lowpass
from .spectral import fft_spectrum
from .zerocross import instant_rates_bpm, zero_crossing_times

#: Crossing hysteresis as a fraction of the filtered signal's RMS: real
#: crossings swing the signal by about its amplitude; noise chatter stays
#: well below it.
_HYSTERESIS_RMS_FRACTION = 0.3


@dataclass(frozen=True)
class BreathingEstimate:
    """The extraction output for one user over one analysis window.

    Attributes:
        rate_bpm: the headline estimate — median of the Eq. (5)
            instantaneous rates over the window.
        rate_series: instantaneous rate at each zero crossing (realtime
            visualisation track).
        signal: the filtered breathing signal (Fig. 8).
        crossings: zero-crossing timestamps used by Eq. (5).
    """

    rate_bpm: float
    rate_series: TimeSeries
    signal: TimeSeries
    crossings: List[float]


class BreathExtractor:
    """Configurable extraction stage (Section IV-B).

    Args:
        config: cutoff, zero-crossing buffer, minimum window.
        filter_type: "fft" for the paper's FFT low-pass, "fir" for the
            stated FIR alternative.

    Raises:
        ExtractionError: on an unknown filter type.
    """

    def __init__(self, config: Optional[PipelineConfig] = None,
                 filter_type: str = "fft") -> None:
        self._config = config if config is not None else PipelineConfig()
        if filter_type not in ("fft", "fir"):
            raise ExtractionError(f"filter_type must be 'fft' or 'fir', got {filter_type!r}")
        self._filter_type = filter_type

    @property
    def config(self) -> PipelineConfig:
        """The pipeline parameters in force."""
        return self._config

    def extract_signal(self, track: TimeSeries) -> TimeSeries:
        """Filter a displacement track into the breathing signal (Fig. 8).

        Detrends (when configured) and band-limits the track.  With
        ``adaptive_band`` enabled (default) the pass band is first
        re-centred on the dominant breathing peak of the track's spectrum
        — the Fig. 7 FFT — so that the zero-crossing stage sees a clean
        narrowband signal; the crossings then refine the rate beyond the
        FFT's 1/window resolution.

        Raises:
            InsufficientDataError: when the track is shorter than the
                configured minimum window.
        """
        if not track or track.duration < self._config.min_window_s:
            raise InsufficientDataError(
                f"track covers {track.duration if track else 0.0:.1f}s, "
                f"need >= {self._config.min_window_s:.1f}s"
            )
        prepared = detrend_series(track) if self._config.detrend else track
        low, high = self._config.highpass_hz, self._config.cutoff_hz
        if self._config.adaptive_band:
            peak_hz = self._dominant_breathing_peak(prepared)
            if peak_hz is not None:
                half = self._config.band_halfwidth_hz
                low = max(low, peak_hz - half)
                high = min(high, peak_hz + half)
        if self._filter_type == "fft":
            return fft_lowpass(prepared, high, highpass_hz=low)
        return fir_lowpass(prepared, high, highpass_hz=low)

    def _dominant_breathing_peak(self, track: TimeSeries) -> Optional[float]:
        """Locate the breathing fundamental in the track's spectrum [Hz].

        The track amplitudes are weighted by ``sqrt(f)`` before the
        search (half-whitening): any residual random-walk/drift component
        has a ``1/f`` amplitude spectrum whose low bins would otherwise
        hijack the peak, while full whitening (differencing) over-rewards
        high-frequency interference.  The square-root tilt splits the
        difference — drift is suppressed, yet a breathing fundamental
        still beats comparable interference above it.

        Scans the configured band and picks the *lowest-frequency* local
        peak whose weighted amplitude reaches half the band maximum —
        choosing the fundamental over a stronger harmonic of a skewed
        breathing waveform.  Returns None when no bin lies inside the band
        (window too short), in which case the caller falls back to the
        full band.
        """
        if len(track) < 4:
            return None
        freqs, spectrum = fft_spectrum(track)
        spectrum = spectrum * np.sqrt(np.maximum(freqs, 0.0))
        band = (freqs >= self._config.highpass_hz) & (freqs <= self._config.cutoff_hz)
        if not band.any():
            return None
        band_freqs = freqs[band]
        band_amp = spectrum[band]
        if len(band_amp) < 3:
            return float(band_freqs[int(np.argmax(band_amp))])
        threshold = 0.5 * float(band_amp.max())
        interior = np.arange(1, len(band_amp) - 1)
        local_max = (band_amp[interior] >= band_amp[interior - 1]) & (
            band_amp[interior] >= band_amp[interior + 1]
        )
        candidates = interior[local_max & (band_amp[interior] >= threshold)]
        if len(candidates):
            return float(band_freqs[candidates[0]])
        return float(band_freqs[int(np.argmax(band_amp))])

    def estimate(self, track: TimeSeries) -> BreathingEstimate:
        """Full extraction: signal, crossings, Eq. (5) rates, headline rate.

        Raises:
            InsufficientDataError: when too little data or too few
                crossings exist (e.g. the user was unreadable — the case
                where the paper "does not report breath monitoring
                results").
        """
        signal = self.extract_signal(track)
        rms = float(np.sqrt(np.mean(signal.values ** 2)))
        crossings = zero_crossing_times(
            signal, hysteresis=_HYSTERESIS_RMS_FRACTION * rms
        )
        rate_series = instant_rates_bpm(
            crossings, buffer_m=self._config.zero_crossing_buffer
        )
        rate = float(np.median(rate_series.values))
        return BreathingEstimate(
            rate_bpm=rate,
            rate_series=rate_series,
            signal=signal,
            crossings=crossings,
        )
