"""TagBreathe core: the paper's signal-processing contribution.

The stages mirror Fig. 10's workflow:

1. :mod:`~repro.core.preprocess` — phase measurement preprocessing:
   channel grouping and displacement calculation (Eq. 3–4).
2. :mod:`~repro.core.fusion` — raw-data fusion of multi-tag streams
   (Eq. 6–7) grouped per user via the EPC user-ID field.
3. :mod:`~repro.core.filters` / :mod:`~repro.core.zerocross` /
   :mod:`~repro.core.extraction` — breath-signal extraction: FFT low-pass
   at 0.67 Hz, zero-crossing detection, instantaneous rate (Eq. 5).
4. :mod:`~repro.core.pipeline` — the end-to-end :class:`TagBreathe`
   engine, batch and streaming.

:mod:`~repro.core.baselines` implements the RSSI / Doppler / FFT-peak
alternatives the paper characterises and argues against (Section IV-A/B),
and :mod:`~repro.core.quality` the per-antenna data-quality selection
(Section IV-D-3).
"""

from .preprocess import (
    default_frequencies,
    group_reports_by_stream,
    displacement_deltas,
    displacement_samples,
    displacement_track,
    hampel_filter,
    phase_segments,
)
from .fusion import fuse_streams, fuse_sample_streams, group_reports_by_user, FusedStream
from .filters import fft_lowpass, fir_lowpass, detrend_series
from .zerocross import zero_crossing_times, instant_rates_bpm, rate_series_bpm
from .spectral import fft_spectrum, fft_peak_rate_bpm, frequency_resolution_bpm
from .extraction import BreathExtractor, BreathingEstimate
from .quality import (
    antenna_quality_scores,
    select_antenna_with_failover,
    select_best_antenna,
)
from .pipeline import (
    DEGRADED_REASONS,
    FEED_DROP_KEYS,
    TagBreathe,
    UserEstimate,
    sanitize_reports,
)
from .baselines import RSSIBreathEstimator, DopplerBreathEstimator, FFTPeakEstimator
from .hybrid import HybridBreathEstimator, HybridEstimate, ObservableEstimate
from .tracking import BreathingRateTracker, TrackedRate, smooth_rate_series
from .calibration import ChannelCalibration, ChannelCalibrator

__all__ = [
    "default_frequencies",
    "group_reports_by_stream",
    "displacement_deltas",
    "displacement_samples",
    "displacement_track",
    "phase_segments",
    "fuse_streams",
    "fuse_sample_streams",
    "group_reports_by_user",
    "FusedStream",
    "fft_lowpass",
    "fir_lowpass",
    "detrend_series",
    "zero_crossing_times",
    "instant_rates_bpm",
    "rate_series_bpm",
    "fft_spectrum",
    "fft_peak_rate_bpm",
    "frequency_resolution_bpm",
    "BreathExtractor",
    "BreathingEstimate",
    "antenna_quality_scores",
    "select_best_antenna",
    "select_antenna_with_failover",
    "hampel_filter",
    "sanitize_reports",
    "DEGRADED_REASONS", "FEED_DROP_KEYS",
    "TagBreathe",
    "UserEstimate",
    "RSSIBreathEstimator",
    "DopplerBreathEstimator",
    "FFTPeakEstimator",
    "HybridBreathEstimator",
    "HybridEstimate",
    "ObservableEstimate",
    "BreathingRateTracker",
    "TrackedRate",
    "smooth_rate_series",
    "ChannelCalibration",
    "ChannelCalibrator",
]
