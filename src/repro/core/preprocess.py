"""Phase measurement preprocessing — Section IV-A-3 of the paper.

    "To continuously track body movements without being interrupted by
    channel hopping, we first group the phase values according to channel
    indexes. Then, we calculate the displacement during two consecutive
    phase readings in each channel according to Eq.(1)."

Three practical refinements the paper's text implies but does not spell
out:

* Readings must also be grouped by **antenna port**: each antenna has its
  own cabling/geometry and hence its own constant offset ``c`` in Eq. (1),
  so cross-antenna phase differences are meaningless.
* Differences must stay **within one channel dwell**.  A channel *recurs*
  only every ``num_channels * dwell`` seconds (~2 s here), and a 2 s
  per-channel sampling interval aliases breathing above ~15 bpm.  Within-
  dwell differences avoid the alias, and because exactly one channel is
  active at a time the merged increment stream still covers the whole
  trajectory nearly continuously.
* Phase readings are **smoothed along each dwell chain** (short moving
  average on the unwrapped phase) before differencing.  Interior noise
  telescopes out of Eq. (4)'s running sum anyway; what survives is the
  noise of each dwell segment's *endpoints*, which the moving average
  cuts by sqrt(k).  This matters because those endpoint errors accumulate
  across dwell boundaries into a slow random walk under the breathing
  band.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import StreamError
from ..rf.constants import fcc_channel_frequencies
from ..reader.tagreport import TagReport
from ..streams.timeseries import TimeSeries
from ..streams.windowindex import GrowableArray
from ..units import SPEED_OF_LIGHT, wrap_phase_delta

#: Reject same-group differences across gaps longer than this by default.
#: Must sit below the channel dwell (0.2 s) so only within-dwell pairs
#: qualify — see the module docstring for the aliasing rationale — while
#: tolerating sparse reads when many tags contend for airtime.
DEFAULT_MAX_GAP_S = 0.15

#: Default phase-smoothing window (reads) along a dwell chain.
DEFAULT_SMOOTH_K = 3

#: A per-tag data stream key: (user_id, tag_id).
StreamKey = Tuple[int, int]

#: A differencing group key: (channel_index, antenna_port).
GroupKey = Tuple[int, int]


def default_frequencies(num_channels: int = 10) -> List[float]:
    """Channel-index -> frequency map for the regulatory default plan.

    The application side of TagBreathe knows the reader's hop table (it
    configures the reader over LLRP); this helper returns the same
    10-channel FCC plan the reader model uses by default.
    """
    return fcc_channel_frequencies(num_channels)


def group_reports_by_stream(reports: Iterable[TagReport]) -> Dict[StreamKey, List[TagReport]]:
    """Split a capture into per-(user, tag) streams via the EPC ID fields.

    Reports within each stream preserve their relative order.
    """
    streams: Dict[StreamKey, List[TagReport]] = defaultdict(list)
    for report in reports:
        streams[report.stream_key].append(report)
    return dict(streams)


class DeltaChain:
    """Stateful Eq. (3) differencing for ONE (channel, antenna) group.

    Feeds on successive phase readings of one tag in one group, unwraps
    them into a continuous phase chain, smooths the chain with a k-read
    moving average, and emits the displacement increment between
    successive smoothed values.  A gap longer than ``max_gap_s`` resets
    the chain (the readings belong to different dwells).

    Args:
        wavelength_m: the group's carrier wavelength.
        max_gap_s: dwell-chain gap limit.
        smooth_k: moving-average window (1 disables smoothing).

    Raises:
        StreamError: on non-positive wavelength/gap/window.
    """

    def __init__(self, wavelength_m: float, max_gap_s: float = DEFAULT_MAX_GAP_S,
                 smooth_k: int = DEFAULT_SMOOTH_K) -> None:
        if wavelength_m <= 0:
            raise StreamError("wavelength must be > 0")
        if max_gap_s <= 0:
            raise StreamError("max_gap_s must be > 0")
        if smooth_k < 1:
            raise StreamError("smooth_k must be >= 1")
        self._lam = float(wavelength_m)
        self._max_gap = float(max_gap_s)
        self._k = int(smooth_k)
        self._last_time: Optional[float] = None
        self._last_phase: Optional[float] = None
        self._unwrapped: float = 0.0
        self._window: Deque[float] = deque(maxlen=self._k)
        self._last_smoothed: Optional[float] = None

    def reset(self) -> None:
        """Forget the current dwell chain."""
        self._last_time = None
        self._last_phase = None
        self._unwrapped = 0.0
        self._window.clear()
        self._last_smoothed = None

    def push(self, timestamp_s: float, phase_rad: float) -> Optional[float]:
        """Feed one reading; return the displacement increment [m] or None.

        None is returned for the first reading of a chain and after a
        chain reset (gap exceeded / time went backwards).
        """
        if self._last_time is not None:
            gap = timestamp_s - self._last_time
            if gap <= 0 or gap > self._max_gap:
                self.reset()
        if self._last_time is None:
            self._last_time = timestamp_s
            self._last_phase = phase_rad
            self._unwrapped = phase_rad
            self._window.append(self._unwrapped)
            self._last_smoothed = self._unwrapped
            return None
        self._unwrapped += wrap_phase_delta(phase_rad - self._last_phase)
        self._last_time = timestamp_s
        self._last_phase = phase_rad
        self._window.append(self._unwrapped)
        smoothed = sum(self._window) / len(self._window)
        delta_phase = smoothed - (self._last_smoothed if self._last_smoothed is not None else smoothed)
        self._last_smoothed = smoothed
        return self._lam / (4.0 * np.pi) * delta_phase


def displacement_deltas(
    reports: Sequence[TagReport],
    frequencies_hz: Sequence[float],
    max_gap_s: float = DEFAULT_MAX_GAP_S,
    smooth_k: int = DEFAULT_SMOOTH_K,
) -> TimeSeries:
    """Eq. (3): per-read displacement increments for ONE tag's reports.

    Groups the readings by (channel, antenna), differences consecutive
    same-group smoothed phases, converts each phase difference to metres,
    and merges every group's increments back into one time-ordered stream.

    Args:
        reports: reads of a single tag (any antenna/channel mix), in any
            order; they are sorted by timestamp internally.
        frequencies_hz: channel-index -> carrier frequency map.
        max_gap_s: reject differences across longer same-group gaps.
        smooth_k: phase moving-average window along each dwell chain.

    Returns:
        TimeSeries of displacement increments [m], timestamped at the later
        reading of each pair (empty when no pair qualifies).

    Raises:
        StreamError: if a report's channel index has no frequency, or the
            reports span multiple tags.
    """
    ordered = sorted(reports, key=lambda r: r.timestamp_s)
    if not ordered:
        return TimeSeries.empty()
    keys = {r.stream_key for r in ordered}
    if len(keys) > 1:
        raise StreamError(
            f"displacement_deltas expects one tag's reports, got streams {sorted(keys)}"
        )

    chains: Dict[GroupKey, DeltaChain] = {}
    times: List[float] = []
    deltas: List[float] = []
    for report in ordered:
        if report.channel_index >= len(frequencies_hz):
            raise StreamError(
                f"channel index {report.channel_index} outside frequency map "
                f"of {len(frequencies_hz)} channels"
            )
        group: GroupKey = (report.channel_index, report.antenna_port)
        chain = chains.get(group)
        if chain is None:
            lam = SPEED_OF_LIGHT / frequencies_hz[report.channel_index]
            chain = DeltaChain(lam, max_gap_s=max_gap_s, smooth_k=smooth_k)
            chains[group] = chain
        delta = chain.push(report.timestamp_s, report.phase_rad)
        if delta is not None:
            times.append(report.timestamp_s)
            deltas.append(delta)

    if not times:
        return TimeSeries.empty()
    order = np.argsort(times, kind="stable")
    t_arr = np.asarray(times)[order]
    d_arr = np.asarray(deltas)[order]
    keep = np.concatenate([[True], np.diff(t_arr) > 0])
    return TimeSeries(t_arr[keep], d_arr[keep])


#: Gap limit for *unwrapped segment* construction.  Between two reads of
#: the same (channel, antenna) group the body moves well under lambda/4
#: (~8 cm) for any gap of a few seconds, so unwrapping across channel
#: recurrences (~2 s apart) is unambiguous.
DEFAULT_SEGMENT_GAP_S = 5.0

#: Segments shorter than this many reads are dropped: their demeaned
#: offset is too noisy to contribute usefully.
DEFAULT_MIN_SEGMENT_LEN = 3


def phase_segments(
    reports: Sequence[TagReport],
    frequencies_hz: Sequence[float],
    max_gap_s: float = DEFAULT_SEGMENT_GAP_S,
) -> Dict[GroupKey, List[TimeSeries]]:
    """Unwrapped displacement segments per (channel, antenna) group.

    For each group, consecutive phase readings are chained with Eq. (3)'s
    wrapped differencing and accumulated (Eq. 4) into a continuous
    *absolute* displacement trace ``lambda/(4*pi) * unwrapped_phase``.
    Because the accumulation telescopes, every sample of a segment carries
    only its own measurement noise — no random walk.  A gap longer than
    ``max_gap_s`` (where the lambda/4 ambiguity could bite) starts a new
    segment.

    Each segment's values retain an arbitrary offset (the channel/circuit
    constant ``c`` plus the unknown absolute distance); callers normalise
    it away — the paper's own "we normalize the displacement values"
    (Fig. 6) step.

    Raises:
        StreamError: on unknown channel indices, mixed tags, or a
            non-positive gap limit.
    """
    if max_gap_s <= 0:
        raise StreamError("max_gap_s must be > 0")
    ordered = sorted(reports, key=lambda r: r.timestamp_s)
    if not ordered:
        return {}
    keys = {r.stream_key for r in ordered}
    if len(keys) > 1:
        raise StreamError(
            f"phase_segments expects one tag's reports, got streams {sorted(keys)}"
        )
    count_corrections = obs.enabled()
    n_corrections = 0
    chains: Dict[GroupKey, List[List[Tuple[float, float]]]] = defaultdict(list)
    state: Dict[GroupKey, Tuple[float, float, float]] = {}  # t, phase, unwrapped
    for report in ordered:
        if report.channel_index >= len(frequencies_hz):
            raise StreamError(
                f"channel index {report.channel_index} outside frequency map "
                f"of {len(frequencies_hz)} channels"
            )
        group: GroupKey = (report.channel_index, report.antenna_port)
        lam = SPEED_OF_LIGHT / frequencies_hz[report.channel_index]
        prev = state.get(group)
        if prev is None or report.timestamp_s - prev[0] > max_gap_s \
                or report.timestamp_s <= prev[0]:
            unwrapped = report.phase_rad
            chains[group].append([])
        else:
            raw = report.phase_rad - prev[1]
            unwrapped = prev[2] + wrap_phase_delta(raw)
            if count_corrections and not (-np.pi <= raw < np.pi):
                n_corrections += 1
        state[group] = (report.timestamp_s, report.phase_rad, unwrapped)
        chains[group][-1].append(
            (report.timestamp_s, lam / (4.0 * np.pi) * unwrapped)
        )
    if n_corrections:
        obs.counter(
            "repro_pipeline_phase_unwrap_corrections_total").inc(n_corrections)
    return {
        group: [TimeSeries.from_pairs(seg) for seg in segments]
        for group, segments in chains.items()
    }


def displacement_samples(
    reports: Sequence[TagReport],
    frequencies_hz: Sequence[float],
    max_gap_s: float = DEFAULT_SEGMENT_GAP_S,
    min_segment_len: int = DEFAULT_MIN_SEGMENT_LEN,
) -> TimeSeries:
    """Absolute (offset-normalised) displacement samples for ONE tag.

    Builds per-(channel, antenna) unwrapped segments, demeans each (the
    Fig. 6 normalisation, cancelling the per-channel constant ``c``), and
    merges everything into one time-ordered sample stream.  This is the
    production representation: unlike the raw increment stream it has no
    dwell-boundary random walk and survives sparse reads (many contending
    tags, weak links) because channel-recurrence continuity is preserved.

    Args:
        reports: one tag's reads.
        frequencies_hz: channel-index -> carrier frequency map.
        max_gap_s: segment-splitting gap limit.
        min_segment_len: drop segments with fewer reads than this.

    Returns:
        Merged displacement samples [m] (empty when nothing qualifies).

    Raises:
        StreamError: propagated from :func:`phase_segments`.
    """
    if min_segment_len < 1:
        raise StreamError("min_segment_len must be >= 1")
    segments = phase_segments(reports, frequencies_hz, max_gap_s=max_gap_s)
    kept: List[TimeSeries] = []
    for group_segments in segments.values():
        for segment in group_segments:
            if len(segment) >= min_segment_len:
                kept.append(segment.demean())
    if not kept:
        return TimeSeries.empty()
    return TimeSeries.merge(kept)


#: Column layout of one chain's ``rows`` array: timestamp, raw phase,
#: Eq. (3) wrapped delta, and the new-segment flag (0.0/1.0 — float so
#: all four attributes live in ONE float64 array and a batch extends a
#: chain with a single row-block append).
_COL_T, _COL_PHASE, _COL_WD, _COL_SEG = 0, 1, 2, 3


class _ChainColumns:
    """Flat per-(channel, antenna) chain storage of one tag stream.

    Four parallel per-sample attributes packed as the columns of one
    growable ``(n, 4)`` float64 array — timestamps, raw phases, the
    Eq. (3) wrapped deltas, and new-segment flags (the chain tail lives
    on the owning cursor's ``_tails``, keyed like ``_groups``).  Packing
    them in one array makes chain creation and tiny batch extends one
    allocation/append instead of four, which dominates the batched
    ingest path on a cold engine (channel hopping spreads every stream
    across hundreds of chains).

    ``base`` + ``segcache`` implement the across-tick segment reuse of
    :meth:`PhaseChainCursor.window_displacement`: a demeaned segment is a
    pure function of an absolute sample range of this append-only chain,
    so between cadence ticks only the window-truncated first segment and
    the still-growing last segment ever change — interior segments are
    served from the cache verbatim.  ``base`` is the absolute position of
    column index 0 (it advances when ``prune_before`` drops from the
    front), keeping cache keys stable across pruning.
    """

    __slots__ = ("coef", "rows", "base", "segcache")

    def __init__(self, coef: float) -> None:
        self.coef = coef
        self.rows = GrowableArray(np.float64, width=4)
        self.base = 0
        self.segcache: Dict[Tuple[int, int], TimeSeries] = {}


class PhaseChainCursor:
    """Feed-time Eq. (3) differencing state for ONE tag's stream.

    The batch path (:func:`phase_segments`) re-differences every windowed
    report on every call; this cursor computes each report's wrapped
    phase delta exactly **once**, when :meth:`push` ingests it, and
    stores it alongside the raw phase in per-(channel, antenna) columns.
    A trailing-window query then re-anchors the Eq. (4) accumulation at
    the first in-window sample of each chain:

        ``u = cumsum([phase[s0], wd[s0+1], ..., wd[s1-1]])``

    which performs the *same sequence of float64 additions* the batch
    chain walk performs over the same windowed reports (``np.cumsum`` is
    a strict left-to-right accumulation), so the demeaned segments — the
    anchor constant cancels in the Fig. 6 normalisation — are
    bit-identical to :func:`displacement_samples` over the window.  That
    exactness is what makes horizon pruning trivially safe: stored
    deltas never need rebasing when old samples are dropped.

    Args:
        frequencies_hz: channel-index -> carrier frequency map.
        max_gap_s: segment-splitting gap limit (same default as the
            batch segment builder).

    Raises:
        StreamError: on a non-positive gap limit.
    """

    __slots__ = ("_frequencies", "_max_gap", "_groups", "_pending",
                 "_tails")

    def __init__(self, frequencies_hz: Sequence[float],
                 max_gap_s: float = DEFAULT_SEGMENT_GAP_S) -> None:
        if max_gap_s <= 0:
            raise StreamError("max_gap_s must be > 0")
        self._frequencies = frequencies_hz
        self._max_gap = float(max_gap_s)
        self._groups: Dict[GroupKey, _ChainColumns] = {}
        # Ingest-to-query decoupling: pushes land here as cheap
        # (group, rows) entries — a tuple per scalar push, a packed
        # row-block per batch run — and are folded into ``_groups`` only
        # when a query needs them (:meth:`_flush`).  The wrapped deltas
        # are still computed AT ingest (seeded from ``_tails``), so
        # deferral changes nothing about the stored values — it only
        # batches the per-chain numpy appends and column creation, which
        # otherwise dominate a cold engine fed via the batched path.
        self._pending: List[Tuple[GroupKey, object]] = []
        self._tails: Dict[GroupKey, Tuple[float, float]] = {}

    def __len__(self) -> int:
        self._flush()
        return sum(len(cols.rows) for cols in self._groups.values())

    @property
    def nbytes(self) -> int:
        """Resident bytes of the chain columns (flushes pending first).

        Counts the numpy backing arrays — the dominant per-user cost; the
        bounded per-window segment cache is excluded.
        """
        self._flush()
        return sum(cols.rows.nbytes for cols in self._groups.values())

    def push(self, report: TagReport) -> None:
        """Ingest one report (caller guarantees per-stream time order).

        The wrapped delta and segment-start flag are computed here, once;
        the channel index must already be validated against the frequency
        map (``TagBreathe.feed`` drops invalid channels before pushing).
        """
        group: GroupKey = (report.channel_index, report.antenna_port)
        t = report.timestamp_s
        phase = report.phase_rad
        tail = self._tails.get(group)
        if tail is None or t - tail[0] > self._max_gap or t <= tail[0]:
            row = (t, phase, 0.0, 1.0)
        else:
            row = (t, phase, wrap_phase_delta(phase - tail[1]), 0.0)
        self._pending.append((group, row))
        self._tails[group] = (t, phase)

    def _flush(self) -> None:
        """Fold pending rows into the per-group columns.

        Per group, consecutive scalar rows coalesce into one array and
        every block lands as one bulk append — arrival order within a
        group is preserved, so the columns end up bit-identical to
        appending at ingest time.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        per_group: Dict[GroupKey, List[object]] = {}
        for gk, block in pending:
            per_group.setdefault(gk, []).append(block)
        for gk, blocks in per_group.items():
            cols = self._groups.get(gk)
            if cols is None:
                lam = SPEED_OF_LIGHT / self._frequencies[gk[0]]
                cols = _ChainColumns(lam / (4.0 * np.pi))
                self._groups[gk] = cols
            run: List[tuple] = []
            for block in blocks:
                if type(block) is tuple:
                    run.append(block)
                    continue
                if run:
                    cols.rows.extend(np.array(run))
                    run = []
                cols.rows.extend(block)
            if run:
                cols.rows.extend(np.array(run))

    def prune_before(self, horizon_s: float) -> None:
        """Drop samples older than ``horizon_s`` from every chain.

        Safe at any cut: window queries re-anchor at the first in-window
        sample, so retained deltas stay valid verbatim.  The chain tail
        (``_tails``) is unaffected — pruning only ever removes from the
        front.
        """
        self._flush()
        for cols in self._groups.values():
            t = cols.rows.view()[:, _COL_T]
            if not t.shape[0] or t[0] >= horizon_s:
                continue
            drop = int(np.searchsorted(t, horizon_s, side="left"))
            cols.rows.drop_front(drop)
            cols.base += drop

    def window_displacement(
        self,
        t_low: float,
        t_high: float,
        antenna_port: Optional[int] = None,
        min_segment_len: int = DEFAULT_MIN_SEGMENT_LEN,
    ) -> TimeSeries:
        """The :func:`displacement_samples` result over ``(t_low, t_high]``.

        Bit-identical to running the batch builder on this stream's
        reports inside the pinned trailing window (see
        :func:`repro.streams.windows.trailing_window_bounds`), restricted
        to ``antenna_port`` when given.

        Args:
            t_low / t_high: half-open-below window bounds.
            antenna_port: keep only this port's groups (None = all).
            min_segment_len: drop shorter segments, as the batch path does.
        """
        self._flush()
        kept: List[TimeSeries] = []
        for group, cols in self._groups.items():
            if antenna_port is not None and group[1] != antenna_port:
                continue
            data = cols.rows.view()
            t = data[:, _COL_T]
            a = int(t.searchsorted(t_low, side="right"))
            b = int(t.searchsorted(t_high, side="right"))
            if b - a < min_segment_len:
                continue
            # The window cut re-anchors mid-chain: position 0 always
            # starts a segment, exactly as the batch builder's fresh
            # chain state does for the first windowed report.
            bounds = np.flatnonzero(data[a:b, _COL_SEG]).tolist()
            if not bounds or bounds[0] != 0:
                bounds.insert(0, 0)
            bounds.append(b - a)
            wd = data[:, _COL_WD]
            phases = data[:, _COL_PHASE]
            coef = cols.coef
            base = cols.base
            cache = cols.segcache
            fresh: Dict[Tuple[int, int], TimeSeries] = {}
            for s0, s1 in zip(bounds[:-1], bounds[1:]):
                length = s1 - s0
                if length < min_segment_len:
                    continue
                # A demeaned segment depends only on its absolute sample
                # range of this append-only chain, so between cadence
                # ticks only the window-truncated first segment and the
                # growing last segment miss — interior segments are
                # reused from the previous tick.
                span = (base + a + s0, base + a + s1)
                segment = cache.get(span)
                if segment is None:
                    acc = np.empty(length)
                    acc[0] = phases[a + s0]
                    acc[1:] = wd[a + s0 + 1: a + s1]
                    values = coef * acc.cumsum()
                    # values.sum()/n is bitwise the same float as
                    # values.mean() (both reduce with np.add.reduce),
                    # minus the np.mean wrapper overhead on this
                    # per-segment path.
                    values -= values.sum() / length
                    # Segment times are a contiguous slice of a
                    # per-stream strictly-increasing chain — trusted by
                    # construction.
                    segment = TimeSeries.from_trusted(
                        t[a + s0: a + s1].copy(), values)
                fresh[span] = segment
                kept.append(segment)
            # Keep only this window's segments: the cache stays bounded
            # by the number of in-window segments.
            cols.segcache = fresh
        if not kept:
            return TimeSeries.empty()
        return TimeSeries.merge(kept)


def defer_chains(cursors: List[PhaseChainCursor], gkeys: List[GroupKey],
                 starts: np.ndarray, st: np.ndarray, sp: np.ndarray,
                 max_gap_s: float) -> None:
    """Stage many phase-chain runs from one pre-grouped vectorized pass.

    ``st``/``sp`` are times and phases arranged as contiguous runs — run
    *i* targets chain ``gkeys[i]`` of ``cursors[i]`` and begins at
    ``starts[i]`` — with each run in its chain's arrival order.  The
    Eq. (3) shifted-difference, gap/retrograde segmenting, and
    ``wrap_phase_delta`` run **once over the whole arrangement**: each
    run's first row is differenced against its chain's cached tail
    (seeded as a zero self-gap for a fresh chain, which marks a segment
    start exactly like the scalar path's fresh-tail branch).  Per run,
    only a pending-block append and a tail update remain — the cursor
    folds the blocks into its per-chain columns on the next query — so
    many tiny (channel, antenna) runs (channel hopping spreads a stream
    across every chain) cost two dict operations each, not a numpy
    append and possibly a column allocation.
    """
    n = st.shape[0]
    seed_t = st[starts].tolist()
    seed_p = sp[starts].tolist()
    for gi, (cur, gk) in enumerate(zip(cursors, gkeys)):
        tail = cur._tails.get(gk)
        if tail is not None:
            seed_t[gi] = tail[0]
            seed_p[gi] = tail[1]
    prev_t = np.empty(n)
    prev_t[1:] = st[:-1]
    prev_t[starts] = seed_t
    prev_p = np.empty(n)
    prev_p[1:] = sp[:-1]
    prev_p[starts] = seed_p
    gap = st - prev_t
    seg = (gap <= 0.0) | (gap > max_gap_s)
    wd = np.where(seg, 0.0, wrap_phase_delta(sp - prev_p))
    packed = np.empty((n, 4))
    packed[:, _COL_T] = st
    packed[:, _COL_PHASE] = sp
    packed[:, _COL_WD] = wd
    packed[:, _COL_SEG] = seg
    bounds = starts.tolist()
    bounds.append(n)
    ends = np.asarray(bounds[1:]) - 1
    tail_t = st[ends].tolist()
    tail_p = sp[ends].tolist()
    for gi, (cur, gk) in enumerate(zip(cursors, gkeys)):
        cur._pending.append((gk, packed[bounds[gi]: bounds[gi + 1]]))
        cur._tails[gk] = (tail_t[gi], tail_p[gi])


def hampel_filter(series: TimeSeries, window: int = 3,
                  n_sigmas: float = 6.0) -> Tuple[TimeSeries, int]:
    """Hampel/MAD outlier rejection over a displacement stream.

    Compares each sample against the median of its ``2 * window + 1``
    neighbourhood and rejects it when it deviates by more than
    ``n_sigmas`` robust sigmas (1.4826 x the neighbourhood MAD).  Breathing
    displacement is smooth and millimetre-scale, so genuine samples sit
    far inside the default 6-sigma gate while a glitched read — a
    pi-ambiguity flip lands a lambda/4 (~8 cm) jump — is rejected without
    dragging the median along, which is exactly why Hampel beats a mean
    filter here.

    Flagged samples are *removed* rather than replaced: the downstream
    fusion grid tolerates irregular sampling, and inventing interpolated
    values inside a glitch would just launder the fault.

    Args:
        series: one tag's displacement samples (or increments).
        window: neighbourhood half-width in samples.
        n_sigmas: rejection threshold in MAD-estimated sigmas.

    Returns:
        ``(filtered, n_rejected)``.  Series shorter than one full
        neighbourhood are returned unchanged; neighbourhoods with zero MAD
        (locally constant data) never flag, so a clean stream passes
        through bit-identically.

    Raises:
        StreamError: on a non-positive window or threshold.
    """
    if window < 1:
        raise StreamError("hampel window must be >= 1")
    if n_sigmas <= 0:
        raise StreamError("hampel n_sigmas must be > 0")
    n = len(series)
    k = 2 * int(window) + 1
    if n < k:
        return series, 0
    values = series.values
    # Edge padding, spelled as a concatenate: identical content to
    # np.pad(..., mode="edge") without its dispatch overhead — this runs
    # per stream on every streaming tick.
    w = int(window)
    padded = np.concatenate(
        [np.full(w, values[0]), values, np.full(w, values[-1])])
    neighbourhoods = np.lib.stride_tricks.sliding_window_view(padded, k)
    # The neighbourhood width k = 2w + 1 is always odd, so the median is
    # the single order statistic at rank w: np.partition places exactly
    # the element np.median would return (np.median partitions at the
    # same rank and means over the one-element middle), minus np.median's
    # reduction machinery — this runs per stream on every streaming tick.
    med = np.partition(neighbourhoods, w, axis=1)[:, w]
    sigma = 1.4826 * np.partition(
        np.abs(neighbourhoods - med[:, None]), w, axis=1)[:, w]
    residual = np.abs(values - med)
    flagged = (sigma > 0) & (residual > n_sigmas * sigma)
    if not flagged.any():
        return series, 0
    keep = ~flagged
    return (TimeSeries.from_trusted(series.times[keep], values[keep]),
            int(flagged.sum()))


def displacement_track(deltas: TimeSeries) -> TimeSeries:
    """Eq. (4): accumulate displacement increments into a movement track.

    ``D_j = sum_{i=1..N} delta_d_{i+j}`` — the paper's running total that
    Fig. 6 plots (normalised).  Within one dwell chain the sum telescopes
    to true displacement plus bounded endpoint noise; across chains the
    stitching noise is what the smoothing and fusion stages average down.
    """
    return deltas.cumsum()
