"""Per-channel phase-offset calibration with a static reference tag.

Eq. (1)'s constant ``c`` differs per channel, which is why TagBreathe
groups phase readings by channel and discards all cross-channel phase
relationships.  That information need not be lost: a **static reference
tag** at a known distance (taped to a wall, a standard trick from the
RFID localisation literature the paper builds on, e.g. Tagoram) measures
each channel's offset directly —

    c_k = theta_measured(k) - 4*pi*d_ref / lambda_k      (mod 2*pi)

Once calibrated, phase readings from *any* tag can be offset-corrected,
making phases comparable across channels (up to the half-wavelength
ambiguity).  The breathing pipeline itself does not need this — but
diagnostics, absolute-displacement tracking, and multi-channel ranging
extensions do, and the calibration quality metric doubles as a health
check of the deployment (a drifting offset means the reference tag
moved or the cabling changed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import InsufficientDataError, ReproError
from ..reader.tagreport import TagReport
from ..units import SPEED_OF_LIGHT, TWO_PI, wrap_phase


@dataclass(frozen=True)
class ChannelCalibration:
    """One channel's calibrated offset.

    Attributes:
        channel_index: the calibrated channel.
        offset_rad: estimated constant ``c`` (mod 2*pi).
        spread_rad: circular std of the per-read estimates — the
            calibration's quality (should be at the phase-noise floor
            for a truly static reference).
        sample_count: reads used.
    """

    channel_index: int
    offset_rad: float
    spread_rad: float
    sample_count: int


def _circular_mean_and_spread(angles: np.ndarray) -> Tuple[float, float]:
    """Mean direction and circular std of angles [rad]."""
    vectors = np.exp(1j * angles)
    mean_vector = vectors.mean()
    mean = float(np.angle(mean_vector)) % TWO_PI
    r = abs(mean_vector)
    spread = float(np.sqrt(-2.0 * np.log(max(r, 1e-12))))
    return mean, spread


class ChannelCalibrator:
    """Estimates per-channel offsets from a static reference tag's reads.

    Args:
        reference_distance_m: surveyed antenna-to-reference-tag distance.
        frequencies_hz: channel-index -> carrier frequency map.
        min_reads_per_channel: reads required before a channel is
            considered calibrated.

    Raises:
        ReproError: on a non-positive distance or empty frequency map.
    """

    def __init__(self, reference_distance_m: float,
                 frequencies_hz: Sequence[float],
                 min_reads_per_channel: int = 5) -> None:
        if reference_distance_m <= 0:
            raise ReproError("reference distance must be > 0")
        if not frequencies_hz:
            raise ReproError("need at least one channel frequency")
        if min_reads_per_channel < 1:
            raise ReproError("min_reads_per_channel must be >= 1")
        self._d_ref = float(reference_distance_m)
        self._frequencies = list(frequencies_hz)
        self._min_reads = int(min_reads_per_channel)
        self._samples: Dict[int, List[float]] = {}

    # ------------------------------------------------------------------
    def ingest(self, report: TagReport) -> None:
        """Feed one read of the reference tag.

        Raises:
            ReproError: on a channel index outside the frequency map.
        """
        if report.channel_index >= len(self._frequencies):
            raise ReproError(
                f"channel {report.channel_index} outside the "
                f"{len(self._frequencies)}-channel map"
            )
        lam = SPEED_OF_LIGHT / self._frequencies[report.channel_index]
        geometric = TWO_PI / lam * 2.0 * self._d_ref
        offset = wrap_phase(report.phase_rad - geometric)
        self._samples.setdefault(report.channel_index, []).append(offset)

    def ingest_many(self, reports: Iterable[TagReport]) -> None:
        """Feed a batch of reference-tag reads."""
        for report in reports:
            self.ingest(report)

    # ------------------------------------------------------------------
    def calibration(self, channel_index: int) -> ChannelCalibration:
        """The calibrated offset of one channel.

        Raises:
            InsufficientDataError: with too few reads on that channel.
        """
        samples = self._samples.get(channel_index, [])
        if len(samples) < self._min_reads:
            raise InsufficientDataError(
                f"channel {channel_index}: {len(samples)} reads "
                f"< {self._min_reads} required"
            )
        mean, spread = _circular_mean_and_spread(np.asarray(samples))
        return ChannelCalibration(
            channel_index=channel_index,
            offset_rad=mean,
            spread_rad=spread,
            sample_count=len(samples),
        )

    def calibrated_channels(self) -> List[int]:
        """Channels with enough reads to calibrate."""
        return sorted(
            ch for ch, samples in self._samples.items()
            if len(samples) >= self._min_reads
        )

    def all_calibrations(self) -> Dict[int, ChannelCalibration]:
        """Calibrations for every sufficiently-sampled channel."""
        return {ch: self.calibration(ch) for ch in self.calibrated_channels()}

    def is_complete(self) -> bool:
        """True once every channel in the frequency map is calibrated."""
        return len(self.calibrated_channels()) == len(self._frequencies)

    # ------------------------------------------------------------------
    def correct_phase(self, report: TagReport) -> float:
        """A report's phase with the channel offset removed [rad].

        After correction, ``phase = 4*pi*d/lambda_k (mod 2*pi)`` holds
        with the same zero across channels (up to the target tag's own
        circuit offset, which is channel-independent).

        Raises:
            InsufficientDataError: if the report's channel is uncalibrated.
        """
        calibration = self.calibration(report.channel_index)
        return wrap_phase(report.phase_rad - calibration.offset_rad)

    def distance_candidates(self, report: TagReport,
                            max_distance_m: float = 12.0) -> List[float]:
        """Possible tag distances for one corrected read.

        The half-wavelength ambiguity means a single phase maps to a comb
        of distances ``(phase * lambda / (4*pi)) + n * lambda/2``.

        Raises:
            InsufficientDataError: if the channel is uncalibrated.
            ReproError: on a non-positive range limit.
        """
        if max_distance_m <= 0:
            raise ReproError("max_distance_m must be > 0")
        corrected = self.correct_phase(report)
        lam = SPEED_OF_LIGHT / self._frequencies[report.channel_index]
        base = corrected * lam / (4.0 * math.pi)
        candidates = []
        n = 0
        while True:
            d = base + n * lam / 2.0
            if d > max_distance_m:
                break
            if d > 0:
                candidates.append(d)
            n += 1
        return candidates
