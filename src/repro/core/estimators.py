"""The estimator lattice: one interface over every rate-producing path.

DESIGN.md §16.  The paper commits to a single estimator — Eq. 5 zero
crossings over the fused phase-displacement track — and its Section
IV-B discusses the FFT-peak alternative only to reject it for
resolution.  Production needs more than one: when phase quality
collapses (dense multipath, interference, a marginal link) the
zero-crossing count stops meaning breaths, while the RSS amplitude
ripple (paper Fig. 2, UbiBreathe) often survives.  This module
extracts the common :class:`BreathEstimator` interface over the
existing paths and adds the RSS fallback behind it.

Every estimator consumes an :class:`EstimationWindow` — the fused
track *plus* the surviving raw report columns — and returns the same
:class:`~repro.core.extraction.BreathingEstimate` the pipeline always
produced.  :class:`ZeroCrossingEstimator` delegates verbatim to
:class:`~repro.core.extraction.BreathExtractor`, so the refactor is
bit-identical to the pre-interface pipeline by construction (pinned by
``tests/test_estimators.py`` on the golden traces).

Estimator selection (``auto`` mode) keys off *track roughness* — the
median absolute sample-to-sample step of the fused displacement track.
Clean captures sit well under a millimetre per 50 ms bin; when phase
noise dominates, the track is a random walk with millimetre-to-
centimetre steps.  A dual threshold
(:class:`~repro.config.EstimatorConfig`) gives the switch hysteresis
so a borderline stream cannot flap between estimators every tick.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import EstimatorConfig
from ..errors import ExtractionError
from ..streams.timeseries import TimeSeries
from .degradation import REASON_PHASE_DEGRADED, REASON_RSS_FALLBACK
from .extraction import BreathExtractor, BreathingEstimate
from .spectral import fft_peak_rate_bpm

@dataclass(frozen=True)
class EstimationWindow:
    """Everything one analysis window offers a rate estimator.

    Both estimate paths build this from the *same* post-selection,
    post-staleness state, so an estimator sees identical inputs whether
    the window came from the batch reference or a streaming tick.

    Attributes:
        track: the fused Eq. 7 displacement track (phase path input).
        times: surviving report timestamps, ascending [s].
        rssi: per-report RSSI [dBm], aligned with ``times``.
        channel: per-report channel index, aligned with ``times``.
        antenna: per-report antenna port, aligned with ``times``.
        tag: per-report tag-stream label, aligned with ``times``.  Only
            the *partition* it induces is contracted — the batch path
            fills it with ``tag_id`` while the streaming tick uses its
            internal stream ids, which label the identical groups (one
            per worn tag), so group-wise arithmetic is bit-identical
            across paths.
    """

    track: TimeSeries
    times: np.ndarray
    rssi: np.ndarray
    channel: np.ndarray
    antenna: np.ndarray
    tag: np.ndarray


class BreathEstimator(ABC):
    """One way of turning an :class:`EstimationWindow` into a rate.

    Attributes:
        name: stable machine name surfaced in ``UserEstimate.estimator``
            and the serve wire format.
    """

    name: str = ""

    @abstractmethod
    def estimate(self, window: EstimationWindow) -> BreathingEstimate:
        """Produce the window's rate estimate.

        Raises:
            InsufficientDataError: when the window cannot support this
                estimator (too short, too sparse, too few crossings).
        """


class ZeroCrossingEstimator(BreathEstimator):
    """The paper's production path: Eq. 5 crossings over the fused track.

    Pure delegation to :class:`BreathExtractor` — the pipeline's
    pre-interface behaviour, bit for bit.
    """

    name = "zero_crossing"

    def __init__(self, extractor: BreathExtractor) -> None:
        self._extractor = extractor

    def estimate(self, window: EstimationWindow) -> BreathingEstimate:
        return self._extractor.estimate(window.track)


class SpectralEstimator(BreathEstimator):
    """The Fig. 7 path: rate = FFT peak of the fused track.

    Resolution-limited to ``60 / window_s`` bpm (the Section IV-B
    pitfall), which is why it is never the ``auto`` choice — but it is
    cheap, crossing-free, and useful as an explicit selection for
    sanity sweeps.
    """

    name = "spectral"

    def __init__(self, band_bpm: tuple = (4.0, 40.0)) -> None:
        self._band = band_bpm

    def estimate(self, window: EstimationWindow) -> BreathingEstimate:
        rate = fft_peak_rate_bpm(window.track, band_bpm=self._band)
        t_end = float(window.track.times[-1])
        point = TimeSeries.from_trusted(np.array([t_end]), np.array([rate]))
        return BreathingEstimate(rate_bpm=rate, rate_series=point,
                                 signal=window.track, crossings=[])


def build_estimators(extractor: BreathExtractor) -> Dict[str, BreathEstimator]:
    """Every concrete estimator, keyed by name, sharing one extractor."""
    from .rss_estimator import RSSEstimator
    lattice: Dict[str, BreathEstimator] = {}
    for estimator in (ZeroCrossingEstimator(extractor),
                      SpectralEstimator(),
                      RSSEstimator(extractor)):
        lattice[estimator.name] = estimator
    return lattice


def track_roughness(track: TimeSeries) -> float:
    """Phase-quality proxy: median |sample-to-sample step| of the track.

    Clean fused tracks step by well under a millimetre per bin; a
    phase-noise-dominated track random-walks at millimetre scale or
    worse.  Pure function of the track, so both estimate paths agree
    bit-for-bit.
    """
    if len(track) < 2:
        return 0.0
    return float(np.median(np.abs(np.diff(track.values))))


def select_estimator(config: EstimatorConfig, roughness: float,
                     previous: Optional[str]) -> str:
    """Pick the active estimator name for one window.

    Explicit modes return themselves.  ``auto`` applies the roughness
    hysteresis: enter the RSS fallback above ``roughness_enter_m``,
    leave it only below ``roughness_exit_m``, keep the previous choice
    in between (``previous=None`` means no history — the enter
    threshold alone decides).
    """
    if config.estimator != "auto":
        return config.estimator
    if previous == "rss":
        return "zero_crossing" if roughness < config.roughness_exit_m else "rss"
    if roughness >= config.roughness_enter_m:
        return "rss"
    return "zero_crossing"


def resolve_estimator(config: EstimatorConfig, roughness: float,
                      previous: Optional[str], override: Optional[str],
                      reasons: List[str]) -> Tuple[str, float]:
    """Selection plus degradation bookkeeping, shared by both paths.

    An explicit per-call ``override`` wins outright (a deliberate
    choice, not a degradation — no reasons, no confidence cost).
    Otherwise :func:`select_estimator` decides, and an ``auto``-mode
    fall to RSS appends ``REASON_PHASE_DEGRADED`` + ``REASON_RSS_FALLBACK``
    and returns a mild confidence factor: the fallback estimate is
    usable but earned less trust than clean phase.

    Returns:
        ``(estimator_name, confidence_factor)``; ``reasons`` is mutated
        in place.

    Raises:
        ExtractionError: on an unknown override name.
    """
    if override is not None:
        if override not in ("zero_crossing", "spectral", "rss"):
            raise ExtractionError(
                f"estimator must be 'zero_crossing', 'spectral', or "
                f"'rss', got {override!r}")
        return override, 1.0
    chosen = select_estimator(config, roughness, previous)
    if config.estimator == "auto" and chosen == "rss":
        reasons.append(REASON_PHASE_DEGRADED)
        reasons.append(REASON_RSS_FALLBACK)
        return chosen, 0.9
    return chosen, 1.0
