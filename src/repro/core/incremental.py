"""O(new-samples) streaming estimation — the incremental tick path.

The batch reference (:meth:`repro.core.pipeline.TagBreathe._process_user`)
re-gathers, re-sorts, re-differences, re-fuses, and re-filters the whole
trailing window on every cadence tick.  This module maintains, per user,
state that is updated once per ``feed()``:

* a :class:`~repro.streams.windowindex.WindowIndex` of timestamp-ordered
  scalar columns (antenna port, RSSI, stream id), so a trailing window is
  two binary searches plus contiguous slices instead of a gather + sort;
* one :class:`~repro.core.preprocess.PhaseChainCursor` per tag stream,
  holding the Eq. (3) wrapped phase deltas computed once at ingest time.

:meth:`IncrementalEstimator.estimate` then replays the *same* six-stage
algorithm as the batch path — delivery hygiene, antenna failover,
staleness demotion, gap scoring, Hampel + Eq. (6)/(7) fusion, Eq. (5)
extraction — over those columns.  Each stage's arithmetic is arranged to
perform the identical float64 operations on the identical values in the
identical order, so the result is **bit-for-bit equal** to the recompute
path (``tests/test_incremental.py`` and the hypothesis property in
``tests/test_property.py`` pin this).  Two deliberate, measure-zero
deviations from the recompute path are documented in DESIGN.md §12:
exact cross-stream timestamp ties order by arrival rather than by buffer
creation, and exact antenna-score ties break toward the lowest port.

What stays out: ``mode="increments"`` cannot tick incrementally — its
:class:`~repro.core.preprocess.DeltaChain` smoothing window spans the
analysis-window boundary, so windowed results are not a function of
windowed reports — and falls back to the recompute path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import perf
from ..config import (
    EstimatorConfig,
    MotionConfig,
    PipelineConfig,
    RobustnessConfig,
)
from ..errors import EmptyStreamError, InsufficientDataError
from ..reader.tagreport import TagReport
from ..streams.timeseries import TimeSeries
from ..streams.windowindex import WindowIndex
from ..streams.windows import trailing_window_bounds
from .degradation import (
    REASON_ANTENNA_FAILOVER,
    REASON_GAPS,
    REASON_OUTLIERS,
    REASON_TAG_DEATH,
)
from .estimators import (
    BreathEstimator,
    EstimationWindow,
    resolve_estimator,
    track_roughness,
)
from .extraction import BreathExtractor, BreathingEstimate
from .fusion import fuse_sample_streams
from .motion import STILL, apply_motion, score_motion
from .preprocess import (
    DEFAULT_MIN_SEGMENT_LEN,
    PhaseChainCursor,
    StreamKey,
    defer_chains,
    hampel_filter,
)
from .quality import quality_score


@dataclass
class TickOutcome:
    """Everything one incremental tick computed, pre-finalisation.

    The pipeline turns this into a ``UserEstimate`` via the same
    finalisation (obs counters, degradation warning, confidence clamp)
    the batch path uses, so the two paths cannot drift there either.
    """

    estimate: BreathingEstimate
    antenna_port: Optional[int]
    tags_fused: int
    read_count: int
    confidence: float
    reasons: List[str]
    n_rejected: int
    n_samples: int
    estimator: str = "zero_crossing"
    motion_gated: bool = False
    motion_score: float = 0.0


class UserStreamState:
    """One user's feed-time incremental state.

    ``version`` increments on every mutation (accepted feed, prune) and
    is what the pipeline's estimate memo keys on: a tick at an unchanged
    version returns the cached ``UserEstimate`` without touching any of
    this.
    """

    __slots__ = ("index", "cursors", "keys", "sid_of", "version")

    def __init__(self) -> None:
        self.index = WindowIndex({
            "port": np.int64, "rssi": np.float64, "sid": np.int64,
            "dop": np.float64, "chan": np.int64,
        })
        self.cursors: List[PhaseChainCursor] = []
        self.keys: List[StreamKey] = []
        self.sid_of: Dict[StreamKey, int] = {}
        self.version = 0


class IncrementalEstimator:
    """Per-user incremental window state + the O(window-slice) tick.

    Owned by :class:`~repro.core.pipeline.TagBreathe` (samples mode);
    fed from ``feed()``, queried from ``estimate_user()``.

    Args:
        frequencies_hz: channel-index -> carrier frequency map.
        config: signal-processing parameters (fusion bin width).
        robustness: graceful-degradation thresholds.
        extractor: the shared extraction stage.
        select_antenna: mirror of the engine's antenna-selection flag.
        max_gap_s: segment-splitting gap limit (samples mode).
    """

    def __init__(
        self,
        frequencies_hz: List[float],
        config: PipelineConfig,
        robustness: RobustnessConfig,
        extractor: BreathExtractor,
        select_antenna: bool,
        max_gap_s: float,
        motion: Optional[MotionConfig] = None,
        est_config: Optional[EstimatorConfig] = None,
        estimators: Optional[Dict[str, BreathEstimator]] = None,
    ) -> None:
        self._frequencies = frequencies_hz
        self._config = config
        self._robustness = robustness
        self._extractor = extractor
        self._select_antenna = select_antenna
        self._max_gap_s = max_gap_s
        self._motion = motion if motion is not None else MotionConfig()
        self._est_config = (est_config if est_config is not None
                            else EstimatorConfig())
        if estimators is None:
            from .estimators import build_estimators
            estimators = build_estimators(extractor)
        self._estimators = estimators
        self._states: Dict[int, UserStreamState] = {}

    # ------------------------------------------------------------------
    # Feed-side maintenance
    # ------------------------------------------------------------------
    def state_for(self, user_id: int) -> Optional[UserStreamState]:
        """The user's live state, or None before their first report."""
        return self._states.get(user_id)

    def version(self, user_id: int) -> int:
        """The user's state version (-1 before their first report)."""
        state = self._states.get(user_id)
        return -1 if state is None else state.version

    def nbytes(self, user_id: Optional[int] = None) -> int:
        """Resident numpy bytes of one user's state (or every user's).

        Sums the window-index columns and every chain cursor's packed
        rows — the allocation-backed cost that hibernation and horizon
        pruning exist to bound.
        """
        states = (self._states.values() if user_id is None
                  else filter(None, [self._states.get(user_id)]))
        total = 0
        for state in states:
            total += state.index.nbytes
            for cursor in state.cursors:
                total += cursor.nbytes
        return total

    def ingest(self, report: TagReport) -> None:
        """Index one accepted report and difference it at its cursor.

        The caller (``TagBreathe.feed``) has already enforced the stream
        contract: per-stream strictly-increasing timestamps, valid
        channel index, monitored user.
        """
        state = self._states.get(report.user_id)
        if state is None:
            state = UserStreamState()
            self._states[report.user_id] = state
        key = report.stream_key
        sid = state.sid_of.get(key)
        if sid is None:
            sid = len(state.keys)
            state.sid_of[key] = sid
            state.keys.append(key)
            state.cursors.append(PhaseChainCursor(
                self._frequencies, max_gap_s=self._max_gap_s))
        state.index.add(report.timestamp_s, port=report.antenna_port,
                        rssi=report.rssi_dbm, sid=sid,
                        dop=report.doppler_hz, chan=report.channel_index)
        state.cursors[sid].push(report)
        state.version += 1

    def ingest_streams(self, groups: List[Tuple[StreamKey, np.ndarray]],
                       users: np.ndarray, tags: np.ndarray,
                       times: np.ndarray, phases: np.ndarray,
                       rssis: np.ndarray, dopplers: np.ndarray,
                       channels: np.ndarray,
                       antennas: np.ndarray) -> None:
        """Vectorized :meth:`ingest` of one batch's accepted rows.

        The caller (``TagBreathe.feed_batch``) has already screened the
        batch per stream; this ingests every surviving row across all
        users in three passes — stream-id assignment, per-user window
        index extension, and one global Eq. (3) chain pass — leaving
        state bit-identical to calling :meth:`ingest` row by row in
        arrival order: stream ids are assigned in order of first
        appearance, each user's index receives its rows as a stable
        sort by time (what row-wise ``add`` converges to), and each
        (stream, channel, antenna) chain is differenced in one shot
        against its cached tail.  ``version`` advances by each user's
        accepted row count.

        Args:
            groups: per-stream ``(stream_key, rows)`` pairs — ``rows``
                being ascending original-batch indices of that stream's
                accepted rows — sorted by first accepted row, i.e. the
                order row-wise ingest would first see (and create) each
                stream.
            users / tags / times / phases / rssis / dopplers / channels
                / antennas: the full batch columns (only ``rows``
                positions are read).
        """
        if not groups:
            return
        sids = np.empty(times.shape[0], dtype=np.int64)
        cursor_of: Dict[StreamKey, PhaseChainCursor] = {}
        by_user: Dict[int, List[np.ndarray]] = {}
        for key, rows in groups:
            uid = key[0]
            state = self._states.get(uid)
            if state is None:
                state = UserStreamState()
                self._states[uid] = state
            sid = state.sid_of.get(key)
            if sid is None:
                sid = len(state.keys)
                state.sid_of[key] = sid
                state.keys.append(key)
                state.cursors.append(PhaseChainCursor(
                    self._frequencies, max_gap_s=self._max_gap_s))
            sids[rows] = sid
            cursor_of[key] = state.cursors[sid]
            by_user.setdefault(uid, []).append(rows)

        for uid, chunks in by_user.items():
            rows_u = (np.sort(np.concatenate(chunks))
                      if len(chunks) > 1 else chunks[0])
            state = self._states[uid]
            tu = times[rows_u]
            tsort = np.argsort(tu, kind="stable")
            tail = state.index.last_time()
            if tail is None or tu[tsort[0]] >= tail:
                srt = rows_u[tsort]
                state.index.extend(tu[tsort], port=antennas[srt],
                                   rssi=rssis[srt], sid=sids[srt],
                                   dop=dopplers[srt], chan=channels[srt])
            else:
                # A straggler lands before the index tail (cross-stream
                # reordering against previously fed data): rare, row-wise
                # in arrival order.
                for i in rows_u.tolist():
                    state.index.add(float(times[i]), port=int(antennas[i]),
                                    rssi=float(rssis[i]), sid=int(sids[i]),
                                    dop=float(dopplers[i]),
                                    chan=int(channels[i]))
            state.version += rows_u.shape[0]

        # Global chain pass: one stable lexsort arranges every accepted
        # row as contiguous (user, tag, channel, antenna) runs, each in
        # arrival order; every chain is then extended from one
        # vectorized differencing pass.
        acc = (np.sort(np.concatenate([rows for _, rows in groups]))
               if len(groups) > 1 else groups[0][1])
        au = users[acc]
        atg = tags[acc]
        ach = channels[acc]
        aan = antennas[acc]
        order = np.lexsort((aan, ach, atg, au))
        gacc = acc[order]
        su = au[order]
        stg = atg[order]
        sch = ach[order]
        san = aan[order]
        m = gacc.shape[0]
        is_start = np.empty(m, dtype=bool)
        is_start[0] = True
        np.not_equal(su[1:], su[:-1], out=is_start[1:])
        is_start[1:] |= ((stg[1:] != stg[:-1]) | (sch[1:] != sch[:-1])
                         | (san[1:] != san[:-1]))
        starts = np.flatnonzero(is_start)
        cursors = [cursor_of[(u, tg)]
                   for u, tg in zip(su[starts].tolist(),
                                    stg[starts].tolist())]
        gkeys = list(zip(sch[starts].tolist(), san[starts].tolist()))
        defer_chains(cursors, gkeys, starts, times[gacc], phases[gacc],
                     self._max_gap_s)

    def prune_stream(self, user_id: int, key: StreamKey,
                     horizon_s: float) -> None:
        """Mirror the engine's bounded-memory prune for one stream."""
        state = self._states.get(user_id)
        if state is None:
            return
        sid = state.sid_of.get(key)
        if sid is None:
            return
        where = state.index.column("sid") == sid
        dropped = state.index.prune_before(horizon_s, where=where)
        state.cursors[sid].prune_before(horizon_s)
        if dropped:
            state.version += 1

    def reset(self) -> None:
        """Forget every user's state (streaming reset / restore)."""
        self._states.clear()

    # ------------------------------------------------------------------
    # Tick side
    # ------------------------------------------------------------------
    def estimate(self, user_id: int, window_s: float,
                 previous_estimator: Optional[str] = None,
                 estimator_override: Optional[str] = None) -> TickOutcome:
        """One incremental tick over the trailing ``window_s`` seconds.

        Args:
            user_id: the user to estimate.
            window_s: trailing-window length.
            previous_estimator: the user's fallback hysteresis memory
                (the estimator that produced their previous streaming
                estimate), owned by the pipeline.
            estimator_override: per-call estimator override, bypassing
                ``auto`` selection.

        Raises:
            InsufficientDataError: no streamed data for the user, or the
                window holds too little signal (same contract and wording
                as the recompute path).
        """
        state = self._states.get(user_id)
        if state is None or not len(state.index):
            raise InsufficientDataError(
                f"no streamed data for user {user_id}")
        rb = self._robustness
        reasons: List[str] = []
        confidence = 1.0

        with perf.stage("pipeline.tick.window"):
            index = state.index
            all_times = index.times
            t_latest = float(all_times[-1])
            lo, hi = trailing_window_bounds(t_latest, window_s)
            a, b = index.window_bounds(lo, hi)
            times = all_times[a:b]
            ports = index.column("port")[a:b]
            rssis = index.column("rssi")[a:b]
            sids = index.column("sid")[a:b]
            dops = index.column("dop")[a:b]
            chans = index.column("chan")[a:b]
            # Stage 1 (delivery hygiene) is a no-op here by construction:
            # feed() enforces per-stream order and dedup and the index
            # keeps global time order, so sanitize_reports would find
            # nothing to count.

            # The motion screen (stage 4b) scores the *full* sanitized
            # window — all antennas, pre-demotion — exactly like the
            # batch path: antenna selection exists for phase continuity,
            # while Doppler motion evidence is antenna-agnostic.
            m_times = times
            m_dops = dops

            # Stage 2: antenna selection with failover past dead ports.
            antenna_port: Optional[int] = None
            unique_ports = np.unique(ports)
            if self._select_antenna and unique_ports.size > 1:
                antenna_port, failed_over = _select_port(
                    times, ports, rssis, unique_ports, rb.antenna_stale_s)
                if failed_over:
                    reasons.append(REASON_ANTENNA_FAILOVER)
                    confidence *= 0.85
                keep = ports == antenna_port
                times = times[keep]
                sids = sids[keep]
                ports = ports[keep]
                rssis = rssis[keep]
                dops = dops[keep]
                chans = chans[keep]
            elif unique_ports.size == 1:
                antenna_port = int(unique_ports[0])

            # Stage 3: staleness watchdog — demote dead tag streams.
            unique_sids = np.unique(sids)
            if times.shape[0] and unique_sids.size > 1:
                t_lat = float(times[-1])
                dead = [
                    s for s in unique_sids
                    if float(times[sids == s][-1]) < t_lat - rb.stale_stream_s
                ]
                if dead and len(dead) < unique_sids.size:
                    reasons.append(REASON_TAG_DEATH)
                    confidence *= max(
                        0.5,
                        (unique_sids.size - len(dead)) / unique_sids.size)
                    keep = ~np.isin(sids, dead)
                    times = times[keep]
                    sids = sids[keep]
                    ports = ports[keep]
                    rssis = rssis[keep]
                    dops = dops[keep]
                    chans = chans[keep]

            # Stage 4: coverage — long holes in the read times.
            if times.shape[0] > 1:
                span = max(float(times[-1]) - float(times[0]), 1e-9)
                gaps = np.diff(times)
                # Sequential python sum, matching the batch path's
                # generator sum float for float (np.sum is pairwise).
                excess = sum(gaps[gaps > rb.gap_warn_s].tolist())
                if excess > 0.0:
                    reasons.append(REASON_GAPS)
                    confidence *= max(0.5, 1.0 - excess / span)

            # Stage 4b: Doppler motion screen (same pure function, same
            # full-window pre-selection arrays as the batch path).
            motion = STILL
            if self._motion.enabled and m_times.shape[0]:
                motion = score_motion(m_times, m_dops, self._motion)
                confidence = apply_motion(motion, reasons, confidence)

        with perf.stage("pipeline.tick.fuse"):
            # Stage 5: per-tag windowed displacement (from the feed-time
            # chains) + Hampel + Eq. (6)/(7) fusion.  Stream order is the
            # first appearance in the surviving windowed reports, exactly
            # like group_reports_by_stream on the batch side.
            _, first_pos = np.unique(sids, return_index=True)
            order = sids[np.sort(first_pos)]
            per_tag: Dict[StreamKey, TimeSeries] = {}
            n_rejected = 0
            for s in order:
                sid = int(s)
                stream = state.cursors[sid].window_displacement(
                    lo, hi, antenna_port=antenna_port,
                    min_segment_len=DEFAULT_MIN_SEGMENT_LEN)
                if rb.outlier_rejection and stream:
                    stream, rejected = hampel_filter(
                        stream, window=rb.hampel_window,
                        n_sigmas=rb.hampel_n_sigmas)
                    n_rejected += rejected
                per_tag[state.keys[sid]] = stream
            n_samples = sum(len(s) for s in per_tag.values()) + n_rejected
            try:
                fused = fuse_sample_streams(
                    user_id, per_tag, bin_s=self._config.fusion_bin_s)
            except EmptyStreamError as exc:
                raise InsufficientDataError(str(exc)) from exc
            if n_samples and n_rejected / n_samples > rb.outlier_warn_fraction:
                reasons.append(REASON_OUTLIERS)
                confidence *= max(0.7, 1.0 - 5.0 * n_rejected / n_samples)

        with perf.stage("pipeline.tick.extract"):
            # Stage 6: estimator selection + extraction (DESIGN.md §16),
            # identical arithmetic and ordering to the batch path.
            roughness = track_roughness(fused.track)
            chosen, est_factor = resolve_estimator(
                self._est_config, roughness, previous_estimator,
                estimator_override, reasons)
            confidence *= est_factor
            # ``tag=sids`` labels the same per-tag groups the batch path
            # labels with tag_id — only the partition is contracted.
            est_window = EstimationWindow(
                track=fused.track, times=times, rssi=rssis,
                channel=chans, antenna=ports, tag=sids)
            estimate = self._estimators[chosen].estimate(est_window)

        return TickOutcome(
            estimate=estimate,
            antenna_port=antenna_port,
            tags_fused=len(per_tag),
            read_count=int(times.shape[0]),
            confidence=confidence,
            reasons=reasons,
            n_rejected=n_rejected,
            n_samples=n_samples,
            estimator=chosen,
            motion_gated=motion.gated,
            motion_score=motion.score,
        )


def _select_port(times: np.ndarray, ports: np.ndarray, rssis: np.ndarray,
                 unique_ports: np.ndarray,
                 stale_s: float) -> Tuple[int, Tuple[int, ...]]:
    """Column-store twin of ``select_antenna_with_failover``.

    Same score (via the shared :func:`~repro.core.quality.quality_score`),
    same span and liveness definitions; exact score ties break toward the
    lowest live port (the batch path's small-int set iteration does the
    same in practice — a documented measure-zero deviation otherwise).
    """
    span = max(float(times[-1]) - float(times[0]), 1e-9)
    t_latest = float(times[-1])
    scores: Dict[int, float] = {}
    last_seen: Dict[int, float] = {}
    for p in unique_ports:
        port = int(p)
        selected = ports == p
        port_times = times[selected]
        scores[port] = quality_score(
            int(selected.sum()), span, float(np.mean(rssis[selected])))
        last_seen[port] = float(port_times[-1])
    live = [p for p in sorted(last_seen)
            if last_seen[p] >= t_latest - stale_s]
    chosen = max(live, key=lambda p: scores[p])
    failed_over = tuple(sorted(
        p for p in scores
        if p not in live and scores[p] > scores[chosen]
    ))
    return chosen, failed_over
