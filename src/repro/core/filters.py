"""Low-pass filtering — the paper's breath-signal extraction front end.

    "we first apply the FFT to convert the time domain displacement values
    to the frequency domain and set the cutoff frequency of the low pass
    filter as 0.67 Hz. After that, we use an inverse FFT (IFFT) to convert
    back to the time domain displacement values. ... A finite impulse
    response (FIR) low pass filter can also be adopted."  (Section IV-B)

Both filters are implemented.  The FFT brick-wall filter is the paper's
primary choice; the FIR filter is the stated alternative (and is what a
streaming implementation would prefer — no whole-window transform).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from ..errors import StreamError
from ..streams.timeseries import TimeSeries

#: The paper's cutoff: 0.67 Hz ~= 40 breaths per minute, the upper bound of
#: plausible human breathing ("generally lower than 40 breaths per minute").
PAPER_CUTOFF_HZ = 0.67


def _require_regular(series: TimeSeries, what: str) -> float:
    """Validate a regularly-sampled series and return its sampling rate.

    Raises:
        StreamError: if the series has < 4 samples or irregular timing.
    """
    if len(series) < 4:
        raise StreamError(f"{what} needs at least 4 samples, got {len(series)}")
    gaps = np.diff(series.times)
    mean_gap = float(gaps.mean())
    if mean_gap <= 0:
        raise StreamError(f"{what} needs increasing timestamps")
    if float(np.abs(gaps - mean_gap).max()) > 0.01 * mean_gap:
        raise StreamError(
            f"{what} needs a regular sampling grid; resample first "
            f"(see repro.streams.resample)"
        )
    return 1.0 / mean_gap


def detrend_series(series: TimeSeries) -> TimeSeries:
    """Remove the best-fit line from a series' values.

    The displacement track carries a slow ramp (hop-stitching drift plus
    any net body motion); removing it keeps the ramp from leaking through
    the low-pass band and biasing zero-crossing detection.
    """
    if len(series) < 2:
        return series
    coeffs = np.polyfit(series.times, series.values, deg=1)
    trend = np.polyval(coeffs, series.times)
    return TimeSeries(series.times, series.values - trend)


def fft_lowpass(series: TimeSeries, cutoff_hz: float = PAPER_CUTOFF_HZ,
                remove_dc: bool = True, highpass_hz: float = 0.0) -> TimeSeries:
    """The paper's FFT -> zero high bins -> IFFT low-pass filter.

    Args:
        series: regularly sampled input (resample irregular data first).
        cutoff_hz: brick-wall cutoff (paper: 0.67 Hz).
        remove_dc: also zero the DC bin, centring the output for
            zero-crossing detection.
        highpass_hz: additionally zero bins below this edge (0 = pure
            low-pass as the paper describes).  Used to cut the sub-breathing
            random walk that Eq. (4)'s dwell stitching accumulates.

    Returns:
        The filtered series on the same time grid.

    Raises:
        StreamError: on irregular sampling, too few samples, or a cutoff
            at/above Nyquist (which would make the filter a no-op and is
            almost certainly a configuration mistake).
    """
    if cutoff_hz <= 0:
        raise StreamError("cutoff_hz must be > 0")
    if highpass_hz < 0 or highpass_hz >= cutoff_hz:
        raise StreamError("highpass_hz must be in [0, cutoff_hz)")
    rate_hz = _require_regular(series, "fft_lowpass")
    nyquist = rate_hz / 2.0
    if cutoff_hz >= nyquist:
        raise StreamError(
            f"cutoff {cutoff_hz} Hz >= Nyquist {nyquist:.3f} Hz of the "
            f"{rate_hz:.1f} Hz grid"
        )
    spectrum = np.fft.rfft(series.values)
    freqs = np.fft.rfftfreq(len(series), d=1.0 / rate_hz)
    spectrum[freqs > cutoff_hz] = 0.0
    if highpass_hz > 0.0:
        spectrum[freqs < highpass_hz] = 0.0
    if remove_dc:
        spectrum[0] = 0.0
    filtered = np.fft.irfft(spectrum, n=len(series))
    return TimeSeries(series.times, filtered)


def fir_lowpass(series: TimeSeries, cutoff_hz: float = PAPER_CUTOFF_HZ,
                num_taps: int = 101, remove_dc: bool = True,
                highpass_hz: float = 0.0) -> TimeSeries:
    """The paper's stated FIR alternative: windowed-sinc + zero-phase filtering.

    Args:
        series: regularly sampled input.
        cutoff_hz: -6 dB cutoff.
        num_taps: FIR length (odd; forced odd if even).  Longer = sharper.
        remove_dc: subtract the mean after filtering.
        highpass_hz: lower band edge (0 = pure low-pass).  A band-pass FIR
            needs many taps to realise a 0.05 Hz edge, so the high-pass
            part is applied as a brick-wall in the frequency domain after
            the FIR smoothing.

    Raises:
        StreamError: on irregular sampling, bad cutoff, or a series shorter
            than the filter needs for stable zero-phase operation.
    """
    if cutoff_hz <= 0:
        raise StreamError("cutoff_hz must be > 0")
    if highpass_hz < 0 or highpass_hz >= cutoff_hz:
        raise StreamError("highpass_hz must be in [0, cutoff_hz)")
    if num_taps < 3:
        raise StreamError("num_taps must be >= 3")
    rate_hz = _require_regular(series, "fir_lowpass")
    nyquist = rate_hz / 2.0
    if cutoff_hz >= nyquist:
        raise StreamError(f"cutoff {cutoff_hz} Hz >= Nyquist {nyquist:.3f} Hz")
    taps = num_taps | 1  # force odd for a symmetric (linear-phase) filter
    # filtfilt needs the signal to be longer than 3 * filter order.
    max_taps = max(3, (len(series) - 1) // 3)
    taps = min(taps, max_taps | 1)
    coeffs = sp_signal.firwin(taps, cutoff_hz, fs=rate_hz)
    filtered = sp_signal.filtfilt(coeffs, [1.0], series.values)
    out = TimeSeries(series.times, filtered)
    if highpass_hz > 0.0:
        spectrum = np.fft.rfft(out.values)
        freqs = np.fft.rfftfreq(len(out), d=1.0 / rate_hz)
        spectrum[freqs < highpass_hz] = 0.0
        out = TimeSeries(out.times, np.fft.irfft(spectrum, n=len(out)))
    if remove_dc:
        out = out.demean()
    return out
