"""Configuration dataclasses mirroring the paper's Table I.

Table I ("System parameters and default experiment settings"):

    ==================  =======================  ==========
    Parameter           Range                    Default
    ==================  =======================  ==========
    Channel             channel 1 - channel 10   Hopping
    Tx power            15 - 30 dBm              30 dBm
    Distance            1 m - 6 m                4 m
    Orientation         0 (front) - 180 (back)   front
    Number of users     1 - 4 users              1 user
    Tags per user       1 - 3 tags               3 tags
    Breathing rate      5 - 20 bpm               10 bpm
    Posture             Sitting/Standing/Lying   Sitting
    Propagation path    with/without LOS path    with LOS
    ==================  =======================  ==========

Every dataclass validates its fields in ``__post_init__`` so an invalid
configuration fails at construction time rather than deep inside a
simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .errors import ConfigError

#: Parameter ranges from Table I, used by validation and by the benchmarks.
TX_POWER_RANGE_DBM: Tuple[float, float] = (15.0, 30.0)
DISTANCE_RANGE_M: Tuple[float, float] = (1.0, 6.0)
ORIENTATION_RANGE_DEG: Tuple[float, float] = (0.0, 180.0)
USERS_RANGE: Tuple[int, int] = (1, 4)
TAGS_PER_USER_RANGE: Tuple[int, int] = (1, 3)
BREATHING_RATE_RANGE_BPM: Tuple[float, float] = (5.0, 20.0)
NUM_CHANNELS: int = 10

#: Postures evaluated in the paper (Fig. 17).
POSTURES: Tuple[str, ...] = ("sitting", "standing", "lying")


@dataclass(frozen=True)
class ReaderConfig:
    """Commodity-reader parameters (Impinj Speedway R420 in the paper).

    Attributes:
        tx_power_dbm: transmit power; Table I default 30 dBm.
        num_channels: frequency channels in the hop set (paper Fig. 5: 10).
        channel_dwell_s: residency per channel before hopping (~0.2 s).
        num_antennas: antenna ports used (R420 supports up to 4).
        antenna_gain_dbic: antenna gain (Alien ALR-8696-C: 8.5 dBic).
        base_read_rate_hz: aggregate successful-read rate with a single tag
            in ideal conditions (paper reports ~64 Hz per tag at 2 m).
        rssi_resolution_db: RSSI quantisation step of the COTS reader
            (paper Section IV-A: 0.5 dBm).
        vectorized: synthesize tag reports in per-tag batches on the
            NumPy fast path (default).  ``False`` selects the legacy
            per-read scalar path; both produce the same report stream for
            a given seed (see DESIGN.md, "Performance architecture").
    """

    tx_power_dbm: float = 30.0
    num_channels: int = NUM_CHANNELS
    channel_dwell_s: float = 0.2
    num_antennas: int = 1
    antenna_gain_dbic: float = 8.5
    base_read_rate_hz: float = 64.0
    rssi_resolution_db: float = 0.5
    vectorized: bool = True

    def __post_init__(self) -> None:
        lo, hi = TX_POWER_RANGE_DBM
        if not lo <= self.tx_power_dbm <= hi:
            raise ConfigError(
                f"tx_power_dbm={self.tx_power_dbm} outside Table I range {lo}-{hi} dBm"
            )
        if self.num_channels < 1:
            raise ConfigError("num_channels must be >= 1")
        if self.channel_dwell_s <= 0:
            raise ConfigError("channel_dwell_s must be > 0")
        if not 1 <= self.num_antennas <= 4:
            raise ConfigError("num_antennas must be 1-4 (Impinj R420 has 4 ports)")
        if self.base_read_rate_hz <= 0:
            raise ConfigError("base_read_rate_hz must be > 0")
        if self.rssi_resolution_db <= 0:
            raise ConfigError("rssi_resolution_db must be > 0")


@dataclass(frozen=True)
class PipelineConfig:
    """TagBreathe signal-processing parameters (paper Section IV-B/C).

    Attributes:
        cutoff_hz: low-pass cutoff; paper uses 0.67 Hz (40 bpm).
        highpass_hz: lower band edge.  The paper describes a low-pass
            only, but its displacement tracks are normalised/centred
            before analysis; in any sampled implementation the dwell-
            boundary stitching of Eq. (4) accumulates a slow random walk
            that must be cut below the slowest plausible breathing rate
            (5 bpm = 0.083 Hz).  Set to 0 to disable and match the
            paper's text literally.
        fusion_bin_s: time-bin width Delta-t for raw-data fusion (Eq. 6).
        zero_crossing_buffer: number of buffered zero crossings M in Eq. 5;
            paper buffers 7 crossings (= 3 breaths).
        min_window_s: shortest window accepted for a rate estimate.
        detrend: remove the linear drift of the displacement track before
            filtering (tag drift and reader phase offsets integrate into a
            slow ramp that would otherwise leak through the low-pass band).
        adaptive_band: re-centre the pass band on the displacement
            spectrum's dominant breathing peak (the FFT the paper already
            computes for Fig. 7) before zero-crossing detection.  The
            crossings then refine the rate beyond the FFT's 1/window
            resolution — the coarse/fine split keeps the paper's argument
            for zero crossings intact while making crossing detection
            robust to broadband in-band noise.  Disable for the literal
            fixed-band pipeline of the paper's text.
        band_halfwidth_hz: half-width of the adaptive pass band around the
            detected peak.
    """

    cutoff_hz: float = 0.67
    highpass_hz: float = 0.05
    fusion_bin_s: float = 0.05
    zero_crossing_buffer: int = 7
    min_window_s: float = 10.0
    detrend: bool = True
    adaptive_band: bool = True
    band_halfwidth_hz: float = 0.1

    def __post_init__(self) -> None:
        if self.cutoff_hz <= 0:
            raise ConfigError("cutoff_hz must be > 0")
        if self.highpass_hz < 0:
            raise ConfigError("highpass_hz must be >= 0")
        if self.highpass_hz >= self.cutoff_hz:
            raise ConfigError("highpass_hz must be below cutoff_hz")
        if self.band_halfwidth_hz <= 0:
            raise ConfigError("band_halfwidth_hz must be > 0")
        if self.fusion_bin_s <= 0:
            raise ConfigError("fusion_bin_s must be > 0")
        if self.zero_crossing_buffer < 2:
            raise ConfigError("zero_crossing_buffer must be >= 2 (Eq. 5 needs M >= 2)")
        if self.min_window_s <= 0:
            raise ConfigError("min_window_s must be > 0")


@dataclass(frozen=True)
class RobustnessConfig:
    """Graceful-degradation knobs of the hardened pipeline.

    No analogue in the paper — its captures came from a healthy reader in
    a quiet office.  These parameters govern how
    :class:`~repro.core.pipeline.TagBreathe` survives the failure modes
    :mod:`repro.faults` injects (report loss, dead tags, antenna outages,
    phase glitches, disordered delivery) while still reporting an estimate
    with an honest ``confidence``.  All thresholds default so that a clean
    capture passes through bit-identically: nothing is rejected, demoted,
    or failed over unless a fault signature is actually present.

    Attributes:
        outlier_rejection: run Hampel/MAD outlier rejection on each tag's
            displacement stream before fusion.
        hampel_window: Hampel neighbourhood half-width in samples (the
            local median spans ``2 * hampel_window + 1`` samples).
        hampel_n_sigmas: rejection threshold in MAD-estimated sigmas;
            breathing displacement is smooth, so clean data sits far
            inside 6 sigma while a pi-flip (lambda/4 jump) sits far
            outside.
        stale_stream_s: a tag stream whose newest report lags the user's
            newest report by more than this is considered dead and demoted
            out of fusion (Eq. 6-7 re-weighted over survivors).
        antenna_stale_s: the best-scoring antenna is skipped (failover to
            the next-best live port) when it has been silent this long at
            the end of the analysis window.
        gap_warn_s: a gap in the user's read times longer than this marks
            the estimate degraded ("report_gaps") and lowers confidence.
        outlier_warn_fraction: fraction of rejected displacement samples
            above which the estimate is marked degraded ("phase_outliers").
        warn_confidence: emit :class:`~repro.errors.DegradedEstimateWarning`
            when an estimate's confidence falls below this.
    """

    outlier_rejection: bool = True
    hampel_window: int = 3
    hampel_n_sigmas: float = 6.0
    stale_stream_s: float = 5.0
    antenna_stale_s: float = 2.5
    gap_warn_s: float = 1.0
    outlier_warn_fraction: float = 0.005
    warn_confidence: float = 0.7

    def __post_init__(self) -> None:
        if self.hampel_window < 1:
            raise ConfigError("hampel_window must be >= 1")
        if self.hampel_n_sigmas <= 0:
            raise ConfigError("hampel_n_sigmas must be > 0")
        for name in ("stale_stream_s", "antenna_stale_s", "gap_warn_s"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be > 0")
        if not 0 <= self.outlier_warn_fraction < 1:
            raise ConfigError("outlier_warn_fraction must be in [0, 1)")
        if not 0 <= self.warn_confidence <= 1:
            raise ConfigError("warn_confidence must be in [0, 1]")


@dataclass(frozen=True)
class MotionConfig:
    """Doppler-based gross-motion detection (DESIGN.md §16).

    No analogue in the paper — its subjects sat still.  The reader's
    Doppler column (paper Fig. 3, Eq. 2) is useless for breathing
    (~0.01 Hz signal under ~1.5 Hz noise) but gross body motion
    (walking, turning) moves the tag at walking speed, pushing the
    *bin-averaged* Doppler far outside its noise floor.  The detector
    bins the window's Doppler reports, z-scores each bin mean against a
    MAD-estimated per-report sigma, and flags runs of significant bins.

    All thresholds default so that a clean, still-subject capture never
    flags: the z threshold and the absolute shift floor are both far
    above what averaging pure noise can reach.

    Attributes:
        enabled: run the detector at all (``False`` restores the
            pre-motion-gating pipeline bit-identically).
        bin_s: width of the Doppler averaging bins.
        z_threshold: significance threshold on ``|bin mean| * sqrt(n) /
            sigma`` (sigma MAD-estimated from the window's reports).
        min_shift_hz: absolute floor on a flagged bin's ``|mean|`` —
            guards against a tiny MAD sigma making noise significant.
        min_run_bins: consecutive flagged bins required before the
            window counts as containing motion (single-bin blips are
            interference, not a moving body).
        gate_fraction: gate (suppress confidence toward zero) when at
            least this fraction of the window's bins are flagged.
        gate_recent_s: also gate when any flagged bin overlaps the
            trailing this-many seconds of the window — motion *now*
            invalidates the estimate even if the window average is calm.
    """

    enabled: bool = True
    bin_s: float = 0.5
    z_threshold: float = 4.5
    min_shift_hz: float = 0.75
    min_run_bins: int = 2
    gate_fraction: float = 0.35
    gate_recent_s: float = 5.0

    def __post_init__(self) -> None:
        if self.bin_s <= 0:
            raise ConfigError("bin_s must be > 0")
        if self.z_threshold <= 0:
            raise ConfigError("z_threshold must be > 0")
        if self.min_shift_hz < 0:
            raise ConfigError("min_shift_hz must be >= 0")
        if self.min_run_bins < 1:
            raise ConfigError("min_run_bins must be >= 1")
        if not 0 < self.gate_fraction <= 1:
            raise ConfigError("gate_fraction must be in (0, 1]")
        if self.gate_recent_s < 0:
            raise ConfigError("gate_recent_s must be >= 0")


@dataclass(frozen=True)
class EstimatorConfig:
    """Estimator selection and phase-quality fallback (DESIGN.md §16).

    The paper's pipeline is phase-only; Section IV-D.2 sketches RSSI
    and Doppler "enhancement" without committing to a design.  This
    config picks which :class:`~repro.core.estimators.BreathEstimator`
    produces the rate, and — in ``auto`` mode — when to fall back from
    the phase path to the RSS-amplitude path.

    Phase quality is measured as the median absolute sample-to-sample
    step of the fused displacement track: clean captures sit well under
    a millimetre; when phase noise dominates, the track becomes a
    random walk with centimetre-scale steps and the zero-crossing count
    stops meaning breaths.

    Attributes:
        estimator: ``"zero_crossing"`` (the paper's Eq. 5 path),
            ``"spectral"`` (Fig. 7 FFT-peak), ``"rss"`` (per-channel
            demeaned RSSI amplitude, UbiBreathe-style), or ``"auto"``
            (zero-crossing with RSS fallback under degraded phase).
        roughness_enter_m: in ``auto`` mode, switch to the RSS fallback
            when track roughness exceeds this.
        roughness_exit_m: switch back to zero-crossing only when
            roughness drops below this (must be below the enter
            threshold; the dual threshold is the hysteresis band that
            stops a borderline stream from flapping every tick).
    """

    estimator: str = "auto"
    roughness_enter_m: float = 0.004
    roughness_exit_m: float = 0.002

    #: Every estimator name ``estimator`` accepts.
    CHOICES = ("auto", "zero_crossing", "spectral", "rss")

    def __post_init__(self) -> None:
        if self.estimator not in self.CHOICES:
            raise ConfigError(
                f"estimator must be one of {self.CHOICES}, got {self.estimator!r}")
        if self.roughness_enter_m <= 0:
            raise ConfigError("roughness_enter_m must be > 0")
        if not 0 < self.roughness_exit_m <= self.roughness_enter_m:
            raise ConfigError(
                "roughness_exit_m must be in (0, roughness_enter_m]")


@dataclass(frozen=True)
class ScenarioDefaults:
    """Default experiment settings (right column of Table I)."""

    distance_m: float = 4.0
    orientation_deg: float = 0.0
    num_users: int = 1
    tags_per_user: int = 3
    breathing_rate_bpm: float = 10.0
    posture: str = "sitting"
    line_of_sight: bool = True
    trial_duration_s: float = 120.0

    def __post_init__(self) -> None:
        lo, hi = DISTANCE_RANGE_M
        if not lo <= self.distance_m <= hi:
            raise ConfigError(f"distance_m outside Table I range {lo}-{hi} m")
        lo, hi = ORIENTATION_RANGE_DEG
        if not lo <= self.orientation_deg <= hi:
            raise ConfigError(f"orientation_deg outside {lo}-{hi} deg")
        lo, hi = USERS_RANGE
        if not lo <= self.num_users <= hi:
            raise ConfigError(f"num_users outside Table I range {lo}-{hi}")
        lo, hi = TAGS_PER_USER_RANGE
        if not lo <= self.tags_per_user <= hi:
            raise ConfigError(f"tags_per_user outside Table I range {lo}-{hi}")
        lo, hi = BREATHING_RATE_RANGE_BPM
        if not lo <= self.breathing_rate_bpm <= hi:
            raise ConfigError(f"breathing_rate_bpm outside Table I range {lo}-{hi}")
        if self.posture not in POSTURES:
            raise ConfigError(f"posture must be one of {POSTURES}, got {self.posture!r}")
        if self.trial_duration_s <= 0:
            raise ConfigError("trial_duration_s must be > 0")


@dataclass(frozen=True)
class NoiseConfig:
    """Calibration knobs for the synthetic RF substrate.

    These have no analogue in the paper (the paper's noise came from the
    physical world); they are tuned so the reproduced figures match the
    paper's *shapes* — see DESIGN.md Section 2.

    Attributes:
        phase_noise_floor_rad: phase-noise sigma at very high SNR.
        phase_noise_ref_rad: phase-noise sigma at the reference SNR.
        reference_snr_db: SNR at which ``phase_noise_ref_rad`` applies.
        rssi_noise_db: sigma of Gaussian RSSI jitter before quantisation.
        doppler_noise_hz: sigma of the raw Doppler-shift report (paper
            Fig. 3 shows it is very noisy).
        body_sway_amplitude_m: amplitude of non-breathing body sway.
        breathing_rate_jitter: relative sigma of a human's cycle-to-cycle
            deviation from the metronome rate.
    """

    phase_noise_floor_rad: float = 0.015
    phase_noise_ref_rad: float = 0.1
    reference_snr_db: float = 20.0
    rssi_noise_db: float = 0.4
    doppler_noise_hz: float = 1.5
    body_sway_amplitude_m: float = 0.0006
    breathing_rate_jitter: float = 0.03

    def __post_init__(self) -> None:
        for name in (
            "phase_noise_floor_rad",
            "phase_noise_ref_rad",
            "rssi_noise_db",
            "doppler_noise_hz",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.body_sway_amplitude_m < 0:
            raise ConfigError("body_sway_amplitude_m must be >= 0")
        if not 0 <= self.breathing_rate_jitter < 1:
            raise ConfigError("breathing_rate_jitter must be in [0, 1)")


@dataclass(frozen=True)
class SystemConfig:
    """Bundle of all configuration for an end-to-end run."""

    reader: ReaderConfig = field(default_factory=ReaderConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    defaults: ScenarioDefaults = field(default_factory=ScenarioDefaults)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    robustness: RobustnessConfig = field(default_factory=RobustnessConfig)
    motion: MotionConfig = field(default_factory=MotionConfig)
    estimators: EstimatorConfig = field(default_factory=EstimatorConfig)


def default_config() -> SystemConfig:
    """The paper's default configuration (Table I right column)."""
    return SystemConfig()
