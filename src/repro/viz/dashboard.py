"""A multi-user terminal dashboard — the Fig. 11 UI, text edition.

The paper's prototype shows each user's extracted breathing signal and
live rate on a laptop screen.  This renderer produces the equivalent as
a monospace panel per user: name, current rate with trend arrow, a
sparkline of the recent breathing signal, and status flags.

:func:`render_obs_summary` adds the operator view of the observability
layer (DESIGN.md §10): trace-event counts by name and the headline
metrics a deployment dashboard would chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..streams.timeseries import TimeSeries
from .ascii import sparkline


@dataclass(frozen=True)
class UserPanel:
    """One user's dashboard state.

    Attributes:
        label: display name.
        rate_bpm: current smoothed rate (None = no estimate yet).
        trend_bpm_per_min: rate trend (None = unknown).
        signal: recent breathing-signal window for the sparkline.
        status: short status string ("ok", "no reads", "apnea?", ...).
    """

    label: str
    rate_bpm: Optional[float]
    trend_bpm_per_min: Optional[float] = None
    signal: Optional[TimeSeries] = None
    status: str = "ok"


def _trend_arrow(trend: Optional[float]) -> str:
    if trend is None:
        return " "
    if trend > 0.5:
        return "^"
    if trend < -0.5:
        return "v"
    return "-"


def render_dashboard(panels: Sequence[UserPanel], width: int = 76,
                     title: str = "TagBreathe monitor") -> str:
    """Render the full dashboard as a single string.

    Args:
        panels: one per monitored user, display order preserved.
        width: total panel width in characters.
        title: header line.
    """
    bar = "=" * width
    lines: List[str] = [bar, title.center(width), bar]
    if not panels:
        lines.append("(no users under monitoring)".center(width))
        lines.append(bar)
        return "\n".join(lines)
    for panel in panels:
        rate_part = (
            f"{panel.rate_bpm:5.1f} bpm {_trend_arrow(panel.trend_bpm_per_min)}"
            if panel.rate_bpm is not None else "  --.- bpm  "
        )
        head = f" {panel.label:<16} {rate_part}   [{panel.status}]"
        lines.append(head[:width])
        if panel.signal is not None and len(panel.signal) > 1:
            trace = sparkline(panel.signal.values, width=width - 4)
            lines.append("  " + trace)
        else:
            lines.append("  " + "." * (width - 4))
        lines.append("-" * width)
    return "\n".join(lines)


def render_obs_summary(events: Sequence[dict], metrics: dict,
                       width: int = 76,
                       title: str = "observability summary") -> str:
    """Render one telemetry session as a compact operator panel.

    Args:
        events: trace events (``Tracer.events`` or a parsed JSONL file).
        metrics: a ``MetricsRegistry.snapshot()`` dict.
        width: total panel width in characters.
        title: header line.
    """
    bar = "=" * width
    lines: List[str] = [bar, title.center(width), bar]

    span_counts: Dict[str, int] = {}
    point_counts: Dict[str, int] = {}
    for event in events:
        if event.get("event") == "span_start":
            span_counts[event["name"]] = span_counts.get(event["name"], 0) + 1
        elif event.get("event") == "point":
            point_counts[event["name"]] = point_counts.get(event["name"], 0) + 1
    lines.append(f" trace: {len(events)} events")
    for name, count in sorted(span_counts.items()):
        lines.append(f"   span  {name:<38} x{count}")
    for name, count in sorted(point_counts.items()):
        lines.append(f"   point {name:<38} x{count}")

    counters = metrics.get("counters", [])
    gauges = metrics.get("gauges", [])
    histograms = metrics.get("histograms", [])
    lines.append(f" metrics: {len(counters)} counters, {len(gauges)} gauges, "
                 f"{len(histograms)} histograms")
    for row in counters:
        labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
        label_part = f"{{{labels}}}" if labels else ""
        name = f"{row['name']}{label_part}"
        lines.append(f"   {name:<56} {row['value']:.10g}"[:width])
    for row in gauges:
        labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
        label_part = f"{{{labels}}}" if labels else ""
        name = f"{row['name']}{label_part}"
        lines.append(f"   {name:<56} {row['value']:.10g}"[:width])
    for row in histograms:
        labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
        label_part = f"{{{labels}}}" if labels else ""
        name = f"{row['name']}{label_part}"
        mean = row["sum"] / row["count"] if row["count"] else 0.0
        lines.append(f"   {name:<46} n={row['count']} "
                     f"mean={mean:.4g}"[:width])
    lines.append(bar)
    return "\n".join(lines)
