"""A multi-user terminal dashboard — the Fig. 11 UI, text edition.

The paper's prototype shows each user's extracted breathing signal and
live rate on a laptop screen.  This renderer produces the equivalent as
a monospace panel per user: name, current rate with trend arrow, a
sparkline of the recent breathing signal, and status flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..streams.timeseries import TimeSeries
from .ascii import sparkline


@dataclass(frozen=True)
class UserPanel:
    """One user's dashboard state.

    Attributes:
        label: display name.
        rate_bpm: current smoothed rate (None = no estimate yet).
        trend_bpm_per_min: rate trend (None = unknown).
        signal: recent breathing-signal window for the sparkline.
        status: short status string ("ok", "no reads", "apnea?", ...).
    """

    label: str
    rate_bpm: Optional[float]
    trend_bpm_per_min: Optional[float] = None
    signal: Optional[TimeSeries] = None
    status: str = "ok"


def _trend_arrow(trend: Optional[float]) -> str:
    if trend is None:
        return " "
    if trend > 0.5:
        return "^"
    if trend < -0.5:
        return "v"
    return "-"


def render_dashboard(panels: Sequence[UserPanel], width: int = 76,
                     title: str = "TagBreathe monitor") -> str:
    """Render the full dashboard as a single string.

    Args:
        panels: one per monitored user, display order preserved.
        width: total panel width in characters.
        title: header line.
    """
    bar = "=" * width
    lines: List[str] = [bar, title.center(width), bar]
    if not panels:
        lines.append("(no users under monitoring)".center(width))
        lines.append(bar)
        return "\n".join(lines)
    for panel in panels:
        rate_part = (
            f"{panel.rate_bpm:5.1f} bpm {_trend_arrow(panel.trend_bpm_per_min)}"
            if panel.rate_bpm is not None else "  --.- bpm  "
        )
        head = f" {panel.label:<16} {rate_part}   [{panel.status}]"
        lines.append(head[:width])
        if panel.signal is not None and len(panel.signal) > 1:
            trace = sparkline(panel.signal.values, width=width - 4)
            lines.append("  " + trace)
        else:
            lines.append("  " + "." * (width - 4))
        lines.append("-" * width)
    return "\n".join(lines)
