"""ASCII plotting: sparklines, series plots, tables for the examples.

The paper's prototype showed extracted breathing signals on a laptop UI
(Fig. 11); the examples here render the same traces in a terminal.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..streams.timeseries import TimeSeries

_SPARK_CHARS = " .:-=+*#%@"
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line unicode sparkline of a value sequence.

    Args:
        values: the samples to render.
        width: downsample to this many characters (None = one per sample).
    """
    v = np.asarray(list(values), dtype=float)
    if v.size == 0:
        return ""
    if width is not None and width > 0 and v.size > width:
        edges = np.linspace(0, v.size, width + 1).astype(int)
        v = np.array([v[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    lo, hi = float(v.min()), float(v.max())
    if hi == lo:
        return _BLOCKS[0] * v.size
    scaled = (v - lo) / (hi - lo) * (len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(s))] for s in scaled)


def render_series(series: TimeSeries, height: int = 12, width: int = 72,
                  title: str = "") -> str:
    """A multi-line ASCII plot of a time series.

    Args:
        series: the series to plot.
        height: plot rows.
        width: plot columns.
        title: optional header line.

    Returns:
        The rendered plot (empty string for an empty series).
    """
    if not series or height < 2 or width < 2:
        return ""
    t = series.times
    v = series.values
    cols = np.clip(((t - t[0]) / max(t[-1] - t[0], 1e-12) * (width - 1)).astype(int),
                   0, width - 1)
    lo, hi = float(v.min()), float(v.max())
    span = hi - lo if hi > lo else 1.0
    rows = np.clip(((v - lo) / span * (height - 1)).astype(int), 0, height - 1)
    grid = [[" "] * width for _ in range(height)]
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{hi:+.3g}".rjust(10))
    lines.extend("".join(row) for row in grid)
    lines.append(f"{lo:+.3g}".rjust(10))
    lines.append(f"t: {t[0]:.1f}s .. {t[-1]:.1f}s   ({len(series)} samples)")
    return "\n".join(lines)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A plain monospace table.

    Args:
        headers: column titles.
        rows: row cell values (stringified).
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row[: len(widths)]):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_bar_chart(labels: Sequence[str], values: Sequence[float],
                     width: int = 50, unit: str = "") -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if not labels or len(labels) != len(values):
        return ""
    vmax = max(max(values), 1e-12)
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(value / vmax * width)))
        lines.append(f"{str(label).rjust(label_w)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)
