"""Terminal visualisation helpers used by the runnable examples."""

from .ascii import sparkline, render_series, render_table, render_bar_chart
from .dashboard import UserPanel, render_dashboard, render_obs_summary

__all__ = [
    "sparkline",
    "render_series",
    "render_table",
    "render_bar_chart",
    "UserPanel",
    "render_dashboard",
    "render_obs_summary",
]
