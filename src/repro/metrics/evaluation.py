"""Repeat-trial experiment runner — the paper's evaluation protocol.

    "Each experiment lasts for two minutes. We continuously measure the
    breathing signals and compute the average breathing rates using
    TagBreathe. We repeat the experiments for 100 times."  (Section VI-B-1)

The runner builds a scenario per trial (varying breathing rate and seed),
simulates the capture, runs the pipeline, and aggregates Eq. (8) accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..config import PipelineConfig
from ..core.pipeline import TagBreathe
from ..errors import ReproError
from ..sim.engine import SimulationResult, run_scenario
from ..sim.scenario import Scenario
from .accuracy import AccuracyStats, summarize_accuracies

#: Builds the scenario for one trial: (trial_index, breathing_rate_bpm) ->
#: Scenario.  The runner draws the rate from the configured range.
ScenarioFactory = Callable[[int, float], Scenario]


@dataclass
class TrialOutcome:
    """One trial's result for one user."""

    trial: int
    user_id: int
    true_rate_bpm: float
    measured_rate_bpm: Optional[float]
    failure_reason: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        """True when the pipeline produced an estimate."""
        return self.measured_rate_bpm is not None


@dataclass
class ExperimentRunner:
    """Run repeated trials of a parameterised scenario and aggregate accuracy.

    Attributes:
        scenario_factory: builds the per-trial scenario.
        trials: repetitions (the paper uses 100; benchmarks use fewer).
        trial_duration_s: capture length per trial (paper: 120 s).
        rate_range_bpm: breathing rates drawn uniformly per trial
            (paper: 5–20 bpm).
        seed: master seed; trial ``k`` uses ``seed + k`` everywhere.
        pipeline_config: signal-processing parameters.
        pipeline_factory: optional override constructing the pipeline per
            trial (for ablations that swap filters or disable fusion).
        run_kwargs: extra arguments forwarded to ``run_scenario`` (antennas,
            link budget overrides, ...).
    """

    scenario_factory: ScenarioFactory
    trials: int = 10
    trial_duration_s: float = 60.0
    rate_range_bpm: tuple = (5.0, 20.0)
    seed: int = 0
    pipeline_config: Optional[PipelineConfig] = None
    pipeline_factory: Optional[Callable[[], TagBreathe]] = None
    run_kwargs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ReproError("trials must be >= 1")
        if self.trial_duration_s <= 0:
            raise ReproError("trial_duration_s must be > 0")
        lo, hi = self.rate_range_bpm
        if not 0 < lo <= hi:
            raise ReproError(f"invalid rate range {self.rate_range_bpm}")

    # ------------------------------------------------------------------
    def run(self) -> List[TrialOutcome]:
        """Run every trial; one outcome per (trial, monitored user)."""
        outcomes: List[TrialOutcome] = []
        rng = np.random.default_rng(self.seed)
        for trial in range(self.trials):
            rate = float(rng.uniform(*self.rate_range_bpm))
            scenario = self.scenario_factory(trial, rate)
            result = run_scenario(
                scenario, duration_s=self.trial_duration_s,
                seed=self.seed + trial, **self.run_kwargs,
            )
            outcomes.extend(self._evaluate(trial, result))
        return outcomes

    def _evaluate(self, trial: int, result: SimulationResult) -> List[TrialOutcome]:
        pipeline = self._build_pipeline(result.scenario)
        estimates, failures = pipeline.process_detailed(result.reports)
        outcomes: List[TrialOutcome] = []
        for user_id in result.scenario.monitored_user_ids:
            truth = result.ground_truth.rate_bpm(user_id, 0.0, result.duration_s)
            estimate = estimates.get(user_id)
            if estimate is not None:
                outcomes.append(TrialOutcome(trial, user_id, truth, estimate.rate_bpm))
            else:
                outcomes.append(
                    TrialOutcome(trial, user_id, truth, None,
                                 failure_reason=failures.get(user_id, "unknown"))
                )
        return outcomes

    def _build_pipeline(self, scenario: Scenario) -> TagBreathe:
        if self.pipeline_factory is not None:
            return self.pipeline_factory()
        return TagBreathe(
            config=self.pipeline_config,
            user_ids=set(scenario.monitored_user_ids),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def aggregate(outcomes: Sequence[TrialOutcome]) -> AccuracyStats:
        """Eq. (8) statistics over all successful outcomes.

        Raises:
            ReproError: when every trial failed.
        """
        succeeded = [o for o in outcomes if o.succeeded]
        failures = len(outcomes) - len(succeeded)
        if not succeeded:
            raise ReproError("every trial failed; nothing to aggregate")
        return summarize_accuracies(
            [o.measured_rate_bpm for o in succeeded],
            [o.true_rate_bpm for o in succeeded],
            failures=failures,
        )
