"""Evaluation metrics and the repeat-trial experiment runner."""

from .accuracy import breathing_rate_accuracy, bpm_error, AccuracyStats, summarize_accuracies
from .evaluation import TrialOutcome, ExperimentRunner
from .respiratory import (
    Apnea,
    BreathCycle,
    RespiratoryReport,
    analyze_breathing,
    detect_apneas,
    detect_breath_cycles,
)

__all__ = [
    "breathing_rate_accuracy",
    "bpm_error",
    "AccuracyStats",
    "summarize_accuracies",
    "TrialOutcome",
    "ExperimentRunner",
    "Apnea",
    "BreathCycle",
    "RespiratoryReport",
    "analyze_breathing",
    "detect_apneas",
    "detect_breath_cycles",
]
