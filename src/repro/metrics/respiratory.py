"""Respiratory-health analytics on top of the extracted breathing signal.

The paper's introduction motivates breath monitoring with healthcare
observations — "a deep breath reduces blood pressure and stress, while
shallow breath and unconscious hold of breath indicate chronic stress";
"people may have irregular breathing patterns alternating between fast
and slow with occasional pauses".  This module turns the pipeline's
extracted signal into those clinically meaningful quantities:

* breath-by-breath intervals and rate variability,
* apnea (breathing-pause) detection,
* inhale/exhale timing ratio,
* relative depth (shallow-breathing) tracking.

These are the "innovative healthcare applications" layer the paper
gestures at — implemented as pure signal analysis so it works on any
:class:`~repro.core.extraction.BreathingEstimate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.extraction import BreathingEstimate
from ..errors import InsufficientDataError, ReproError
from ..streams.timeseries import TimeSeries


@dataclass(frozen=True)
class BreathCycle:
    """One detected breath: rising crossing -> falling -> next rising.

    Attributes:
        start_s: inhalation onset (upward zero crossing).
        peak_s: full-inhalation instant (signal maximum in the cycle).
        end_s: cycle end (next upward crossing).
        depth: peak signal amplitude within the cycle (arbitrary units,
            comparable within one session).
    """

    start_s: float
    peak_s: float
    end_s: float
    depth: float

    @property
    def duration_s(self) -> float:
        """Full breath duration."""
        return self.end_s - self.start_s

    @property
    def inhale_s(self) -> float:
        """Inhalation time (onset to peak)."""
        return self.peak_s - self.start_s

    @property
    def exhale_s(self) -> float:
        """Exhalation time (peak to next onset)."""
        return self.end_s - self.peak_s

    @property
    def ie_ratio(self) -> float:
        """Inhale:exhale time ratio (healthy resting adults ~0.5-0.7)."""
        if self.exhale_s <= 0:
            return float("inf")
        return self.inhale_s / self.exhale_s


@dataclass(frozen=True)
class Apnea:
    """A detected breathing pause.

    Attributes:
        start_s / end_s: pause boundaries.
    """

    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Pause length."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class RespiratoryReport:
    """Session-level respiratory analytics.

    Attributes:
        cycles: detected breaths in time order.
        mean_rate_bpm: average breathing rate over the detected cycles.
        rate_variability_bpm: std of breath-by-breath instantaneous rates
            (a breathing-regularity index).
        mean_ie_ratio: average inhale:exhale ratio.
        shallow_fraction: fraction of breaths with depth below half the
            session median depth.
        apneas: detected pauses.
    """

    cycles: Tuple[BreathCycle, ...]
    mean_rate_bpm: float
    rate_variability_bpm: float
    mean_ie_ratio: float
    shallow_fraction: float
    apneas: Tuple[Apnea, ...]

    def __str__(self) -> str:
        return (
            f"{len(self.cycles)} breaths at {self.mean_rate_bpm:.1f} bpm "
            f"(+/- {self.rate_variability_bpm:.1f}), I:E {self.mean_ie_ratio:.2f}, "
            f"{self.shallow_fraction * 100:.0f}% shallow, "
            f"{len(self.apneas)} apnea(s)"
        )


def detect_breath_cycles(signal: TimeSeries,
                         crossings: Sequence[float]) -> List[BreathCycle]:
    """Segment the filtered breathing signal into individual breaths.

    A cycle runs between consecutive *upward* zero crossings; the peak in
    between marks full inhalation.

    Args:
        signal: the extracted (band-limited, zero-mean) breathing signal.
        crossings: zero-crossing timestamps from the extraction stage.

    Returns:
        Detected cycles (possibly empty).

    Raises:
        ReproError: if the signal is empty but crossings are supplied.
    """
    if not signal and crossings:
        raise ReproError("cannot segment cycles of an empty signal")
    upward: List[float] = []
    for t_cross in crossings:
        idx = int(np.searchsorted(signal.times, t_cross))
        after = min(idx, len(signal) - 1)
        if signal.values[after] >= 0:
            upward.append(t_cross)
    cycles: List[BreathCycle] = []
    for start, end in zip(upward, upward[1:]):
        window = signal.slice_time(start, end)
        if len(window) < 3:
            continue
        peak_idx = int(np.argmax(window.values))
        depth = float(window.values[peak_idx])
        if depth <= 0:
            continue
        cycles.append(BreathCycle(
            start_s=start,
            peak_s=float(window.times[peak_idx]),
            end_s=end,
            depth=depth,
        ))
    return cycles


def detect_apneas(cycles: Sequence[BreathCycle],
                  signal: TimeSeries,
                  min_pause_s: float = 6.0,
                  depth_fraction: float = 0.35,
                  envelope_window_s: float = 2.0) -> List[Apnea]:
    """Breathing pauses: spans whose signal *envelope* stays flat.

    Neither cycle gaps nor the signal level can define a pause: a hold
    between breaths merges with its neighbours into one long pseudo-cycle,
    and a hold at a different lung volume puts a slow step transient
    through the band-pass filter.  What IS reliably flat during a hold is
    the respiratory *flow* — the signal's time derivative — so the
    detector tracks the sliding-max envelope of |d(signal)/dt| and reports
    every run of at least ``min_pause_s`` where it stays below
    ``depth_fraction`` of the median per-breath peak flow.

    Args:
        cycles: detected breaths (for the flow threshold).
        signal: the extracted breathing signal (regular grid).
        min_pause_s: minimum pause duration to report.
        depth_fraction: envelope threshold relative to median peak flow.
        envelope_window_s: sliding-max window; must exceed the inter-peak
            dip of normal breathing but stay below ``min_pause_s``.

    Raises:
        ReproError: on non-positive thresholds or an out-of-range
            depth fraction.
    """
    if min_pause_s <= 0:
        raise ReproError("min_pause_s must be > 0")
    if not 0.0 <= depth_fraction < 1.0:
        raise ReproError("depth_fraction must be in [0, 1)")
    if envelope_window_s <= 0:
        raise ReproError("envelope_window_s must be > 0")
    if not signal or len(signal) < 4 or not cycles:
        return []

    dt = float(np.median(np.diff(signal.times)))
    flow = np.gradient(signal.values, signal.times)
    # Per-breath peak flow sets the scale for "breathing is happening".
    peak_flows = []
    for cycle in cycles:
        mask = (signal.times >= cycle.start_s) & (signal.times <= cycle.end_s)
        if mask.any():
            peak_flows.append(float(np.abs(flow[mask]).max()))
    if not peak_flows:
        return []
    threshold = depth_fraction * float(np.median(peak_flows))
    if threshold <= 0:
        return []

    half = max(1, int(round(envelope_window_s / 2.0 / dt)))
    magnitude = np.abs(flow)
    # Sliding max via a strided window walk (no scipy dependency here).
    envelope = np.empty_like(magnitude)
    for i in range(len(magnitude)):
        lo = max(0, i - half)
        hi = min(len(magnitude), i + half + 1)
        envelope[i] = magnitude[lo:hi].max()

    below = envelope < threshold
    apneas: List[Apnea] = []
    run_start: Optional[int] = None
    for i, flat in enumerate(np.append(below, False)):
        if flat and run_start is None:
            run_start = i
        elif not flat and run_start is not None:
            t0 = float(signal.times[run_start])
            t1 = float(signal.times[min(i, len(signal) - 1)])
            if t1 - t0 >= min_pause_s:
                apneas.append(Apnea(start_s=t0, end_s=t1))
            run_start = None
    return apneas


def analyze_breathing(estimate: BreathingEstimate,
                      min_pause_s: float = 6.0) -> RespiratoryReport:
    """Full respiratory analytics for one extraction result.

    Args:
        estimate: output of :class:`repro.core.extraction.BreathExtractor`
            (or a pipeline ``UserEstimate.estimate``).
        min_pause_s: apnea threshold.

    Raises:
        InsufficientDataError: when fewer than two full breaths were
            detected (no meaningful statistics).
    """
    cycles = detect_breath_cycles(estimate.signal, estimate.crossings)
    if len(cycles) < 2:
        raise InsufficientDataError(
            f"only {len(cycles)} full breaths detected; need >= 2"
        )
    durations = np.array([c.duration_s for c in cycles])
    rates = 60.0 / durations
    depths = np.array([c.depth for c in cycles])
    median_depth = float(np.median(depths))
    shallow = float(np.mean(depths < 0.5 * median_depth))
    ie_ratios = np.array([c.ie_ratio for c in cycles if np.isfinite(c.ie_ratio)])
    apneas = detect_apneas(cycles, estimate.signal, min_pause_s=min_pause_s)
    return RespiratoryReport(
        cycles=tuple(cycles),
        mean_rate_bpm=float(rates.mean()),
        rate_variability_bpm=float(rates.std()),
        mean_ie_ratio=float(ie_ratios.mean()) if len(ie_ratios) else float("nan"),
        shallow_fraction=shallow,
        apneas=tuple(apneas),
    )
