"""The paper's accuracy metric (Eq. 8) and aggregate statistics.

    Accuracy = 1 - |R_hat - R| / R                       (Eq. 8)

where ``R_hat`` is the measured and ``R`` the actual breathing rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ReproError


def breathing_rate_accuracy(measured_bpm: float, actual_bpm: float) -> float:
    """Eq. (8): relative accuracy of one breathing-rate measurement.

    Clamped below at 0 (a wildly wrong estimate is "0 % accurate", not
    negatively accurate) — the paper plots accuracies in [0, 1].

    Raises:
        ReproError: on a non-positive actual rate.
    """
    if actual_bpm <= 0:
        raise ReproError(f"actual rate must be > 0 bpm, got {actual_bpm}")
    return max(0.0, 1.0 - abs(measured_bpm - actual_bpm) / actual_bpm)


def bpm_error(measured_bpm: float, actual_bpm: float) -> float:
    """Absolute error in breaths per minute.

    The paper's headline: "less than 1 breath per minute error on average".
    """
    return abs(measured_bpm - actual_bpm)


@dataclass(frozen=True)
class AccuracyStats:
    """Aggregate accuracy over repeated trials.

    Attributes:
        mean: mean Eq. (8) accuracy.
        std: standard deviation of per-trial accuracies.
        minimum / maximum: range of per-trial accuracies.
        mean_bpm_error: mean absolute bpm error.
        trials: number of trials aggregated.
        failures: trials that produced no estimate at all (blocked LOS
            etc.); excluded from the accuracy moments but reported.
    """

    mean: float
    std: float
    minimum: float
    maximum: float
    mean_bpm_error: float
    trials: int
    failures: int = 0

    def __str__(self) -> str:
        return (
            f"accuracy {self.mean * 100:.1f}% +/- {self.std * 100:.1f}% "
            f"(range {self.minimum * 100:.1f}-{self.maximum * 100:.1f}%), "
            f"|err| {self.mean_bpm_error:.2f} bpm over {self.trials} trials"
            + (f", {self.failures} failed" if self.failures else "")
        )


def summarize_accuracies(measured_bpm: Sequence[float],
                         actual_bpm: Sequence[float],
                         failures: int = 0) -> AccuracyStats:
    """Aggregate per-trial (measured, actual) pairs into Eq. (8) statistics.

    Raises:
        ReproError: on mismatched lengths or no successful trials.
    """
    if len(measured_bpm) != len(actual_bpm):
        raise ReproError(
            f"{len(measured_bpm)} measurements vs {len(actual_bpm)} truths"
        )
    if not measured_bpm:
        raise ReproError("no successful trials to summarise")
    accuracies = np.array([
        breathing_rate_accuracy(m, a) for m, a in zip(measured_bpm, actual_bpm)
    ])
    errors = np.array([bpm_error(m, a) for m, a in zip(measured_bpm, actual_bpm)])
    return AccuracyStats(
        mean=float(accuracies.mean()),
        std=float(accuracies.std()),
        minimum=float(accuracies.min()),
        maximum=float(accuracies.max()),
        mean_bpm_error=float(errors.mean()),
        trials=len(measured_bpm),
        failures=failures,
    )
