"""Physical constants and unit-conversion helpers.

The whole library works in SI units internally: metres, seconds, hertz,
radians, watts.  Anything user-facing that the paper quotes in other units
(dBm, breaths-per-minute, degrees) converts at the boundary through the
helpers in this module.

The helpers broadcast: passing a NumPy array returns an array of the same
shape, while scalar inputs keep returning plain ``float`` through the
exact arithmetic the scalar code has always used (so seeded simulations
are unaffected by the array fast path).
"""

from __future__ import annotations

import math

import numpy as np

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Two pi, used constantly in phase arithmetic.
TWO_PI = 2.0 * math.pi

#: Breaths-per-minute per hertz.
BPM_PER_HZ = 60.0


def db_to_linear(db):
    """Convert a power ratio in decibels to a linear ratio (broadcasts)."""
    if np.ndim(db) == 0:
        return 10.0 ** (db / 10.0)
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0)


def linear_to_db(ratio):
    """Convert a linear power ratio to decibels (broadcasts).

    Raises:
        ValueError: if any ``ratio`` is not strictly positive.
    """
    if np.ndim(ratio) == 0:
        if ratio <= 0.0:
            raise ValueError(f"power ratio must be > 0, got {ratio!r}")
        return 10.0 * math.log10(ratio)
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("power ratio must be > 0")
    return 10.0 * np.log10(arr)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 1e-3 * db_to_linear(dbm)


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises:
        ValueError: if ``watts`` is not strictly positive.
    """
    if watts <= 0.0:
        raise ValueError(f"power must be > 0 W, got {watts!r}")
    return linear_to_db(watts / 1e-3)


def hz_to_bpm(hz: float) -> float:
    """Convert a frequency in Hz to breaths per minute."""
    return hz * BPM_PER_HZ

def bpm_to_hz(bpm: float) -> float:
    """Convert breaths per minute to Hz."""
    return bpm / BPM_PER_HZ


def deg_to_rad(degrees: float) -> float:
    """Convert degrees to radians."""
    return math.radians(degrees)


def rad_to_deg(radians: float) -> float:
    """Convert radians to degrees."""
    return math.degrees(radians)


def wavelength(frequency_hz):
    """Free-space wavelength [m] of a carrier at ``frequency_hz`` (broadcasts).

    Raises:
        ValueError: if any frequency is not strictly positive.
    """
    if np.ndim(frequency_hz) == 0:
        if frequency_hz <= 0.0:
            raise ValueError(f"frequency must be > 0 Hz, got {frequency_hz!r}")
        return SPEED_OF_LIGHT / frequency_hz
    arr = np.asarray(frequency_hz, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("frequency must be > 0 Hz")
    return SPEED_OF_LIGHT / arr


def wrap_phase(theta):
    """Wrap a phase angle into ``[0, 2*pi)`` as a commodity reader reports it.

    Broadcasts over arrays; scalar inputs return plain ``float``.
    """
    if np.ndim(theta) == 0:
        wrapped = theta % TWO_PI
        # Float rounding of the modulo can land exactly on 2*pi for inputs a
        # hair below zero; keep the contract half-open.
        return 0.0 if wrapped >= TWO_PI else wrapped
    wrapped = np.asarray(theta, dtype=float) % TWO_PI
    return np.where(wrapped >= TWO_PI, 0.0, wrapped)


def wrap_phase_delta(delta):
    """Wrap a phase *difference* into ``[-pi, pi)`` (broadcasts).

    Used when differencing two consecutive phase readings (paper Eq. 3):
    the physical displacement between consecutive reads is far below half a
    wavelength, so the true phase change lies within one half-turn.
    """
    if np.ndim(delta) == 0:
        return (delta + math.pi) % TWO_PI - math.pi
    return (np.asarray(delta, dtype=float) + math.pi) % TWO_PI - math.pi
