"""Physical constants and unit-conversion helpers.

The whole library works in SI units internally: metres, seconds, hertz,
radians, watts.  Anything user-facing that the paper quotes in other units
(dBm, breaths-per-minute, degrees) converts at the boundary through the
helpers in this module.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Two pi, used constantly in phase arithmetic.
TWO_PI = 2.0 * math.pi

#: Breaths-per-minute per hertz.
BPM_PER_HZ = 60.0


def db_to_linear(db: float) -> float:
    """Convert a power ratio in decibels to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be > 0, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 1e-3 * db_to_linear(dbm)


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises:
        ValueError: if ``watts`` is not strictly positive.
    """
    if watts <= 0.0:
        raise ValueError(f"power must be > 0 W, got {watts!r}")
    return linear_to_db(watts / 1e-3)


def hz_to_bpm(hz: float) -> float:
    """Convert a frequency in Hz to breaths per minute."""
    return hz * BPM_PER_HZ

def bpm_to_hz(bpm: float) -> float:
    """Convert breaths per minute to Hz."""
    return bpm / BPM_PER_HZ


def deg_to_rad(degrees: float) -> float:
    """Convert degrees to radians."""
    return math.radians(degrees)


def rad_to_deg(radians: float) -> float:
    """Convert radians to degrees."""
    return math.degrees(radians)


def wavelength(frequency_hz: float) -> float:
    """Free-space wavelength [m] of a carrier at ``frequency_hz``.

    Raises:
        ValueError: if the frequency is not strictly positive.
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be > 0 Hz, got {frequency_hz!r}")
    return SPEED_OF_LIGHT / frequency_hz


def wrap_phase(theta: float) -> float:
    """Wrap a phase angle into ``[0, 2*pi)`` as a commodity reader reports it."""
    wrapped = theta % TWO_PI
    # Float rounding of the modulo can land exactly on 2*pi for inputs a
    # hair below zero; keep the contract half-open.
    return 0.0 if wrapped >= TWO_PI else wrapped


def wrap_phase_delta(delta: float) -> float:
    """Wrap a phase *difference* into ``[-pi, pi)``.

    Used when differencing two consecutive phase readings (paper Eq. 3):
    the physical displacement between consecutive reads is far below half a
    wavelength, so the true phase change lies within one half-turn.
    """
    return (delta + math.pi) % TWO_PI - math.pi
