"""Analytic read-rate model for framed slotted ALOHA.

Closed-form expectations matching :class:`repro.epc.gen2.Gen2Inventory` at
its steady state.  Used by fast benchmarks (Fig. 14's x-axis spans 30
contending-tag populations) and by tests as an independent oracle for the
event-driven simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .gen2 import Gen2Config


@dataclass(frozen=True)
class ExpectedRoundStats:
    """Expected per-round slot counts and duration for a given (n, Q)."""

    n_tags: int
    q: int
    slots: int
    expected_singles: float
    expected_empties: float
    expected_collisions: float
    expected_duration_s: float

    @property
    def reads_per_second(self) -> float:
        """Expected aggregate successful-read throughput [reads/s]."""
        if self.expected_duration_s <= 0:
            return 0.0
        return self.expected_singles / self.expected_duration_s


def expected_round_stats(n_tags: int, q: int,
                         config: Gen2Config = None) -> ExpectedRoundStats:
    """Expected slot outcomes for ``n_tags`` tags in a frame of ``2**q`` slots.

    With each of ``n`` tags choosing uniformly among ``L = 2**q`` slots:

    * E[singles]    = n * (1 - 1/L) ** (n - 1)
    * E[empties]    = L * (1 - 1/L) ** n
    * E[collisions] = L - E[empties] - E[singles]... corrected: collision
      slots = occupied slots - singleton slots.

    Raises:
        ConfigError: on non-positive tag count or negative q.
    """
    if n_tags <= 0:
        raise ConfigError("n_tags must be > 0")
    if q < 0:
        raise ConfigError("q must be >= 0")
    cfg = config if config is not None else Gen2Config()
    slots = 1 << q
    if slots == 1:
        singles = 1.0 if n_tags == 1 else 0.0
        empties = 0.0
        collisions = 0.0 if n_tags == 1 else 1.0
    else:
        p_other = 1.0 - 1.0 / slots
        singles = n_tags * p_other ** (n_tags - 1)
        empties = slots * p_other ** n_tags
        occupied = slots - empties
        collisions = max(0.0, occupied - singles)
    duration = (
        cfg.t_round_overhead_s
        + singles * cfg.t_success_s
        + empties * cfg.t_empty_s
        + collisions * cfg.t_collision_s
    )
    return ExpectedRoundStats(
        n_tags=n_tags,
        q=q,
        slots=slots,
        expected_singles=singles,
        expected_empties=empties,
        expected_collisions=collisions,
        expected_duration_s=duration,
    )


def optimal_q(n_tags: int, q_max: int = 15) -> int:
    """The Q maximising expected read throughput for ``n_tags`` tags.

    The classic ALOHA optimum is a frame size near the tag count; we pick
    the throughput-maximising integer Q directly.

    Raises:
        ConfigError: on non-positive tag count.
    """
    if n_tags <= 0:
        raise ConfigError("n_tags must be > 0")
    best_q, best_rate = 0, -1.0
    for q in range(0, q_max + 1):
        rate = expected_round_stats(n_tags, q).reads_per_second
        if rate > best_rate:
            best_q, best_rate = q, rate
    return best_q


def expected_aggregate_read_rate(n_tags: int, config: Gen2Config = None,
                                 link_success: float = 1.0) -> float:
    """Expected aggregate reads/s across all tags at the optimal Q.

    Args:
        n_tags: tag population in the field.
        config: MAC timing parameters.
        link_success: probability a singleton slot decodes (physical link).

    Raises:
        ConfigError: if ``link_success`` is outside [0, 1].
    """
    if not 0.0 <= link_success <= 1.0:
        raise ConfigError("link_success must be in [0, 1]")
    cfg = config if config is not None else Gen2Config()
    stats = expected_round_stats(n_tags, optimal_q(n_tags), cfg)
    # A failed decode occupies collision-length airtime instead of a
    # successful slot; adjust both numerator and duration.
    good = stats.expected_singles * link_success
    bad = stats.expected_singles * (1.0 - link_success)
    duration = (
        cfg.t_round_overhead_s
        + good * cfg.t_success_s
        + bad * cfg.t_collision_s
        + stats.expected_empties * cfg.t_empty_s
        + stats.expected_collisions * cfg.t_collision_s
    )
    if duration <= 0:
        return 0.0
    return good / duration


def expected_per_tag_rate(n_tags: int, config: Gen2Config = None,
                          link_success: float = 1.0) -> float:
    """Expected reads/s *per tag* — the sampling rate TagBreathe sees.

    This is the quantity that degrades along Fig. 14's x-axis: more
    contending tags dilute the per-tag share of the aggregate throughput.
    """
    if n_tags <= 0:
        raise ConfigError("n_tags must be > 0")
    return expected_aggregate_read_rate(n_tags, config, link_success) / n_tags


def breathing_nyquist_margin(per_tag_rate_hz: float,
                             breathing_rate_bpm: float) -> float:
    """How far above Nyquist a per-tag sampling rate sits for a breath rate.

    Returns the ratio ``per_tag_rate / (2 * breathing_frequency)``; values
    below 1 mean breathing is unrecoverable from that single tag.

    Raises:
        ConfigError: on non-positive breathing rate.
    """
    if breathing_rate_bpm <= 0:
        raise ConfigError("breathing_rate_bpm must be > 0")
    nyquist = 2.0 * breathing_rate_bpm / 60.0
    return per_tag_rate_hz / nyquist
