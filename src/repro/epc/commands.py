"""EPC C1G2 command-level encoding: Query/QueryRep/QueryAdjust/ACK + CRCs.

The MAC simulator (:mod:`repro.epc.gen2`) works at slot granularity; this
module implements the bit-level commands those slots carry, per the
EPCglobal Class-1 Generation-2 air-interface spec the paper's reader
follows ("Both the reader and the tags follow the standard EPC protocol",
Section V).  It exists so protocol-level tooling (sniffer decoding, trace
validation, airtime accounting) works against realistic frames.

Implemented:

* CRC-5 (poly x^5 + x^3 + 1, preset 01001) protecting Query commands.
* CRC-16-CCITT (preset 0xFFFF, bit-reflected per ISO/IEC 13239) protecting
  EPC backscatter (the PC + EPC + CRC16 reply format).
* Query / QueryRep / QueryAdjust / ACK encoders and decoders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import EPCError

#: Command prefixes per the C1G2 spec.
_QUERY_PREFIX = "1000"
_QUERYREP_PREFIX = "00"
_QUERYADJUST_PREFIX = "1001"
_ACK_PREFIX = "01"


def _bits_of(value: int, width: int) -> str:
    if value < 0 or value >= (1 << width):
        raise EPCError(f"value {value} does not fit in {width} bits")
    return format(value, f"0{width}b")


# ----------------------------------------------------------------------
# CRC-5 (Query commands)
# ----------------------------------------------------------------------
def crc5(bits: str) -> int:
    """CRC-5 of a bit string, per C1G2 Annex F (poly 0x09, preset 0b01001).

    Raises:
        EPCError: on a non-binary input string.
    """
    if not all(b in "01" for b in bits):
        raise EPCError("crc5 input must be a binary string")
    register = 0b01001
    for bit in bits:
        top = (register >> 4) & 1
        register = ((register << 1) & 0b11111) | int(bit)
        if top:
            register ^= 0b01001
    # One more pass to flush... the standard algorithm XORs on the bit
    # shifted out; the loop above already realises it.
    return register & 0b11111


def crc5_check(bits_with_crc: str) -> bool:
    """True when a Query frame's trailing 5 CRC bits verify."""
    if len(bits_with_crc) < 5:
        return False
    body, tail = bits_with_crc[:-5], bits_with_crc[-5:]
    return crc5(body) == int(tail, 2)


# ----------------------------------------------------------------------
# CRC-16 (EPC backscatter)
# ----------------------------------------------------------------------
def crc16(data: bytes) -> int:
    """CRC-16-CCITT per C1G2 Annex F: preset 0xFFFF, poly 0x1021, final XOR.

    The tag backscatters PC + EPC + CRC-16; the reader validates before
    reporting the read (a failed CRC is one of the 'link failure' slots of
    the MAC simulator).
    """
    register = 0xFFFF
    for byte in data:
        register ^= byte << 8
        for _ in range(8):
            if register & 0x8000:
                register = ((register << 1) ^ 0x1021) & 0xFFFF
            else:
                register = (register << 1) & 0xFFFF
    return register ^ 0xFFFF


def crc16_check(data: bytes, crc: int) -> bool:
    """True when ``crc`` matches the CRC-16 of ``data``."""
    return crc16(data) == (crc & 0xFFFF)


# ----------------------------------------------------------------------
# Query
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryCommand:
    """The Query command starting an inventory round.

    Attributes:
        dr: divide ratio flag (0 = 8, 1 = 64/3).
        m: miller encoding selector 0-3 (M = 1, 2, 4, 8).
        trext: pilot-tone flag.
        sel: SL-flag filter, 0-3.
        session: inventory session 0-3 (S0-S3).
        target: inventoried flag target (0 = A, 1 = B).
        q: slot-count exponent, 0-15.
    """

    dr: int = 0
    m: int = 0
    trext: int = 0
    sel: int = 0
    session: int = 0
    target: int = 0
    q: int = 0

    def __post_init__(self) -> None:
        for name, width in (("dr", 1), ("m", 2), ("trext", 1), ("sel", 2),
                            ("session", 2), ("target", 1), ("q", 4)):
            value = getattr(self, name)
            if not 0 <= value < (1 << width):
                raise EPCError(f"Query.{name}={value} does not fit {width} bits")

    def encode(self) -> str:
        """The 22-bit Query frame (prefix + fields + CRC-5)."""
        body = (
            _QUERY_PREFIX
            + _bits_of(self.dr, 1)
            + _bits_of(self.m, 2)
            + _bits_of(self.trext, 1)
            + _bits_of(self.sel, 2)
            + _bits_of(self.session, 2)
            + _bits_of(self.target, 1)
            + _bits_of(self.q, 4)
        )
        return body + _bits_of(crc5(body), 5)

    @classmethod
    def decode(cls, bits: str) -> "QueryCommand":
        """Parse and CRC-check a 22-bit Query frame.

        Raises:
            EPCError: on wrong length, prefix, or CRC.
        """
        if len(bits) != 22:
            raise EPCError(f"Query frame must be 22 bits, got {len(bits)}")
        if not bits.startswith(_QUERY_PREFIX):
            raise EPCError("not a Query frame (bad prefix)")
        if not crc5_check(bits):
            raise EPCError("Query CRC-5 mismatch")
        return cls(
            dr=int(bits[4], 2),
            m=int(bits[5:7], 2),
            trext=int(bits[7], 2),
            sel=int(bits[8:10], 2),
            session=int(bits[10:12], 2),
            target=int(bits[12], 2),
            q=int(bits[13:17], 2),
        )


# ----------------------------------------------------------------------
# QueryRep / QueryAdjust / ACK
# ----------------------------------------------------------------------
def encode_query_rep(session: int) -> str:
    """The 4-bit QueryRep advancing to the next slot.

    Raises:
        EPCError: on a session outside 0-3.
    """
    return _QUERYREP_PREFIX + _bits_of(session, 2)


def decode_query_rep(bits: str) -> int:
    """Session number of a QueryRep frame.

    Raises:
        EPCError: on wrong length or prefix.
    """
    if len(bits) != 4 or not bits.startswith(_QUERYREP_PREFIX):
        raise EPCError(f"not a QueryRep frame: {bits!r}")
    return int(bits[2:], 2)


#: UpDn field values for QueryAdjust.
_UPDN = {+1: "110", 0: "000", -1: "011"}
_UPDN_REVERSE = {v: k for k, v in _UPDN.items()}


def encode_query_adjust(session: int, updn: int) -> str:
    """The 9-bit QueryAdjust nudging Q by ``updn`` in (-1, 0, +1).

    Raises:
        EPCError: on invalid session or updn.
    """
    code = _UPDN.get(updn)
    if code is None:
        raise EPCError(f"updn must be -1, 0 or +1, got {updn}")
    return _QUERYADJUST_PREFIX + _bits_of(session, 2) + code


def decode_query_adjust(bits: str) -> Tuple[int, int]:
    """(session, updn) of a QueryAdjust frame.

    Raises:
        EPCError: on malformed frames.
    """
    if len(bits) != 9 or not bits.startswith(_QUERYADJUST_PREFIX):
        raise EPCError(f"not a QueryAdjust frame: {bits!r}")
    session = int(bits[4:6], 2)
    updn = _UPDN_REVERSE.get(bits[6:])
    if updn is None:
        raise EPCError(f"invalid UpDn code {bits[6:]!r}")
    return session, updn


def encode_ack(rn16: int) -> str:
    """The 18-bit ACK echoing a tag's RN16.

    Raises:
        EPCError: on an RN16 outside 16 bits.
    """
    return _ACK_PREFIX + _bits_of(rn16, 16)


def decode_ack(bits: str) -> int:
    """RN16 of an ACK frame.

    Raises:
        EPCError: on malformed frames.
    """
    if len(bits) != 18 or not bits.startswith(_ACK_PREFIX):
        raise EPCError(f"not an ACK frame: {bits!r}")
    return int(bits[2:], 2)


# ----------------------------------------------------------------------
# Tag reply framing
# ----------------------------------------------------------------------
def frame_epc_reply(epc_bytes: bytes) -> bytes:
    """PC + EPC + CRC-16, the tag's backscattered identification reply.

    The 16-bit Protocol Control word encodes the EPC length in words.

    Raises:
        EPCError: on an EPC that is not a whole number of 16-bit words or
            longer than the PC field can describe (31 words).
    """
    if len(epc_bytes) % 2 != 0:
        raise EPCError("EPC must be a whole number of 16-bit words")
    words = len(epc_bytes) // 2
    if words > 31:
        raise EPCError("EPC longer than 31 words")
    pc = (words << 11) & 0xFFFF
    body = pc.to_bytes(2, "big") + epc_bytes
    return body + crc16(body).to_bytes(2, "big")


def parse_epc_reply(frame: bytes) -> bytes:
    """Extract and CRC-verify the EPC from a backscattered reply.

    Raises:
        EPCError: on truncated frames, PC/length mismatch, or bad CRC.
    """
    if len(frame) < 4:
        raise EPCError("reply too short for PC + CRC-16")
    pc = int.from_bytes(frame[:2], "big")
    words = pc >> 11
    expected = 2 + 2 * words + 2
    if len(frame) != expected:
        raise EPCError(f"reply length {len(frame)} != PC-declared {expected}")
    body, crc = frame[:-2], int.from_bytes(frame[-2:], "big")
    if not crc16_check(body, crc):
        raise EPCError("EPC reply CRC-16 mismatch")
    return frame[2:-2]
