"""Command-level protocol transcripts of inventory rounds.

Bridges the slot-level MAC simulator (:mod:`repro.epc.gen2`) and the
bit-level command codecs (:mod:`repro.epc.commands`): given a round's
slot outcomes, it reconstructs the full reader/tag exchange — Query,
QueryRep, ACK, RN16s, EPC replies — as a real air sniffer would log it,
and accounts airtime from actual bit counts at the configured link rates.

Useful for protocol debugging, for validating the MAC simulator's slot
durations against first principles, and as the ground truth for tests of
the command codecs in context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EPCError
from .codec import EPC96
from .commands import (
    QueryCommand,
    encode_ack,
    encode_query_rep,
    frame_epc_reply,
)

#: Reader -> tag (forward) link rate [bits/s]; Tari=12.5 us PIE averages
#: roughly 53 kbps on commodity readers.
DEFAULT_FORWARD_RATE_BPS = 53_000.0

#: Tag -> reader (backscatter) link rate [bits/s] (FM0 at BLF 160 kHz).
DEFAULT_REVERSE_RATE_BPS = 160_000.0

#: Inter-frame gaps (T1/T2 timing) [s].
DEFAULT_TURNAROUND_S = 62e-6


@dataclass(frozen=True)
class Exchange:
    """One reader-tag exchange within a slot.

    Attributes:
        slot: 0-based slot index within the round.
        reader_frames: bit strings the reader transmitted.
        tag_frames: byte strings the tag backscattered (RN16 rendered as
            2 bytes, EPC replies as PC+EPC+CRC16).
        outcome: "empty", "collision", "read", or "link_fail".
        epc: the identified tag's EPC for "read" outcomes.
        airtime_s: total air occupancy of the slot from bit counts.
    """

    slot: int
    reader_frames: Tuple[str, ...]
    tag_frames: Tuple[bytes, ...]
    outcome: str
    epc: Optional[EPC96]
    airtime_s: float


@dataclass
class RoundTranscript:
    """A full inventory round at command granularity.

    Attributes:
        query: the opening Query command.
        exchanges: per-slot exchanges in order.
    """

    query: QueryCommand
    exchanges: List[Exchange] = field(default_factory=list)

    @property
    def total_airtime_s(self) -> float:
        """Air occupancy of the whole round."""
        return sum(e.airtime_s for e in self.exchanges)

    def reads(self) -> List[EPC96]:
        """EPCs successfully identified this round."""
        return [e.epc for e in self.exchanges if e.outcome == "read" and e.epc]

    def frame_count(self) -> int:
        """Total frames on the air (both directions)."""
        return 1 + sum(len(e.reader_frames) + len(e.tag_frames)
                       for e in self.exchanges)


class TranscriptBuilder:
    """Builds command-level transcripts for inventory rounds.

    Args:
        forward_rate_bps: reader-to-tag bit rate.
        reverse_rate_bps: tag-to-reader bit rate.
        turnaround_s: inter-frame gap (applied per direction change).
        session: Gen2 session carried in Query/QueryRep.
        rng: random source for RN16 draws.

    Raises:
        EPCError: on non-positive rates/gaps.
    """

    def __init__(self,
                 forward_rate_bps: float = DEFAULT_FORWARD_RATE_BPS,
                 reverse_rate_bps: float = DEFAULT_REVERSE_RATE_BPS,
                 turnaround_s: float = DEFAULT_TURNAROUND_S,
                 session: int = 0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if forward_rate_bps <= 0 or reverse_rate_bps <= 0:
            raise EPCError("link rates must be > 0")
        if turnaround_s < 0:
            raise EPCError("turnaround must be >= 0")
        if not 0 <= session <= 3:
            raise EPCError("session must be 0-3")
        self._fwd = forward_rate_bps
        self._rev = reverse_rate_bps
        self._gap = turnaround_s
        self._session = session
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    def _fwd_time(self, bits: str) -> float:
        return len(bits) / self._fwd

    def _rev_time(self, payload: bytes) -> float:
        # FM0 preamble (6 symbols) + payload bits + dummy bit.
        return (6 + len(payload) * 8 + 1) / self._rev

    def build_round(self, q: int,
                    slot_outcomes: Sequence[Tuple[str, Optional[EPC96]]]) -> RoundTranscript:
        """Reconstruct a round from slot outcomes.

        Args:
            q: the round's Q (the transcript encodes it in the Query).
            slot_outcomes: per slot, ("empty" | "collision" | "read" |
                "link_fail", epc-or-None).

        Raises:
            EPCError: on unknown outcomes or a "read" without an EPC.
        """
        query = QueryCommand(session=self._session, q=q)
        transcript = RoundTranscript(query=query)
        for index, (outcome, epc) in enumerate(slot_outcomes):
            transcript.exchanges.append(
                self._build_slot(index, outcome, epc, query)
            )
        return transcript

    def _build_slot(self, index: int, outcome: str,
                    epc: Optional[EPC96], query: QueryCommand) -> Exchange:
        opener = (query.encode() if index == 0
                  else encode_query_rep(self._session))
        reader_frames: List[str] = [opener]
        tag_frames: List[bytes] = []
        airtime = self._fwd_time(opener) + self._gap

        if outcome == "empty":
            pass
        elif outcome == "collision":
            # Two (or more) RN16s pile up; model as one garbled 16-bit
            # burst of airtime — the reader cannot slice it.
            rn_a = int(self._rng.integers(0, 1 << 16))
            tag_frames.append(int(rn_a).to_bytes(2, "big"))
            airtime += self._rev_time(tag_frames[-1]) + self._gap
        elif outcome in ("read", "link_fail"):
            rn16 = int(self._rng.integers(0, 1 << 16))
            tag_frames.append(rn16.to_bytes(2, "big"))
            airtime += self._rev_time(tag_frames[-1]) + self._gap
            ack = encode_ack(rn16)
            reader_frames.append(ack)
            airtime += self._fwd_time(ack) + self._gap
            if outcome == "read":
                if epc is None:
                    raise EPCError("a 'read' outcome needs an EPC")
                reply = frame_epc_reply(epc.value.to_bytes(12, "big"))
                tag_frames.append(reply)
                airtime += self._rev_time(reply) + self._gap
            # link_fail: the EPC reply was garbled; airtime for the
            # attempted reply still elapses.
            else:
                airtime += self._rev_time(b"\x00" * 16) + self._gap
        else:
            raise EPCError(f"unknown slot outcome {outcome!r}")
        return Exchange(
            slot=index,
            reader_frames=tuple(reader_frames),
            tag_frames=tuple(tag_frames),
            outcome=outcome,
            epc=epc,
            airtime_s=airtime,
        )


def airtime_of_successful_slot(builder: Optional[TranscriptBuilder] = None) -> float:
    """First-principles airtime of one successful identification slot.

    Used by tests to sanity-check :class:`repro.epc.gen2.Gen2Config`'s
    ``t_success_s`` against the command-level accounting.
    """
    builder = builder if builder is not None else TranscriptBuilder(
        rng=np.random.default_rng(0)
    )
    transcript = builder.build_round(0, [("read", EPC96.from_user_tag(1, 1))])
    return transcript.exchanges[0].airtime_s
