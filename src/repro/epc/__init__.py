"""EPC Gen2 substrate: EPC-96 codec and MAC-layer inventory simulation.

TagBreathe rides on two EPC Gen2 behaviours:

* collision arbitration (framed slotted ALOHA with the Q algorithm), which
  is why multiple users' tags "naturally avoid interferences" (Section I)
  but also why read rates fall as contending tags appear (Fig. 14);
* writable 96-bit EPCs, which TagBreathe overwrites with a 64-bit user ID
  plus a 32-bit tag ID (Fig. 9).
"""

from .codec import EPC96, EPCMappingTable, encode_user_tag, decode_user_tag
from .gen2 import Gen2Config, Gen2Inventory, SlotOutcome, RoundStats
from .inventory import expected_round_stats, expected_aggregate_read_rate, expected_per_tag_rate
from .select import (
    SelectCommand,
    crc16_bits,
    population_filter,
    select_user,
    select_user_prefix,
)
from .transcript import (
    Exchange,
    RoundTranscript,
    TranscriptBuilder,
    airtime_of_successful_slot,
)
from .commands import (
    QueryCommand,
    crc5,
    crc16,
    encode_ack,
    decode_ack,
    encode_query_rep,
    decode_query_rep,
    encode_query_adjust,
    decode_query_adjust,
    frame_epc_reply,
    parse_epc_reply,
)

__all__ = [
    "EPC96",
    "EPCMappingTable",
    "encode_user_tag",
    "decode_user_tag",
    "Gen2Config",
    "Gen2Inventory",
    "SlotOutcome",
    "RoundStats",
    "expected_round_stats",
    "expected_aggregate_read_rate",
    "expected_per_tag_rate",
    "QueryCommand",
    "crc5",
    "crc16",
    "encode_ack",
    "decode_ack",
    "encode_query_rep",
    "decode_query_rep",
    "encode_query_adjust",
    "decode_query_adjust",
    "frame_epc_reply",
    "parse_epc_reply",
    "SelectCommand",
    "crc16_bits",
    "population_filter",
    "select_user",
    "select_user_prefix",
    "Exchange",
    "RoundTranscript",
    "TranscriptBuilder",
    "airtime_of_successful_slot",
]
