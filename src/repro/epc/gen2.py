"""Framed-slotted-ALOHA inventory with the Gen2 Q algorithm.

This is the MAC substrate behind three of the paper's evaluation results:

* **Fig. 13** — 4 users x 3 tags still read fast enough: the aggregate
  successful-read throughput of slotted ALOHA *grows* with a handful of
  tags (more occupied slots per round) before per-tag rates dilute.
* **Fig. 14** — contending item tags dilute the per-tag read rate of the
  3 monitoring tags, degrading accuracy gently down to ~91 % at 30
  contending tags.
* The single-tag sampling rate of ~64 Hz (Section IV-A) — a lone tag is
  limited by per-round protocol overhead, not slot time.

The simulator is event-driven over MAC time: each inventory round issues a
Query with the current Q, every energised tag draws a slot, and slots
resolve to empty / collision / attempted-read.  An attempted read succeeds
only if the physical link cooperates, which the caller supplies as a
callback (wired to :class:`repro.rf.LinkBudget` by the simulation engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import ConfigError


class SlotOutcome(Enum):
    """Resolution of one ALOHA slot."""

    EMPTY = "empty"
    COLLISION = "collision"
    READ = "read"
    LINK_FAIL = "link_fail"


@dataclass(frozen=True)
class Gen2Config:
    """Timing and Q-algorithm parameters of the MAC simulation.

    Slot/overhead durations are calibrated so a single tag in good
    conditions is read at roughly the 64 Hz the paper reports, and an
    inventory of a dozen tags sustains a realistic 150-250 aggregate
    reads/s for an Impinj R420-class reader.

    Attributes:
        t_success_s: duration of a slot carrying a successful tag reply
            (RN16 + ACK + EPC backscatter).
        t_collision_s: duration of a collided slot (RN16 garbled, no ACK).
        t_empty_s: duration of an empty slot.
        t_round_overhead_s: per-round overhead (Query/QueryAdjust, session
            housekeeping, receiver settling).
        q_initial: starting Q exponent (frame size 2**Q).
        q_min / q_max: clamp range for Q.
        q_step: Qfp adjustment constant C of the Q algorithm.
    """

    t_success_s: float = 2.5e-3
    t_collision_s: float = 0.8e-3
    t_empty_s: float = 0.3e-3
    t_round_overhead_s: float = 12.0e-3
    q_initial: int = 0
    q_min: int = 0
    q_max: int = 15
    q_step: float = 0.35

    def __post_init__(self) -> None:
        for name in ("t_success_s", "t_collision_s", "t_empty_s"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be > 0")
        if self.t_round_overhead_s < 0:
            raise ConfigError("t_round_overhead_s must be >= 0")
        if not 0 <= self.q_min <= self.q_initial <= self.q_max <= 15:
            raise ConfigError("require 0 <= q_min <= q_initial <= q_max <= 15")
        if self.q_step <= 0:
            raise ConfigError("q_step must be > 0")


@dataclass
class RoundStats:
    """Per-round accounting, useful for tests and MAC-level benchmarks."""

    q: int = 0
    slots: int = 0
    empties: int = 0
    collisions: int = 0
    reads: int = 0
    link_failures: int = 0
    duration_s: float = 0.0


#: A successful read event: (mac_time_s, tag_key).
ReadEvent = Tuple[float, Hashable]

#: Link callback: (tag_key, mac_time_s) -> True if the physical link
#: delivers the read.  Energisation is decided separately via
#: ``energized``; this models decode success of a singleton slot.
LinkCallback = Callable[[Hashable, float], bool]

#: Energisation callback: (tag_key, mac_time_s) -> True if the tag powers
#: up and participates in this round at all.
EnergizedCallback = Callable[[Hashable, float], bool]


def _always(_tag: Hashable, _t: float) -> bool:
    return True


class Gen2Inventory:
    """Event-driven framed-slotted-ALOHA inventory loop.

    Args:
        tag_keys: identities of the tag population in the field.
        config: MAC timing/Q parameters.
        rng: random source (slot draws).
        link_ok: per-attempt physical decode callback (default: always).
        energized: per-round power-up callback (default: always).  A tag
            that fails to energise neither replies nor collides — this is
            how full LOS blockage (orientation > 90 deg, Fig. 15) silences
            a tag entirely.

    Raises:
        ConfigError: if the tag population is empty.
    """

    def __init__(
        self,
        tag_keys: Sequence[Hashable],
        config: Optional[Gen2Config] = None,
        rng: Optional[np.random.Generator] = None,
        link_ok: LinkCallback = _always,
        energized: EnergizedCallback = _always,
    ) -> None:
        if not tag_keys:
            raise ConfigError("tag population must be non-empty")
        if len(set(tag_keys)) != len(tag_keys):
            raise ConfigError("tag keys must be unique")
        self._tags: List[Hashable] = list(tag_keys)
        self._cfg = config if config is not None else Gen2Config()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._link_ok = link_ok
        self._energized = energized
        self._qfp = float(self._cfg.q_initial)
        self._round_log: List[RoundStats] = []
        # Cached (registry, counters..., gauge) for the per-round metric
        # updates — instrument lookup costs a name-validation and a label
        # sort, which at thousands of rounds per run would dominate the
        # observability overhead budget.
        self._obs_cache: Optional[tuple] = None

    @property
    def config(self) -> Gen2Config:
        """The MAC configuration in force."""
        return self._cfg

    @property
    def current_q(self) -> int:
        """The integer Q the next round will use."""
        return int(round(min(max(self._qfp, self._cfg.q_min), self._cfg.q_max)))

    @property
    def round_log(self) -> List[RoundStats]:
        """Statistics of every simulated round so far."""
        return list(self._round_log)

    # ------------------------------------------------------------------
    # Core simulation
    # ------------------------------------------------------------------
    def run_round(self, t_start: float) -> Tuple[List[ReadEvent], RoundStats]:
        """Simulate one inventory round starting at MAC time ``t_start``.

        Returns:
            (read events in time order, round statistics).  MAC time
            advances by the realistic duration of every slot the reader
            actually spends.
        """
        cfg = self._cfg
        q = self.current_q
        n_slots = 1 << q
        stats = RoundStats(q=q, slots=n_slots)
        t = t_start + cfg.t_round_overhead_s

        active = [k for k in self._tags if self._energized(k, t_start)]
        # One batched draw for the whole population.  For a power-of-two
        # upper bound (n_slots = 2**q always is) the generator's masked
        # rejection never rejects, so the batch is bit-identical to the
        # per-tag draws it replaces — seeded captures are unchanged.
        slots = self._rng.integers(0, n_slots, size=len(active))
        slot_of: Dict[Hashable, int] = {
            k: int(s) for k, s in zip(active, slots)
        }
        occupancy: Dict[int, List[Hashable]] = {}
        for key, slot in slot_of.items():
            occupancy.setdefault(slot, []).append(key)

        tracer = obs.get_tracer()
        slot_detail = tracer.slot_detail

        events: List[ReadEvent] = []
        for slot in range(n_slots):
            holders = occupancy.get(slot, [])
            if not holders:
                stats.empties += 1
                t += cfg.t_empty_s
                if slot_detail:
                    tracer.event("gen2.slot", slot=slot, outcome="empty")
            elif len(holders) > 1:
                stats.collisions += 1
                t += cfg.t_collision_s
                if slot_detail:
                    tracer.event("gen2.slot", slot=slot, outcome="collision",
                                 contenders=len(holders))
            else:
                tag = holders[0]
                if self._link_ok(tag, t):
                    stats.reads += 1
                    t += cfg.t_success_s
                    events.append((t, tag))
                    if slot_detail:
                        tracer.event("gen2.slot", slot=slot, outcome="read",
                                     tag=str(tag), t=t)
                else:
                    stats.link_failures += 1
                    t += cfg.t_collision_s
                    if slot_detail:
                        tracer.event("gen2.slot", slot=slot,
                                     outcome="link_fail", tag=str(tag))

        self._adapt_q(stats)
        stats.duration_s = t - t_start
        self._round_log.append(stats)

        if tracer.enabled:
            tracer.event(
                "gen2.round", t=t_start, q=q, slots=n_slots,
                empties=stats.empties, collisions=stats.collisions,
                reads=stats.reads, link_failures=stats.link_failures,
                duration_s=stats.duration_s,
            )
            rounds, empty, collision, read, link_fail, q_gauge = \
                self._obs_instruments()
            rounds.inc()
            if stats.empties:
                empty.inc(stats.empties)
            if stats.collisions:
                collision.inc(stats.collisions)
            if stats.reads:
                read.inc(stats.reads)
            if stats.link_failures:
                link_fail.inc(stats.link_failures)
            q_gauge.set(self.current_q)
        return events, stats

    def _obs_instruments(self) -> tuple:
        """The per-round MAC instruments, cached against the live registry."""
        registry = obs.get_registry()
        cached = self._obs_cache
        if cached is None or cached[0] is not registry:
            cached = (
                registry,
                registry.counter("repro_gen2_rounds_total"),
                registry.counter("repro_gen2_slots_total", outcome="empty"),
                registry.counter("repro_gen2_slots_total", outcome="collision"),
                registry.counter("repro_gen2_slots_total", outcome="read"),
                registry.counter("repro_gen2_slots_total", outcome="link_fail"),
                registry.gauge("repro_gen2_q"),
            )
            self._obs_cache = cached
        return cached[1:]

    def run_for(self, duration_s: float, t_start: float = 0.0) -> List[ReadEvent]:
        """Run rounds back-to-back until ``duration_s`` of MAC time elapses.

        Raises:
            ConfigError: on non-positive duration.
        """
        if duration_s <= 0:
            raise ConfigError("duration must be > 0")
        events: List[ReadEvent] = []
        t = t_start
        t_end = t_start + duration_s
        while t < t_end:
            round_events, stats = self.run_round(t)
            events.extend(ev for ev in round_events if ev[0] < t_end)
            t += stats.duration_s
        return events

    def iter_reads(self, t_start: float = 0.0) -> Iterator[ReadEvent]:
        """Endless generator of read events (for streaming consumers)."""
        t = t_start
        while True:
            round_events, stats = self.run_round(t)
            yield from round_events
            t += stats.duration_s

    # ------------------------------------------------------------------
    # Q adaptation (Gen2 Annex D style)
    # ------------------------------------------------------------------
    def _adapt_q(self, stats: RoundStats) -> None:
        """Nudge Qfp toward the frame size matching the tag population.

        Collisions inflate Q, empties deflate it; singleton reads leave it
        alone.  Link failures count as collisions — from the reader's view
        both are garbled slots.
        """
        cfg = self._cfg
        garbled = stats.collisions + stats.link_failures
        self._qfp += cfg.q_step * garbled - cfg.q_step * stats.empties
        self._qfp = min(max(self._qfp, float(cfg.q_min)), float(cfg.q_max))
