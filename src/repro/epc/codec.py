"""EPC-96 encoding: the 64-bit user ID + 32-bit tag ID split of Fig. 9.

    "We overwrite the 96-bit tag ID with a 64-bit user ID followed by a
    32-bit short tag ID ... If the overwriting operation is not supported,
    the reader can build a mapping table to map and lookup 96-bit tag IDs
    to user IDs and short tag IDs."  (Section IV-C)

Both paths are implemented: :func:`encode_user_tag` / :func:`decode_user_tag`
for the overwrite path and :class:`EPCMappingTable` for the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import EPCFormatError

#: Bit widths from Fig. 9.
EPC_BITS = 96
USER_ID_BITS = 64
TAG_ID_BITS = 32

_EPC_MAX = (1 << EPC_BITS) - 1
_USER_MAX = (1 << USER_ID_BITS) - 1
_TAG_MAX = (1 << TAG_ID_BITS) - 1


@dataclass(frozen=True)
class EPC96:
    """An immutable 96-bit EPC value.

    Attributes:
        value: the raw 96-bit integer.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _EPC_MAX:
            raise EPCFormatError(f"EPC must fit in {EPC_BITS} bits, got {self.value:#x}")

    @classmethod
    def from_hex(cls, text: str) -> "EPC96":
        """Parse a 24-hex-digit EPC string (whitespace/dashes tolerated).

        Raises:
            EPCFormatError: on malformed input.
        """
        cleaned = text.replace(" ", "").replace("-", "").lower()
        if len(cleaned) != EPC_BITS // 4:
            raise EPCFormatError(
                f"EPC hex must be {EPC_BITS // 4} digits, got {len(cleaned)}"
            )
        try:
            return cls(int(cleaned, 16))
        except ValueError as exc:
            raise EPCFormatError(f"invalid EPC hex {text!r}") from exc

    @classmethod
    def from_user_tag(cls, user_id: int, tag_id: int) -> "EPC96":
        """Build the overwritten EPC of Fig. 9 from a user ID and tag ID."""
        return cls(encode_user_tag(user_id, tag_id))

    def to_hex(self) -> str:
        """24-digit lowercase hex representation."""
        return f"{self.value:024x}"

    @property
    def user_id(self) -> int:
        """The high 64 bits, interpreted as a TagBreathe user ID."""
        return (self.value >> TAG_ID_BITS) & _USER_MAX

    @property
    def tag_id(self) -> int:
        """The low 32 bits, interpreted as a TagBreathe short tag ID."""
        return self.value & _TAG_MAX

    def split(self) -> Tuple[int, int]:
        """``(user_id, tag_id)`` per Fig. 9."""
        return self.user_id, self.tag_id

    def __str__(self) -> str:
        return self.to_hex()


def encode_user_tag(user_id: int, tag_id: int) -> int:
    """Pack ``user_id`` (64 b) and ``tag_id`` (32 b) into one 96-bit value.

    Raises:
        EPCFormatError: if either field overflows its width.
    """
    if not 0 <= user_id <= _USER_MAX:
        raise EPCFormatError(f"user_id must fit in {USER_ID_BITS} bits, got {user_id}")
    if not 0 <= tag_id <= _TAG_MAX:
        raise EPCFormatError(f"tag_id must fit in {TAG_ID_BITS} bits, got {tag_id}")
    return (user_id << TAG_ID_BITS) | tag_id


def decode_user_tag(epc_value: int) -> Tuple[int, int]:
    """Unpack a 96-bit EPC into ``(user_id, tag_id)``.

    Raises:
        EPCFormatError: if the value does not fit in 96 bits.
    """
    return EPC96(epc_value).split()


class EPCMappingTable:
    """Fallback lookup table for readers that cannot overwrite EPCs.

    Maps factory 96-bit EPCs to ``(user_id, tag_id)`` pairs, exactly the
    "mapping table" alternative of Section IV-C.
    """

    def __init__(self) -> None:
        self._table: Dict[int, Tuple[int, int]] = {}
        self._reverse: Dict[Tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._table)

    def register(self, factory_epc: EPC96, user_id: int, tag_id: int) -> None:
        """Associate a factory EPC with a (user, tag) identity.

        Raises:
            EPCFormatError: if the identity fields overflow, or the factory
                EPC / identity pair is already registered differently.
        """
        encode_user_tag(user_id, tag_id)  # validates widths
        key = factory_epc.value
        identity = (user_id, tag_id)
        existing = self._table.get(key)
        if existing is not None and existing != identity:
            raise EPCFormatError(
                f"EPC {factory_epc} already mapped to {existing}, cannot remap to {identity}"
            )
        owner = self._reverse.get(identity)
        if owner is not None and owner != key:
            raise EPCFormatError(
                f"identity {identity} already bound to EPC {owner:#x}"
            )
        self._table[key] = identity
        self._reverse[identity] = key

    def lookup(self, factory_epc: EPC96) -> Optional[Tuple[int, int]]:
        """``(user_id, tag_id)`` for a factory EPC, or None if unregistered.

        Unregistered EPCs are how item-labelling *contending* tags (Fig. 14)
        are distinguished from breath-monitoring tags.
        """
        return self._table.get(factory_epc.value)

    def is_monitoring_tag(self, factory_epc: EPC96) -> bool:
        """True when the EPC belongs to a registered breath-monitoring tag."""
        return factory_epc.value in self._table
