"""The Gen2 Select command: MAC-level tag filtering.

Section IV-C's deployments interleave breath-monitoring tags with
item-labelling tags.  TagBreathe filters by EPC user ID *after* reading
everything — simple, but Fig. 14 shows the cost: contending tags dilute
the monitoring tags' read rate.  The C1G2 protocol offers a stronger
tool the paper leaves unused: **Select**, which flags only tags whose
EPC matches a mask so that a subsequent Query inventories just those.
With TagBreathe's user-ID-prefixed EPCs (Fig. 9), a Select on the user-ID
prefix excludes item tags from the MAC entirely, restoring the full read
rate (quantified in ``benchmarks/test_ablation_select.py``).

Implemented: bit-level Select frame encode/decode (CRC-16 protected) and
a mask-matching predicate usable with :class:`repro.epc.gen2.Gen2Inventory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..errors import EPCError
from .codec import EPC96, USER_ID_BITS

_SELECT_PREFIX = "1010"

#: Memory banks per C1G2 (we model the EPC bank).
MEMBANK_EPC = 0b01


def crc16_bits(bits: str) -> int:
    """CRC-16-CCITT (preset 0xFFFF, poly 0x1021, final XOR) over a bit string.

    The Select command is not byte-aligned, so its CRC runs bit-serially.

    Raises:
        EPCError: on non-binary input.
    """
    if not all(b in "01" for b in bits):
        raise EPCError("crc16_bits input must be a binary string")
    register = 0xFFFF
    for bit in bits:
        top = (register >> 15) & 1
        register = (register << 1) & 0xFFFF
        if top ^ int(bit):
            register ^= 0x1021
    return register ^ 0xFFFF


def _bits_of(value: int, width: int) -> str:
    if value < 0 or value >= (1 << width):
        raise EPCError(f"value {value} does not fit in {width} bits")
    return format(value, f"0{width}b")


@dataclass(frozen=True)
class SelectCommand:
    """A (simplified) C1G2 Select command.

    Attributes:
        target: which flag to assert (0-4: SL or inventoried S0-S3).
        action: match/non-match behaviour code (0-7).
        membank: memory bank the mask applies to (we model EPC = 0b01).
        pointer: bit offset into the bank where the mask starts.
        mask: the bit-string pattern tags must match.
        truncate: truncated-reply flag.
    """

    target: int = 4  # SL flag
    action: int = 0
    membank: int = MEMBANK_EPC
    pointer: int = 0
    mask: str = ""
    truncate: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.target <= 7:
            raise EPCError("target must be 0-7")
        if not 0 <= self.action <= 7:
            raise EPCError("action must be 0-7")
        if not 0 <= self.membank <= 3:
            raise EPCError("membank must be 0-3")
        if not 0 <= self.pointer < 256:
            raise EPCError("pointer must fit 8 bits (simplified EBV)")
        if len(self.mask) > 255:
            raise EPCError("mask longer than 255 bits")
        if not all(b in "01" for b in self.mask):
            raise EPCError("mask must be a binary string")
        if self.truncate not in (0, 1):
            raise EPCError("truncate must be 0 or 1")

    # ------------------------------------------------------------------
    def encode(self) -> str:
        """The full Select frame: fields + CRC-16."""
        body = (
            _SELECT_PREFIX
            + _bits_of(self.target, 3)
            + _bits_of(self.action, 3)
            + _bits_of(self.membank, 2)
            + _bits_of(self.pointer, 8)
            + _bits_of(len(self.mask), 8)
            + self.mask
            + _bits_of(self.truncate, 1)
        )
        return body + _bits_of(crc16_bits(body), 16)

    @classmethod
    def decode(cls, bits: str) -> "SelectCommand":
        """Parse and CRC-check a Select frame.

        Raises:
            EPCError: on malformed frames or CRC mismatch.
        """
        if len(bits) < 4 + 3 + 3 + 2 + 8 + 8 + 1 + 16:
            raise EPCError("Select frame too short")
        if not bits.startswith(_SELECT_PREFIX):
            raise EPCError("not a Select frame (bad prefix)")
        body, crc = bits[:-16], int(bits[-16:], 2)
        if crc16_bits(body) != crc:
            raise EPCError("Select CRC-16 mismatch")
        target = int(bits[4:7], 2)
        action = int(bits[7:10], 2)
        membank = int(bits[10:12], 2)
        pointer = int(bits[12:20], 2)
        mask_len = int(bits[20:28], 2)
        mask_end = 28 + mask_len
        if len(body) != mask_end + 1:
            raise EPCError(
                f"Select length mismatch: mask_len={mask_len} but body has "
                f"{len(body) - 29} mask bits"
            )
        mask = bits[28:mask_end]
        truncate = int(bits[mask_end], 2)
        return cls(target=target, action=action, membank=membank,
                   pointer=pointer, mask=mask, truncate=truncate)

    # ------------------------------------------------------------------
    def matches(self, epc: EPC96) -> bool:
        """True when a tag with this EPC matches the mask.

        The EPC bank is modelled as the 96 EPC bits, MSB first, with the
        pointer counting from the MSB (the user-ID prefix starts at 0).
        """
        epc_bits = format(epc.value, "096b")
        end = self.pointer + len(self.mask)
        if end > len(epc_bits):
            return False
        return epc_bits[self.pointer:end] == self.mask


def select_user(user_id: int) -> SelectCommand:
    """A Select matching exactly one TagBreathe user's tags.

    Masks the full 64-bit user-ID prefix of the Fig. 9 EPC layout.

    Raises:
        EPCError: if the user ID overflows 64 bits.
    """
    if not 0 <= user_id < (1 << USER_ID_BITS):
        raise EPCError(f"user_id must fit {USER_ID_BITS} bits")
    return SelectCommand(pointer=0, mask=_bits_of(user_id, USER_ID_BITS))


def select_user_prefix(prefix_bits: str) -> SelectCommand:
    """A Select matching every user ID starting with ``prefix_bits``.

    Deployments assign monitoring user IDs under a common prefix so one
    Select covers the whole fleet while excluding item tags.

    Raises:
        EPCError: on an empty or non-binary prefix.
    """
    if not prefix_bits or not all(b in "01" for b in prefix_bits):
        raise EPCError("prefix must be a non-empty binary string")
    if len(prefix_bits) > USER_ID_BITS:
        raise EPCError(f"prefix longer than the {USER_ID_BITS}-bit user ID")
    return SelectCommand(pointer=0, mask=prefix_bits)


def population_filter(command: SelectCommand,
                      epc_of: Callable[[Hashable], EPC96]) -> Callable[[Hashable], bool]:
    """A tag-population predicate for :class:`repro.epc.gen2.Gen2Inventory`.

    Args:
        command: the Select in force.
        epc_of: maps a tag key to its EPC (e.g. ``scenario.epc``).

    Returns:
        ``key -> bool``: whether the tag participates in inventory rounds.
    """
    def participates(key: Hashable) -> bool:
        return command.matches(epc_of(key))
    return participates
