"""Seeded composition of fault injectors into one stream transform.

A :class:`FaultChain` is the unit a robustness campaign configures: an
ordered list of :class:`~repro.faults.injectors.FaultInjector` stages plus
one master seed.  Applying the chain derives an independent child
generator per stage from the master seed (via
:class:`numpy.random.SeedSequence` spawning), so

* the same chain applied to the same capture always yields the same
  faulted capture (reproducibility), and
* editing one stage's parameters never perturbs the random draws of the
  stages after it, keeping A/B fault sweeps aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import FaultInjectionError
from ..reader.tagreport import TagReport
from .injectors import FaultInjector


@dataclass(frozen=True)
class InjectionStats:
    """Bookkeeping of one chain stage's last application.

    Attributes:
        name: the injector's machine name.
        severity: the configured severity.
        reports_in: stream length entering the stage.
        reports_out: stream length leaving the stage.
    """

    name: str
    severity: float
    reports_in: int
    reports_out: int

    @property
    def dropped(self) -> int:
        """Net reports removed by the stage (negative = added, e.g. dups)."""
        return self.reports_in - self.reports_out


class FaultChain:
    """An ordered, seeded pipeline of fault injectors.

    Args:
        injectors: stages applied in order (may be empty = no-op chain).
        seed: master seed; identical (seed, input) pairs give identical
            faulted streams.

    Raises:
        FaultInjectionError: when a stage is not a :class:`FaultInjector`.
    """

    def __init__(self, injectors: Sequence[FaultInjector] = (),
                 seed: int = 0) -> None:
        stages = tuple(injectors)
        for stage in stages:
            if not isinstance(stage, FaultInjector):
                raise FaultInjectionError(
                    f"chain stages must be FaultInjector instances, got {stage!r}"
                )
        self._stages = stages
        self._seed = int(seed)
        self._last_stats: Tuple[InjectionStats, ...] = ()

    @property
    def stages(self) -> Tuple[FaultInjector, ...]:
        """The configured injector stages, in application order."""
        return self._stages

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    @property
    def last_stats(self) -> Tuple[InjectionStats, ...]:
        """Per-stage stream accounting of the most recent :meth:`apply`."""
        return self._last_stats

    def __len__(self) -> int:
        return len(self._stages)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{s.name}@{s.severity:g}" for s in self._stages) or "no-op"
        return f"FaultChain([{inner}], seed={self._seed})"

    def apply(self, reports: Sequence[TagReport]) -> List[TagReport]:
        """Run the capture through every stage and return the faulted stream.

        Re-applying to the same input reproduces the same output; stats of
        the run are kept in :attr:`last_stats`.
        """
        children = np.random.SeedSequence(self._seed).spawn(max(1, len(self._stages)))
        out: List[TagReport] = list(reports)
        stats: List[InjectionStats] = []
        for stage, child in zip(self._stages, children):
            n_in = len(out)
            out = stage.apply(out, np.random.default_rng(child))
            stats.append(InjectionStats(
                name=stage.name,
                severity=stage.severity,
                reports_in=n_in,
                reports_out=len(out),
            ))
        self._last_stats = tuple(stats)
        return out

    def describe(self) -> str:
        """One line per stage: name, severity, and last-run accounting."""
        if not self._stages:
            return "no-op chain"
        lines = []
        stats = {id(s): st for s, st in zip(self._stages, self._last_stats)}
        for stage in self._stages:
            st = stats.get(id(stage))
            tail = (f"  {st.reports_in} -> {st.reports_out} reports"
                    if st is not None else "")
            lines.append(f"{stage.name:<20} severity={stage.severity:g}{tail}")
        return "\n".join(lines)
