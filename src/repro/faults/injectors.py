"""Composable fault injectors over :class:`~repro.reader.tagreport.TagReport` streams.

The paper's evaluation runs against a healthy Impinj R420 in a quiet
office; its own Figs. 14-16 already show what contention and orientation
do to the read rate.  A production deployment additionally sees tags die,
antenna ports fail, reports arrive late or twice, and phase readings
glitch.  Each injector here models one such failure as a *seeded,
severity-parameterised transform* over a report stream, so robustness
experiments are exactly repeatable:

* every injector takes a ``severity`` in ``[0, 1]``;
* at severity 0 the output is the input, byte for byte (the same report
  objects in the same order) — a chain of severity-0 injectors is a
  provable no-op;
* all randomness comes from the :class:`numpy.random.Generator` passed to
  :meth:`FaultInjector.apply`, normally owned by a
  :class:`~repro.faults.chain.FaultChain` that derives one child generator
  per stage from a single master seed.

Injectors never mutate reports (they are frozen dataclasses); perturbed
reads are rebuilt with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FaultInjectionError
from ..reader.tagreport import TagReport
from ..units import TWO_PI, wavelength

#: Mid-band FCC carrier wavelength [m] used to turn burst kinematics into
#: phase/Doppler perturbations (channel-exact wavelengths would need the
#: hop table; the ~1% spread across the band does not matter here).
_NOMINAL_LAMBDA_M = float(wavelength(915.0e6))


def _span(reports: Sequence[TagReport]) -> Tuple[float, float]:
    """First/last timestamp of a non-empty report sequence."""
    times = [r.timestamp_s for r in reports]
    return min(times), max(times)


def _in_windows(t: float, windows: Sequence[Tuple[float, float]]) -> bool:
    return any(lo <= t < hi for lo, hi in windows)


def _alternating_outage_windows(
    rng: np.random.Generator,
    t0: float,
    t1: float,
    loss_fraction: float,
    mean_outage_s: float,
) -> List[Tuple[float, float]]:
    """Gilbert-Elliott style on/off windows over ``[t0, t1]``.

    A two-state continuous-time channel alternates between a good state and
    a bad (losing) state with exponentially distributed sojourn times.  The
    mean bad sojourn is ``mean_outage_s`` and the mean good sojourn is
    chosen so the stationary bad fraction equals ``loss_fraction``.
    """
    mean_good_s = mean_outage_s * (1.0 - loss_fraction) / loss_fraction
    windows: List[Tuple[float, float]] = []
    bad = bool(rng.random() < loss_fraction)
    t = t0
    while t <= t1:
        duration = float(rng.exponential(mean_outage_s if bad else mean_good_s))
        if bad:
            windows.append((t, t + duration))
        t += duration
        bad = not bad
    return windows


class FaultInjector(ABC):
    """One failure mode as a severity-parameterised stream transform.

    Subclasses are frozen dataclasses whose first field is ``severity``;
    they validate their parameters at construction (raising
    :class:`~repro.errors.FaultInjectionError`) and implement
    :meth:`_transform`, which is only invoked for ``severity > 0`` on a
    non-empty stream.
    """

    #: Short machine-readable injector name (stats / CLI tables).
    name: str = "fault"

    severity: float  # supplied by the dataclass subclasses

    def _validate_severity(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise FaultInjectionError(
                f"{self.name}: severity must be in [0, 1], got {self.severity}"
            )

    def apply(self, reports: Sequence[TagReport],
              rng: np.random.Generator) -> List[TagReport]:
        """Transform a report stream; severity 0 returns it unchanged."""
        if self.severity == 0.0 or not reports:
            return list(reports)
        return self._transform(list(reports), rng)

    @abstractmethod
    def _transform(self, reports: List[TagReport],
                   rng: np.random.Generator) -> List[TagReport]:
        """The actual perturbation (severity > 0, non-empty input)."""


# ----------------------------------------------------------------------
# Report loss
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReportDrop(FaultInjector):
    """Drop each report independently with probability ``severity``.

    The i.i.d. loss model: thins the stream uniformly, the way generic RF
    noise or a congested LLRP link loses individual reports.
    """

    severity: float
    name = "report_drop"

    def __post_init__(self) -> None:
        self._validate_severity()

    def _transform(self, reports, rng):
        keep = rng.random(len(reports)) >= self.severity
        return [r for r, k in zip(reports, keep) if k]


@dataclass(frozen=True)
class BurstyDrop(FaultInjector):
    """Gilbert-Elliott bursty loss: whole stretches of the stream vanish.

    ``severity`` is the long-run fraction of *time* spent in the losing
    state; ``burst_s`` is the mean loss-burst duration.  Bursty loss is
    much harsher than i.i.d. loss at equal fraction — it opens seconds-long
    gaps in every tag's stream at once, the pattern real interference and
    reader stalls produce.
    """

    severity: float
    burst_s: float = 1.0
    name = "bursty_drop"

    def __post_init__(self) -> None:
        self._validate_severity()
        if self.burst_s <= 0:
            raise FaultInjectionError("bursty_drop: burst_s must be > 0")

    def _transform(self, reports, rng):
        if self.severity >= 1.0:
            return []
        t0, t1 = _span(reports)
        windows = _alternating_outage_windows(
            rng, t0, t1, self.severity, self.burst_s)
        return [r for r in reports if not _in_windows(r.timestamp_s, windows)]


@dataclass(frozen=True)
class InterferenceBurst(FaultInjector):
    """Discrete interference events that gate whole time windows.

    Models a co-channel jammer / forklift / microwave firing
    ``~severity * span / burst_s`` times during the capture, each event
    wiping ``burst_s`` seconds of *every* tag's reports.  Unlike
    :class:`BurstyDrop` the number of events is deterministic given the
    span, so campaigns can sweep "k jam events of d seconds".
    """

    severity: float
    burst_s: float = 1.0
    name = "interference_burst"

    def __post_init__(self) -> None:
        self._validate_severity()
        if self.burst_s <= 0:
            raise FaultInjectionError("interference_burst: burst_s must be > 0")

    def _transform(self, reports, rng):
        t0, t1 = _span(reports)
        span = max(t1 - t0, self.burst_s)
        n_bursts = max(1, int(round(self.severity * span / self.burst_s)))
        starts = rng.uniform(t0, max(t0, t1 - self.burst_s), size=n_bursts)
        windows = [(s, s + self.burst_s) for s in starts]
        return [r for r in reports if not _in_windows(r.timestamp_s, windows)]


# ----------------------------------------------------------------------
# Per-tag and per-antenna outages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TagDropout(FaultInjector):
    """Intermittent per-tag outages (detuning, crumpled clothing, shadowing).

    Each (user, tag) stream gets its own independent Gilbert-Elliott
    outage process: ``severity`` is the per-stream fraction of time the
    tag is unreadable, ``outage_s`` the mean outage duration.  Streams are
    processed in sorted key order so results are seed-deterministic.
    """

    severity: float
    outage_s: float = 1.0
    name = "tag_dropout"

    def __post_init__(self) -> None:
        self._validate_severity()
        if self.outage_s <= 0:
            raise FaultInjectionError("tag_dropout: outage_s must be > 0")

    def _transform(self, reports, rng):
        if self.severity >= 1.0:
            return []
        t0, t1 = _span(reports)
        streams = sorted({r.stream_key for r in reports})
        windows = {
            key: _alternating_outage_windows(rng, t0, t1, self.severity,
                                             self.outage_s)
            for key in streams
        }
        return [r for r in reports
                if not _in_windows(r.timestamp_s, windows[r.stream_key])]


@dataclass(frozen=True)
class TagDeath(FaultInjector):
    """Permanent tag death: a tag stops reporting and never comes back.

    ``num_victims`` streams (chosen by the seeded generator) die at
    ``t_end - severity * span`` — i.e. ``severity`` is the fraction of the
    capture each victim spends dead.  severity 1 means the victim never
    reported at all.
    """

    severity: float
    num_victims: int = 1
    name = "tag_death"

    def __post_init__(self) -> None:
        self._validate_severity()
        if self.num_victims < 1:
            raise FaultInjectionError("tag_death: num_victims must be >= 1")

    def _transform(self, reports, rng):
        t0, t1 = _span(reports)
        death_time = t1 - self.severity * (t1 - t0)
        streams = sorted({r.stream_key for r in reports})
        n = min(self.num_victims, len(streams))
        victim_idx = rng.choice(len(streams), size=n, replace=False)
        victims = {streams[i] for i in victim_idx}
        return [r for r in reports
                if r.stream_key not in victims or r.timestamp_s < death_time]


@dataclass(frozen=True)
class AntennaOutage(FaultInjector):
    """One antenna port goes silent for a contiguous window.

    Models a kicked cable, port driver crash, or RF front-end fault:
    every report delivered via ``port`` inside the outage window is lost.
    The window is ``severity * span`` long; ``align`` places it at the
    ``"start"`` or ``"end"`` of the capture or (default) uniformly at
    ``"random"``.  ``port=None`` picks the busiest observed port, the
    worst-case victim.
    """

    severity: float
    port: Optional[int] = None
    align: str = "random"
    name = "antenna_outage"

    def __post_init__(self) -> None:
        self._validate_severity()
        if self.port is not None and self.port < 1:
            raise FaultInjectionError("antenna_outage: port is 1-based")
        if self.align not in ("random", "start", "end"):
            raise FaultInjectionError(
                f"antenna_outage: align must be random/start/end, got {self.align!r}")

    def _transform(self, reports, rng):
        t0, t1 = _span(reports)
        length = self.severity * (t1 - t0)
        if self.align == "start":
            lo = t0
        elif self.align == "end":
            lo = t1 - length
        else:
            lo = float(rng.uniform(t0, max(t0, t1 - length)))
        hi = lo + length
        port = self.port
        if port is None:
            counts: dict = {}
            for r in reports:
                counts[r.antenna_port] = counts.get(r.antenna_port, 0) + 1
            port = max(sorted(counts), key=lambda p: counts[p])
        # Half-open on the left so an align="end" window still gates the
        # final report (whose timestamp equals the span end).
        return [r for r in reports
                if r.antenna_port != port
                or not (lo <= r.timestamp_s <= hi)]


# ----------------------------------------------------------------------
# Measurement corruption
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseOutliers(FaultInjector):
    """Gross phase glitches on random reads.

    Each report is corrupted with probability ``severity``: its phase is
    offset by a uniformly signed draw in ``[magnitude_rad / 2,
    magnitude_rad]`` (wrapped back into ``[0, 2*pi)``) — the single-read
    garbage a marginal decode produces, far outside thermal phase noise.
    """

    severity: float
    magnitude_rad: float = float(np.pi)
    name = "phase_outliers"

    def __post_init__(self) -> None:
        self._validate_severity()
        if self.magnitude_rad <= 0:
            raise FaultInjectionError("phase_outliers: magnitude_rad must be > 0")

    def _transform(self, reports, rng):
        hit = rng.random(len(reports)) < self.severity
        magnitudes = rng.uniform(0.5, 1.0, len(reports)) * self.magnitude_rad
        signs = rng.choice((-1.0, 1.0), len(reports))
        out = []
        for report, h, mag, sign in zip(reports, hit, magnitudes, signs):
            if h:
                report = replace(
                    report,
                    phase_rad=float((report.phase_rad + sign * mag) % TWO_PI),
                )
            out.append(report)
        return out


@dataclass(frozen=True)
class PhasePiFlips(FaultInjector):
    """The pi-ambiguity flip of backscatter phase measurement.

    Commodity readers recover phase modulo pi, not 2*pi (the paper's
    Eq. 1 context; the half-wavelength ambiguity).  A decoder resolving
    the ambiguity the wrong way shifts a read by exactly pi — injected
    here on each report with probability ``severity``.
    """

    severity: float
    name = "phase_pi_flips"

    def __post_init__(self) -> None:
        self._validate_severity()

    def _transform(self, reports, rng):
        hit = rng.random(len(reports)) < self.severity
        return [
            replace(r, phase_rad=float((r.phase_rad + np.pi) % TWO_PI))
            if h else r
            for r, h in zip(reports, hit)
        ]


# ----------------------------------------------------------------------
# Delivery faults
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TimestampJitter(FaultInjector):
    """Timestamping noise: every report's clock reading wobbles.

    Each timestamp moves by ``severity * uniform(-max_jitter_s,
    +max_jitter_s)`` while the delivery *order* stays as-is, so at
    meaningful severities neighbouring reports swap timestamps and the
    stream stops being monotonic — exactly the brittleness the hardened
    pipeline must absorb.
    """

    severity: float
    max_jitter_s: float = 0.05
    name = "timestamp_jitter"

    def __post_init__(self) -> None:
        self._validate_severity()
        if self.max_jitter_s <= 0:
            raise FaultInjectionError("timestamp_jitter: max_jitter_s must be > 0")

    def _transform(self, reports, rng):
        offsets = self.severity * rng.uniform(
            -self.max_jitter_s, self.max_jitter_s, len(reports))
        return [
            replace(r, timestamp_s=float(r.timestamp_s + dt))
            for r, dt in zip(reports, offsets)
        ]


@dataclass(frozen=True)
class DuplicateReports(FaultInjector):
    """Exact duplicate delivery of random reports.

    LLRP readers re-deliver reports after keepalive hiccups; with
    probability ``severity`` a report is emitted twice back to back,
    byte-identical both times.
    """

    severity: float
    name = "duplicate_reports"

    def __post_init__(self) -> None:
        self._validate_severity()

    def _transform(self, reports, rng):
        dup = rng.random(len(reports)) < self.severity
        out: List[TagReport] = []
        for report, d in zip(reports, dup):
            out.append(report)
            if d:
                out.append(report)
        return out


@dataclass(frozen=True)
class OutOfOrderDelivery(FaultInjector):
    """Late delivery: reports keep their timestamps but arrive reordered.

    With probability ``severity`` a report's *delivery* is delayed by
    ``uniform(0, max_delay_s]`` so it lands after younger reports — the
    network-reordering fault of a buffered LLRP TCP stream.  Timestamps
    are untouched; only the sequence order changes.
    """

    severity: float
    max_delay_s: float = 0.2
    name = "out_of_order"

    def __post_init__(self) -> None:
        self._validate_severity()
        if self.max_delay_s <= 0:
            raise FaultInjectionError("out_of_order: max_delay_s must be > 0")

    def _transform(self, reports, rng):
        delayed = rng.random(len(reports)) < self.severity
        delays = rng.uniform(0.0, self.max_delay_s, len(reports))
        delivery = [
            r.timestamp_s + (dt if d else 0.0)
            for r, d, dt in zip(reports, delayed, delays)
        ]
        order = np.argsort(delivery, kind="stable")
        return [reports[i] for i in order]


# ----------------------------------------------------------------------
# Subject motion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MotionBurst(FaultInjector):
    """Gross body-motion bursts: the subject shifts, turns, or walks.

    The paper's pipeline (and its evaluation) assumes a mostly-still
    subject; this injector breaks that assumption on purpose.  Each
    burst moves the whole tag array through a smooth raised-cosine
    excursion of ``excursion_m`` metres over ``burst_s`` seconds:
    inside the window every report's phase advances by the Eq. 3
    displacement term (``4*pi*d/lambda``, wrapped) and its Doppler
    reading picks up the coherent ``v/lambda`` shift that the motion
    detector (:mod:`repro.core.motion`) keys on.  After a burst the
    phase offset *persists* — the body settled somewhere new.

    ``severity`` scales burst coverage exactly like
    :class:`InterferenceBurst`: about ``severity * span / burst_s``
    bursts per capture, each at a seeded start time with a seeded
    direction.
    """

    severity: float
    burst_s: float = 3.0
    excursion_m: float = 1.5
    name = "motion_burst"

    def __post_init__(self) -> None:
        self._validate_severity()
        if self.burst_s <= 0:
            raise FaultInjectionError("motion_burst: burst_s must be > 0")
        if self.excursion_m <= 0:
            raise FaultInjectionError("motion_burst: excursion_m must be > 0")

    def _transform(self, reports, rng):
        t0, t1 = _span(reports)
        span = max(t1 - t0, self.burst_s)
        n_bursts = max(1, int(round(self.severity * span / self.burst_s)))
        starts = rng.uniform(t0, max(t0, t1 - self.burst_s), size=n_bursts)
        signs = rng.choice((-1.0, 1.0), size=n_bursts)
        times = np.array([r.timestamp_s for r in reports])
        disp = np.zeros(times.shape[0])
        vel = np.zeros(times.shape[0])
        peak_v = self.excursion_m * np.pi / (2.0 * self.burst_s)
        for start, sign in zip(starts, signs):
            u = np.clip((times - start) / self.burst_s, 0.0, 1.0)
            disp += sign * self.excursion_m * (1.0 - np.cos(np.pi * u)) / 2.0
            vel += sign * peak_v * np.sin(np.pi * u)
        phase_delta = 2.0 * TWO_PI * disp / _NOMINAL_LAMBDA_M
        doppler_delta = vel / _NOMINAL_LAMBDA_M
        moved = (disp != 0.0) | (vel != 0.0)
        return [
            replace(
                r,
                phase_rad=float((r.phase_rad + dp) % TWO_PI),
                doppler_hz=float(r.doppler_hz + dd),
            ) if m else r
            for r, m, dp, dd in zip(reports, moved, phase_delta, doppler_delta)
        ]


#: Every concrete injector class, for property tests and CLI listings.
ALL_INJECTORS = (
    ReportDrop,
    BurstyDrop,
    InterferenceBurst,
    TagDropout,
    TagDeath,
    AntennaOutage,
    PhaseOutliers,
    PhasePiFlips,
    TimestampJitter,
    DuplicateReports,
    OutOfOrderDelivery,
    MotionBurst,
)
