"""Fault injection for robustness campaigns.

This package sits between capture production
(:func:`repro.sim.engine.run_scenario` / :meth:`repro.reader.reader.Reader.run`)
and capture consumption (:class:`repro.core.pipeline.TagBreathe`): seeded,
chainable transforms that perturb a
:class:`~repro.reader.tagreport.TagReport` stream with the failures a
deployed RFID installation actually sees — report loss (i.i.d. and
bursty), tag dropout and permanent death, antenna-port outages, phase
glitches and pi-ambiguity flips, timestamp jitter, duplicate and
out-of-order delivery, interference bursts, and gross
subject-motion bursts.

Every injector is severity-parameterised with a guaranteed identity at
severity 0, and every chain is reproducible under a fixed seed.  See
DESIGN.md "Failure modes & degradation" for the injector -> paper
phenomenon -> pipeline counter map.
"""

from .chain import FaultChain, InjectionStats
from .injectors import (
    ALL_INJECTORS,
    AntennaOutage,
    BurstyDrop,
    DuplicateReports,
    FaultInjector,
    InterferenceBurst,
    MotionBurst,
    OutOfOrderDelivery,
    PhaseOutliers,
    PhasePiFlips,
    ReportDrop,
    TagDeath,
    TagDropout,
    TimestampJitter,
)

__all__ = [
    "FaultChain",
    "InjectionStats",
    "FaultInjector",
    "ALL_INJECTORS",
    "ReportDrop",
    "BurstyDrop",
    "InterferenceBurst",
    "TagDropout",
    "TagDeath",
    "AntennaOutage",
    "PhaseOutliers",
    "PhasePiFlips",
    "TimestampJitter",
    "DuplicateReports",
    "OutOfOrderDelivery",
    "MotionBurst",
]
