"""Streaming buffers for the realtime pipeline.

The paper's prototype processes reader output "in a pipelined manner" and
visualises breathing signals in realtime (Section V).  The streaming side of
:mod:`repro.core.pipeline` keeps recent samples in these buffers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import NonMonotonicTimeError, StreamError
from .timeseries import TimeSeries


#: Slots allocated up front by a fresh :class:`RingBuffer` (the backing
#: arrays grow geometrically toward ``capacity`` as samples arrive).
_INITIAL_ALLOC = 64


class RingBuffer:
    """Fixed-capacity FIFO of ``(time, value)`` samples.

    When full, appending evicts the oldest sample.  Times must be appended in
    strictly increasing order.

    ``capacity`` bounds retention, it does not eagerly allocate: the
    backing arrays start at ``min(capacity, 64)`` slots and double toward
    ``capacity`` as samples arrive, so a large-capacity buffer that only
    ever holds a few samples stays small.  Because growth completes
    before the buffer ever fills, the write head wraps only once the
    allocation has reached ``capacity`` — growth is always a contiguous
    prefix copy.

    Args:
        capacity: maximum number of retained samples.

    Raises:
        StreamError: if ``capacity`` is not a positive integer.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise StreamError(f"capacity must be > 0, got {capacity}")
        self._capacity = int(capacity)
        self._alloc = min(self._capacity, _INITIAL_ALLOC)
        self._times = np.zeros(self._alloc, dtype=float)
        self._values = np.zeros(self._alloc, dtype=float)
        self._head = 0  # next write slot
        self._size = 0
        self._dropped = 0

    @property
    def capacity(self) -> int:
        """Maximum number of samples retained."""
        return self._capacity

    @property
    def allocated(self) -> int:
        """Slots currently backed by memory (<= :attr:`capacity`)."""
        return self._alloc

    @property
    def nbytes(self) -> int:
        """Resident bytes of the backing arrays."""
        return int(self._times.nbytes + self._values.nbytes)

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        """True when the next append will evict."""
        return self._size == self._capacity

    def last_time(self) -> Optional[float]:
        """Timestamp of the newest sample, or None when empty."""
        if self._size == 0:
            return None
        return float(self._times[(self._head - 1) % self._alloc])

    def _grow(self) -> None:
        # Only reached while alloc < capacity, i.e. before any wrap:
        # the live samples are the prefix [0, size), so growth is one
        # contiguous copy.
        new_alloc = min(self._capacity, self._alloc * 2)
        times = np.zeros(new_alloc, dtype=float)
        values = np.zeros(new_alloc, dtype=float)
        times[: self._size] = self._times[: self._size]
        values[: self._size] = self._values[: self._size]
        self._times, self._values = times, values
        self._alloc = new_alloc
        # The write cursor wrapped to 0 the instant the old allocation
        # filled; the live prefix now ends at size, so write there next.
        self._head = self._size

    def append(self, time: float, value: float) -> None:
        """Append one sample.

        Raises:
            NonMonotonicTimeError: if ``time`` does not increase.
        """
        last = self.last_time()
        if last is not None and time <= last:
            raise NonMonotonicTimeError(
                f"append time {time} <= last buffered time {last}"
            )
        if self._size == self._alloc and self._alloc < self._capacity:
            self._grow()
        self._times[self._head] = time
        self._values[self._head] = value
        self._head = (self._head + 1) % self._alloc
        if self._size < self._capacity:
            self._size += 1

    def offer(self, time: float, value: float) -> bool:
        """Tolerant :meth:`append`: drop-and-count instead of raising.

        The fault-hardened streaming path uses this so one late or
        duplicate sample cannot take down a realtime consumer; the drop
        total is kept in :attr:`dropped`.

        Returns:
            True when the sample was buffered, False when it was dropped
            for non-increasing time.
        """
        last = self.last_time()
        if last is not None and time <= last:
            self._dropped += 1
            return False
        self.append(time, value)
        return True

    @property
    def dropped(self) -> int:
        """Samples discarded by :meth:`offer` since construction/clear."""
        return self._dropped

    def extend(self, series: TimeSeries) -> None:
        """Append every sample of ``series`` in order."""
        for t, v in series:
            self.append(t, v)

    def snapshot(self) -> TimeSeries:
        """The buffered samples, oldest first, as a :class:`TimeSeries`."""
        if self._size == 0:
            return TimeSeries.empty()
        if self._size < self._alloc:
            t = self._times[: self._size]
            v = self._values[: self._size]
        else:
            t = np.roll(self._times, -self._head)
            v = np.roll(self._values, -self._head)
        return TimeSeries(t.copy(), v.copy())

    def clear(self) -> None:
        """Drop all samples, reset the drop counter, release memory."""
        self._head = 0
        self._size = 0
        self._dropped = 0
        initial = min(self._capacity, _INITIAL_ALLOC)
        if self._alloc > initial:
            self._alloc = initial
            self._times = np.zeros(initial, dtype=float)
            self._values = np.zeros(initial, dtype=float)


class StreamBuffer:
    """Unbounded append-only sample buffer with time-window trimming.

    The realtime pipeline keeps one per (user, tag) stream and periodically
    trims everything older than the analysis window.
    """

    def __init__(self) -> None:
        self._times: List[float] = []
        self._values: List[float] = []
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, value: float) -> None:
        """Append one sample (times must strictly increase).

        Raises:
            NonMonotonicTimeError: if ``time`` does not increase.
        """
        if self._times and time <= self._times[-1]:
            raise NonMonotonicTimeError(
                f"append time {time} <= last buffered time {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def offer(self, time: float, value: float) -> bool:
        """Tolerant :meth:`append`: drop non-increasing samples and count
        them in :attr:`dropped` instead of raising."""
        if self._times and time <= self._times[-1]:
            self._dropped += 1
            return False
        self.append(time, value)
        return True

    @property
    def dropped(self) -> int:
        """Samples discarded by :meth:`offer` since construction."""
        return self._dropped

    def last(self) -> Optional[Tuple[float, float]]:
        """Newest ``(time, value)`` pair, or None when empty."""
        if not self._times:
            return None
        return self._times[-1], self._values[-1]

    def trim_before(self, t_cut: float) -> int:
        """Drop samples with time < ``t_cut``; return how many were dropped."""
        idx = int(np.searchsorted(np.asarray(self._times), t_cut, side="left"))
        if idx > 0:
            del self._times[:idx]
            del self._values[:idx]
        return idx

    def snapshot(self) -> TimeSeries:
        """All buffered samples as a :class:`TimeSeries`."""
        return TimeSeries(list(self._times), list(self._values))

    def window(self, duration_s: float) -> TimeSeries:
        """The trailing ``duration_s`` seconds of samples."""
        if not self._times:
            return TimeSeries.empty()
        t_end = self._times[-1]
        snap = self.snapshot()
        return snap.slice_time(t_end - duration_s, t_end + np.finfo(float).eps * 10 + 1e-12)
