"""An immutable timestamped value sequence.

``TimeSeries`` is the lingua franca between the reader model (which emits
irregular tag reads), the preprocessing stage (displacement tracks), and the
extraction stage (filtered breathing signals).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple, Union

import numpy as np

from ..errors import EmptyStreamError, NonMonotonicTimeError, StreamError


class TimeSeries:
    """A pair of aligned arrays ``(times, values)`` with strictly increasing time.

    The class is deliberately small: it stores, validates, slices, and does
    simple arithmetic.  Signal processing lives in :mod:`repro.core`.

    Args:
        times: sample timestamps in seconds, strictly increasing.
        values: sample values, same length as ``times``.

    Raises:
        StreamError: if lengths differ or inputs are not 1-D.
        NonMonotonicTimeError: if timestamps are not strictly increasing.
    """

    __slots__ = ("_times", "_values")

    def __init__(self, times: Iterable[float], values: Iterable[float]) -> None:
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.ndim != 1 or v.ndim != 1:
            raise StreamError("times and values must be 1-D")
        if t.shape[0] != v.shape[0]:
            raise StreamError(
                f"length mismatch: {t.shape[0]} times vs {v.shape[0]} values"
            )
        if t.shape[0] > 1 and not np.all(np.diff(t) > 0):
            raise NonMonotonicTimeError("timestamps must be strictly increasing")
        t.setflags(write=False)
        v.setflags(write=False)
        self._times = t
        self._values = v

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_trusted(cls, times: np.ndarray, values: np.ndarray) -> "TimeSeries":
        """Wrap arrays the caller *guarantees* already satisfy the invariants.

        The validating constructor pays an ``np.diff`` + ``np.all`` pass
        per instance, which dominates the per-tick cost of the streaming
        hot path where thousands of short segments are built from slices
        of arrays that are strictly increasing by construction.  This
        fast path skips validation entirely; the caller owns the
        contract: both arguments must be 1-D float64 ``np.ndarray`` of
        equal length with strictly increasing times.  Anything arriving
        from outside the library must go through ``TimeSeries(...)``.
        """
        ts = object.__new__(cls)
        times.setflags(write=False)
        values.setflags(write=False)
        ts._times = times
        ts._values = values
        return ts

    @classmethod
    def empty(cls) -> "TimeSeries":
        """A series with no samples."""
        return cls(np.empty(0), np.empty(0))

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[float, float]]) -> "TimeSeries":
        """Build from an iterable of ``(time, value)`` pairs."""
        pair_list = list(pairs)
        if not pair_list:
            return cls.empty()
        t, v = zip(*pair_list)
        return cls(t, v)

    @classmethod
    def regular(cls, values: Iterable[float], rate_hz: float, t0: float = 0.0) -> "TimeSeries":
        """Build a regularly sampled series at ``rate_hz`` starting at ``t0``.

        Raises:
            StreamError: if ``rate_hz`` is not strictly positive.
        """
        if rate_hz <= 0:
            raise StreamError(f"rate_hz must be > 0, got {rate_hz}")
        v = np.asarray(list(values), dtype=float)
        t = t0 + np.arange(v.shape[0]) / rate_hz
        return cls(t, v)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Read-only timestamp array [s]."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """Read-only value array."""
        return self._values

    def __len__(self) -> int:
        return int(self._times.shape[0])

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return zip(self._times.tolist(), self._values.tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return bool(
            np.array_equal(self._times, other._times)
            and np.array_equal(self._values, other._values)
        )

    def __repr__(self) -> str:
        if not self:
            return "TimeSeries(empty)"
        return (
            f"TimeSeries(n={len(self)}, span=[{self.start:.3f}, {self.end:.3f}]s, "
            f"mean_rate={self.mean_rate_hz():.1f}Hz)"
        )

    # ------------------------------------------------------------------
    # Properties of the time axis
    # ------------------------------------------------------------------
    @property
    def start(self) -> float:
        """First timestamp.

        Raises:
            EmptyStreamError: on an empty series.
        """
        self._require_nonempty("start")
        return float(self._times[0])

    @property
    def end(self) -> float:
        """Last timestamp.

        Raises:
            EmptyStreamError: on an empty series.
        """
        self._require_nonempty("end")
        return float(self._times[-1])

    @property
    def duration(self) -> float:
        """``end - start`` (0 for series with fewer than 2 samples)."""
        if len(self) < 2:
            return 0.0
        return self.end - self.start

    def mean_rate_hz(self) -> float:
        """Average sampling rate over the whole span (0 if < 2 samples)."""
        if len(self) < 2 or self.duration == 0.0:
            return 0.0
        return (len(self) - 1) / self.duration

    # ------------------------------------------------------------------
    # Transformations (each returns a new TimeSeries)
    # ------------------------------------------------------------------
    def slice_time(self, t_start: float, t_end: float) -> "TimeSeries":
        """Samples with ``t_start <= t < t_end``."""
        mask = (self._times >= t_start) & (self._times < t_end)
        return TimeSeries(self._times[mask], self._values[mask])

    def shift_time(self, offset: float) -> "TimeSeries":
        """Add ``offset`` to every timestamp."""
        return TimeSeries(self._times + offset, self._values)

    def map_values(self, func) -> "TimeSeries":
        """Apply a vectorised function to the values."""
        return TimeSeries(self._times, func(self._values))

    def demean(self) -> "TimeSeries":
        """Subtract the mean value (no-op on an empty series)."""
        if not self:
            return self
        return TimeSeries.from_trusted(
            self._times, self._values - self._values.mean())

    def normalize(self) -> "TimeSeries":
        """Scale to zero mean and unit peak amplitude.

        The paper normalises displacement tracks before plotting (Fig. 6).
        A constant series maps to all zeros.
        """
        if not self:
            return self
        centered = self._values - self._values.mean()
        peak = np.abs(centered).max()
        if peak == 0.0:
            return TimeSeries(self._times, centered)
        return TimeSeries(self._times, centered / peak)

    def cumsum(self) -> "TimeSeries":
        """Cumulative sum of values (Eq. 4 / Eq. 7 accumulation)."""
        return TimeSeries.from_trusted(self._times, np.cumsum(self._values))

    def diff(self) -> "TimeSeries":
        """First difference of values, timestamped at the later sample."""
        if len(self) < 2:
            return TimeSeries.empty()
        return TimeSeries.from_trusted(self._times[1:], np.diff(self._values))

    def concat(self, other: "TimeSeries") -> "TimeSeries":
        """Append ``other`` (which must start strictly after this series ends)."""
        if not self:
            return other
        if not other:
            return self
        if other.start <= self.end:
            raise NonMonotonicTimeError(
                f"cannot concat: other starts at {other.start} <= end {self.end}"
            )
        return TimeSeries(
            np.concatenate([self._times, other._times]),
            np.concatenate([self._values, other._values]),
        )

    @staticmethod
    def merge(series: Sequence["TimeSeries"]) -> "TimeSeries":
        """Interleave several series by time.

        Duplicate timestamps across the inputs are perturbed is *not* done;
        instead the later duplicate is dropped, keeping strict monotonicity.
        """
        nonempty = [s for s in series if s]
        if not nonempty:
            return TimeSeries.empty()
        if len(nonempty) == 1:
            return nonempty[0]
        t = np.concatenate([s.times for s in nonempty])
        v = np.concatenate([s.values for s in nonempty])
        order = np.argsort(t, kind="stable")
        t, v = t[order], v[order]
        keep = np.concatenate([[True], np.diff(t) > 0])
        return TimeSeries.from_trusted(t[keep], v[keep])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_nonempty(self, what: str) -> None:
        if not self:
            raise EmptyStreamError(f"cannot take {what} of an empty series")


Number = Union[int, float]
