"""Resampling irregular tag-read streams onto regular grids.

The Gen2 MAC delivers reads at irregular times, but the FFT low-pass filter
(paper Section IV-B) and the raw-data fusion (Eq. 6: sum of per-tag
displacement within each ``[t, t + dt]`` interval) both need a regular grid.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import EmptyStreamError, StreamError
from .timeseries import TimeSeries


def _bin_edges(t_start: float, t_end: float, bin_s: float) -> np.ndarray:
    if bin_s <= 0:
        raise StreamError(f"bin width must be > 0, got {bin_s}")
    if t_end <= t_start:
        raise StreamError(f"empty bin range [{t_start}, {t_end}]")
    n_bins = int(np.ceil((t_end - t_start) / bin_s))
    return t_start + np.arange(n_bins + 1) * bin_s


#: np.histogram's internal block size; inputs at most this long are
#: processed by it in a single block, which is the case the fast path
#: below replicates.
_HISTOGRAM_BLOCK = 65536


def _sorted_histogram(times: np.ndarray, edges: np.ndarray,
                      weights: np.ndarray = None) -> np.ndarray:
    """``np.histogram(times, bins=edges[, weights])`` for sorted ``times``.

    ``TimeSeries`` guarantees strictly increasing times, so the sort /
    argsort np.histogram performs per block is the identity permutation
    and its algorithm collapses to two ``searchsorted`` calls over the
    edges (the last edge closing right-inclusively) plus, for weighted
    sums, differences of the zero-prefixed weight cumsum.  This helper
    performs those *same float64 operations in the same order*, so the
    result is bit-for-bit what np.histogram returns — minus its
    validation and block machinery, which dominate on the per-tick
    streaming hot path.  Inputs longer than np.histogram's block size
    fall back to np.histogram (its per-block accumulation order would
    have to be replicated block-for-block).
    """
    if times.shape[0] > _HISTOGRAM_BLOCK:
        counts_or_sums, _ = np.histogram(times, bins=edges, weights=weights)
        return counts_or_sums
    idx = np.concatenate((times.searchsorted(edges[:-1], side="left"),
                          times.searchsorted(edges[-1:], side="right")))
    if weights is None:
        return np.diff(idx)
    cw = np.concatenate((np.zeros(1), weights.cumsum()))
    return np.diff(cw[idx])


def bin_sum(series: TimeSeries, bin_s: float,
            t_start: float = None, t_end: float = None) -> TimeSeries:
    """Sum values falling into each ``bin_s``-wide time bin (paper Eq. 6).

    Empty bins *inside a covered range* contribute 0 — physically, no
    reads means no *observed* displacement increment, which is the
    conservative choice Eq. 6 makes.  A range that contains **no samples
    at all** is an error, not an all-zero series: both binning functions
    share this contract (see :func:`bin_mean`), so callers cannot be
    surprised by one of them silently inventing a flat signal where the
    other raises.

    Args:
        series: input samples.
        bin_s: bin width Delta-t in seconds.
        t_start: left edge of the first bin (default: first sample time).
        t_end: right limit (default: last sample time, inclusive via epsilon).

    Returns:
        Regular series timestamped at bin centres.

    Raises:
        EmptyStreamError: if ``series`` is empty and no explicit range is
            given, or if no sample falls inside the requested range.
    """
    if not series and (t_start is None or t_end is None):
        raise EmptyStreamError("bin_sum of empty series needs explicit t_start/t_end")
    lo = series.start if t_start is None else t_start
    hi = (series.end + 1e-9) if t_end is None else t_end
    edges = _bin_edges(lo, hi, bin_s)
    counts = _sorted_histogram(series.times, edges)
    if not counts.any():
        raise EmptyStreamError("no samples fall inside the requested bin range")
    sums = _sorted_histogram(series.times, edges, weights=series.values)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return TimeSeries.from_trusted(centers, sums)


def bin_mean(series: TimeSeries, bin_s: float,
             t_start: float = None, t_end: float = None) -> TimeSeries:
    """Average values within each bin; empty bins are linearly interpolated.

    Used for RSSI / quality tracks where a mean (not a sum) is meaningful.
    Shares :func:`bin_sum`'s empty-range contract: a requested range that
    contains no samples raises ``EmptyStreamError`` (interpolation with
    zero anchors would be meaningless), while empty bins inside a covered
    range are filled by interpolating between the covered neighbours.

    Raises:
        EmptyStreamError: if ``series`` is empty and no explicit range is
            given, or if no sample falls inside the requested range.
    """
    if not series and (t_start is None or t_end is None):
        raise EmptyStreamError("bin_mean of empty series needs explicit t_start/t_end")
    lo = series.start if t_start is None else t_start
    hi = (series.end + 1e-9) if t_end is None else t_end
    edges = _bin_edges(lo, hi, bin_s)
    sums = _sorted_histogram(series.times, edges, weights=series.values)
    counts = _sorted_histogram(series.times, edges)
    centers = (edges[:-1] + edges[1:]) / 2.0
    filled = counts > 0
    if not filled.any():
        raise EmptyStreamError("no samples fall inside the requested bin range")
    means = np.empty_like(sums)
    means[filled] = sums[filled] / counts[filled]
    if not filled.all():
        means[~filled] = np.interp(centers[~filled], centers[filled], means[filled])
    return TimeSeries.from_trusted(centers, means)


def resample_linear(series: TimeSeries, rate_hz: float) -> TimeSeries:
    """Linearly interpolate onto a regular grid at ``rate_hz``.

    Raises:
        EmptyStreamError: if the series has fewer than 2 samples.
        StreamError: if ``rate_hz`` is not strictly positive.
    """
    if rate_hz <= 0:
        raise StreamError(f"rate_hz must be > 0, got {rate_hz}")
    if len(series) < 2:
        raise EmptyStreamError("resample_linear needs at least 2 samples")
    n = max(2, int(np.floor(series.duration * rate_hz)) + 1)
    grid = series.start + np.arange(n) / rate_hz
    grid = grid[grid <= series.end + 1e-12]
    vals = np.interp(grid, series.times, series.values)
    return TimeSeries(grid, vals)


def sample_interval_stats(series: TimeSeries) -> Tuple[float, float, float]:
    """(mean, min, max) inter-sample interval of a series.

    Raises:
        EmptyStreamError: if fewer than 2 samples.
    """
    if len(series) < 2:
        raise EmptyStreamError("need at least 2 samples for interval stats")
    gaps = np.diff(series.times)
    return float(gaps.mean()), float(gaps.min()), float(gaps.max())
