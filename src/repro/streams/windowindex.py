"""A timestamp-ordered column store for incremental window queries.

The streaming pipeline answers the same question on every cadence tick:
"give me everything this user streamed in the trailing ``window_s``
seconds".  The naive answer — gather every per-stream buffer, filter,
sort — is O(buffered) per tick.  :class:`WindowIndex` keeps the per-user
report attributes in flat, timestamp-ordered numpy columns instead, so a
trailing window is two ``searchsorted`` calls and a contiguous slice:
O(log n) to locate, zero-copy to read.

Mechanics:

* columns live in growable arrays (amortised O(1) append, doubling
  capacity) that act as a ring over the engine's bounded-memory horizon:
  the front is compacted away as the horizon advances, the back grows;
* appends are fast-pathed for in-order arrival (the overwhelmingly
  common case — readers emit in time order); a cross-stream straggler is
  placed by binary search with an O(n) shift, rare enough not to matter;
* equal timestamps keep arrival order (stable, like a stable sort of the
  gathered buffers would).

The index stores *derived scalar columns* (port, RSSI, stream id), not
report objects — the raw reports stay in the engine's per-stream buffers,
which remain the checkpointed source of truth.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import StreamError

#: Initial capacity of a growable column (on first write).
_MIN_CAPACITY = 64

#: Shared zero-length arrays, one per (dtype, width): a freshly created
#: column holds one of these until its first write allocates real
#: capacity, making column creation nearly free (the batched ingest path
#: can create hundreds of chain columns in one call on a cold engine).
_EMPTY: dict = {}


class GrowableArray:
    """An append-mostly numpy array with amortised O(1) growth.

    Supports the three mutations the window index needs: append at the
    back, insert at an arbitrary position (rare straggler path), and
    drop-by-mask compaction (horizon pruning).  ``view()`` exposes the
    live prefix without copying.

    Args:
        dtype: element dtype.
        width: when given, rows are length-``width`` vectors — the array
            is 2-D with shape ``(n, width)`` and every mutation operates
            on whole rows.  The phase-chain columns use this to keep one
            chain's parallel per-sample attributes in a single array
            (one append per batch instead of one per attribute).
    """

    __slots__ = ("_arr", "_n")

    def __init__(self, dtype=np.float64, width: Optional[int] = None) -> None:
        key = (dtype, width)
        arr = _EMPTY.get(key)
        if arr is None:
            shape = 0 if width is None else (0, width)
            arr = _EMPTY[key] = np.empty(shape, dtype=dtype)
        self._arr = arr
        self._n = 0

    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        """Allocated slots (rows) in the backing array."""
        return int(self._arr.shape[0])

    @property
    def nbytes(self) -> int:
        """Resident bytes of the backing array (allocated, not live)."""
        return int(self._arr.nbytes)

    def view(self) -> np.ndarray:
        """The live samples (a view — do not hold across mutations)."""
        return self._arr[: self._n]

    def _grow_to(self, need: int) -> None:
        if need <= self._arr.shape[0]:
            return
        cap = max(self._arr.shape[0], _MIN_CAPACITY)
        while cap < need:
            cap *= 2
        shape = cap if self._arr.ndim == 1 else (cap, self._arr.shape[1])
        new = np.empty(shape, dtype=self._arr.dtype)
        new[: self._n] = self._arr[: self._n]
        self._arr = new

    def append(self, value) -> None:
        """Append one value at the back."""
        self._grow_to(self._n + 1)
        self._arr[self._n] = value
        self._n += 1

    def extend(self, values: np.ndarray) -> None:
        """Append many values at the back in one copy."""
        m = len(values)
        if not m:
            return
        n = self._n
        if n + m > self._arr.shape[0]:
            self._grow_to(n + m)
        self._arr[n: n + m] = values
        self._n = n + m

    def insert(self, position: int, value) -> None:
        """Insert ``value`` at ``position``, shifting the tail right."""
        self._grow_to(self._n + 1)
        self._arr[position + 1: self._n + 1] = self._arr[position: self._n]
        self._arr[position] = value
        self._n += 1

    def drop_front(self, count: int) -> None:
        """Discard the oldest ``count`` values."""
        if count <= 0:
            return
        keep = self._n - count
        self._arr[:keep] = self._arr[count: self._n]
        self._n = max(0, keep)
        self._maybe_shrink()

    def compact(self, keep_mask: np.ndarray) -> None:
        """Keep only the values where ``keep_mask`` is True."""
        kept = self._arr[: self._n][keep_mask]
        self._n = int(kept.shape[0])
        self._arr[: self._n] = kept
        self._maybe_shrink()

    def _maybe_shrink(self) -> None:
        """Release backing memory once the live prefix falls far enough.

        Doubling growth never shrinks on its own, so a column that once
        held a long history would pin its high-water allocation forever.
        Halve the capacity while the live count fits in a quarter of it
        (i.e. shrink only past 2x slack — hysteresis against grow/shrink
        thrash on a buffer oscillating around a power of two), landing
        the new capacity in ``[2n, 4n)`` with a floor of
        ``_MIN_CAPACITY``.
        """
        cap = self._arr.shape[0]
        if cap <= _MIN_CAPACITY:
            return
        target = cap
        while target > _MIN_CAPACITY and self._n * 4 <= target:
            target //= 2
        if target >= cap:
            return
        shape = target if self._arr.ndim == 1 else (target, self._arr.shape[1])
        new = np.empty(shape, dtype=self._arr.dtype)
        new[: self._n] = self._arr[: self._n]
        self._arr = new


class WindowIndex:
    """Timestamp-ordered parallel columns with trailing-window slicing.

    Args:
        columns: name -> numpy dtype of each side column (the ``time``
            column is implicit and always float64).

    Raises:
        StreamError: when a column is named ``time`` (reserved).
    """

    def __init__(self, columns: Dict[str, type]) -> None:
        if "time" in columns:
            raise StreamError("'time' is the implicit primary column")
        self._times = GrowableArray(np.float64)
        self._columns: Dict[str, GrowableArray] = {
            name: GrowableArray(dtype) for name, dtype in columns.items()
        }

    def __len__(self) -> int:
        return len(self._times)

    @property
    def nbytes(self) -> int:
        """Resident bytes across the time column and all side columns."""
        total = self._times.nbytes
        for arr in self._columns.values():
            total += arr.nbytes
        return total

    @property
    def times(self) -> np.ndarray:
        """The live timestamps, oldest first (a view)."""
        return self._times.view()

    def column(self, name: str) -> np.ndarray:
        """One side column's live values, time-ordered (a view)."""
        return self._columns[name].view()

    def last_time(self) -> Optional[float]:
        """Newest timestamp, or None when empty."""
        if not len(self):
            return None
        return float(self._times.view()[-1])

    def add(self, time: float, **values) -> None:
        """Add one row, keeping time order (stable for equal times).

        In-order arrival appends in O(1); a straggler older than the
        newest row is placed by binary search.
        """
        t = self._times.view()
        n = t.shape[0]
        if n == 0 or time >= t[-1]:
            self._times.append(time)
            for name, arr in self._columns.items():
                arr.append(values[name])
            return
        position = int(np.searchsorted(t, time, side="right"))
        self._times.insert(position, time)
        for name, arr in self._columns.items():
            arr.insert(position, values[name])

    def extend(self, times: np.ndarray, **values) -> None:
        """Bulk-append rows already in time order at or after the tail.

        The batched ingest fast path: equivalent to calling :meth:`add`
        row by row when every new time is >= the current newest time and
        ``times`` itself is non-decreasing (ties keep the given order,
        matching ``add``'s stable side="right" placement).

        Raises:
            StreamError: when the rows are not in order or would land
                before the current tail — callers must fall back to
                row-wise :meth:`add` in that case.
        """
        times = np.asarray(times, dtype=np.float64)
        m = times.shape[0]
        if not m:
            return
        tail = self.last_time()
        if tail is not None and times[0] < tail:
            raise StreamError(
                "bulk extend would land before the index tail; "
                "use row-wise add for stragglers")
        if m > 1 and np.any(times[1:] < times[:-1]):
            raise StreamError("bulk extend requires non-decreasing times")
        self._times.extend(times)
        for name, arr in self._columns.items():
            arr.extend(values[name])

    def window_bounds(self, t_low: float, t_high: float) -> Tuple[int, int]:
        """Index range ``[a, b)`` of rows with ``t_low < time <= t_high``.

        The half-open-below convention is the pinned trailing-window
        semantics shared by batch and streaming (see
        :func:`repro.streams.windows.trailing_window_bounds`).
        """
        t = self._times.view()
        a = int(np.searchsorted(t, t_low, side="right"))
        b = int(np.searchsorted(t, t_high, side="right"))
        return a, b

    def prune_before(self, t_cut: float,
                     where: Optional[np.ndarray] = None) -> int:
        """Drop rows with ``time < t_cut``; returns how many were dropped.

        Args:
            t_cut: the horizon — strictly older rows go.
            where: optional boolean mask (over the live rows) restricting
                the prune to a subset, e.g. one stream's rows; rows
                outside the mask are kept regardless of age.
        """
        t = self._times.view()
        if not t.shape[0] or t[0] >= t_cut:
            if where is None:
                return 0
        old = t < t_cut
        if where is not None:
            old = old & where
        dropped = int(old.sum())
        if not dropped:
            return 0
        keep = ~old
        self._times.compact(keep)
        for arr in self._columns.values():
            arr.compact(keep)
        return dropped
