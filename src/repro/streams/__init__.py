"""Time-series substrate used by every other subsystem.

The RFID reader reports irregularly-timed samples (reads happen whenever the
Gen2 MAC grants a slot), so the core abstraction is an irregular
:class:`~repro.streams.timeseries.TimeSeries` plus resampling onto the
regular grids that FFT-based processing needs.
"""

from .timeseries import TimeSeries
from .ringbuffer import RingBuffer, StreamBuffer
from .resample import bin_sum, bin_mean, resample_linear, sample_interval_stats
from .windows import sliding_windows, trailing_window_bounds, window_slices
from .windowindex import GrowableArray, WindowIndex

__all__ = [
    "TimeSeries",
    "RingBuffer",
    "StreamBuffer",
    "GrowableArray",
    "WindowIndex",
    "bin_sum",
    "bin_mean",
    "resample_linear",
    "sample_interval_stats",
    "sliding_windows",
    "trailing_window_bounds",
    "window_slices",
]
