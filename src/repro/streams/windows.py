"""Sliding-window iteration over time series.

The paper's realtime monitor recomputes the breathing estimate over a moving
window; the evaluation averages per-window estimates across a two-minute
trial (Section VI-B-1).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


from ..errors import StreamError
from .timeseries import TimeSeries


def trailing_window_bounds(t_latest: float,
                           window_s: float) -> Tuple[float, float]:
    """The pinned trailing analysis window ``(t_latest - window_s, t_latest]``.

    This is THE definition of "the last ``window_s`` seconds" everywhere
    in the pipeline — batch windowing (``TagBreathe.process(window_s=...)``),
    the streaming recompute path (``estimate_user_recompute``), and the
    incremental window index all share it so their report sets are
    identical by construction:

    * the newest report (``t == t_latest``) is **included** — it anchors
      the window;
    * a report exactly ``window_s`` old (``t == t_latest - window_s``) is
      **excluded** — the window is half-open below, so its span never
      exceeds ``window_s``.

    Returns:
        ``(t_low, t_high)`` — keep reports with ``t_low < t <= t_high``.

    Raises:
        StreamError: on a non-positive window.
    """
    if window_s <= 0:
        raise StreamError(f"window_s must be > 0, got {window_s}")
    return t_latest - window_s, t_latest


def window_slices(t_start: float, t_end: float, window_s: float,
                  step_s: float) -> List[Tuple[float, float]]:
    """Window boundaries ``[(w_start, w_end), ...]`` covering a span.

    The final window is anchored so it ends exactly at ``t_end`` (partial
    trailing data is never dropped); degenerate spans shorter than one
    window yield the single full span.

    Raises:
        StreamError: on non-positive window or step.
    """
    if window_s <= 0 or step_s <= 0:
        raise StreamError("window_s and step_s must be > 0")
    if t_end <= t_start:
        raise StreamError(f"empty span [{t_start}, {t_end}]")
    if t_end - t_start <= window_s:
        return [(t_start, t_end)]
    slices: List[Tuple[float, float]] = []
    w0 = t_start
    while w0 + window_s < t_end - 1e-12:
        slices.append((w0, w0 + window_s))
        w0 += step_s
    slices.append((t_end - window_s, t_end))
    return slices


def sliding_windows(series: TimeSeries, window_s: float,
                    step_s: float) -> Iterator[TimeSeries]:
    """Yield sub-series for each sliding window over ``series``.

    Windows with no samples are skipped.
    """
    if not series:
        return
    for w0, w1 in window_slices(series.start, series.end, window_s, step_s):
        sub = series.slice_time(w0, w1 + 1e-12)
        if sub:
            yield sub
