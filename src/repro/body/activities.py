"""Non-breathing body activity: transient motion bursts.

The paper's evaluation keeps subjects still, but real users shift in
their chairs, lean forward, reach for things.  Those transients are far
larger than breathing (centimetres vs millimetres) and briefly swamp the
phase signal; a robust monitor must survive them.  This module wraps any
breathing waveform with occasional smooth motion bursts so robustness
can be tested and the rate tracker's outlier gating exercised.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..errors import BodyModelError
from .waveforms import BreathingWaveform


class TransientMotion:
    """Pre-drawn schedule of smooth displacement bursts.

    Each burst is a raised-cosine excursion: the body leans out by
    ``amplitude`` and returns over ``duration`` seconds.  The schedule is
    drawn once (seeded) so evaluation stays reproducible.

    Args:
        rate_per_minute: average bursts per minute (Poisson).
        amplitude_m: peak excursion per burst.
        duration_s: burst length.
        horizon_s: schedule length.
        seed: RNG seed.

    Raises:
        BodyModelError: on invalid parameters.
    """

    def __init__(self, rate_per_minute: float = 2.0,
                 amplitude_m: float = 0.05,
                 duration_s: float = 1.5,
                 horizon_s: float = 600.0,
                 seed: Optional[int] = None) -> None:
        if rate_per_minute < 0:
            raise BodyModelError("rate_per_minute must be >= 0")
        if amplitude_m < 0:
            raise BodyModelError("amplitude_m must be >= 0")
        if duration_s <= 0:
            raise BodyModelError("duration_s must be > 0")
        if horizon_s <= 0:
            raise BodyModelError("horizon_s must be > 0")
        self._amp = float(amplitude_m)
        self._dur = float(duration_s)
        self._horizon = float(horizon_s)
        rng = np.random.default_rng(seed)
        self._bursts: List[float] = []
        if rate_per_minute > 0:
            t = 0.0
            mean_gap = 60.0 / rate_per_minute
            while t < horizon_s:
                t += float(rng.exponential(mean_gap))
                if t < horizon_s:
                    self._bursts.append(t)

    @property
    def burst_times(self) -> List[float]:
        """Scheduled burst onset times."""
        return list(self._bursts)

    def displacement(self, t: float) -> float:
        """Transient displacement [m] at time ``t``."""
        for start in self._bursts:
            if start <= t < start + self._dur:
                u = (t - start) / self._dur
                return self._amp * 0.5 * (1.0 - math.cos(2.0 * math.pi * u))
        return 0.0

    def displacement_array(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`displacement` over a time vector.

        Replicates the scalar path's first-match rule bit for bit (when
        two drawn bursts overlap, the earlier-scheduled one wins), so
        batched and per-instant trajectory synthesis agree exactly.
        """
        times = np.asarray(times, dtype=float)
        disp = np.zeros(times.shape)
        taken = np.zeros(times.shape, dtype=bool)
        for start in self._bursts:
            u = (times - start) / self._dur
            active = (u >= 0.0) & (u < 1.0) & ~taken
            disp[active] = self._amp * 0.5 * (
                1.0 - np.cos(2.0 * np.pi * u[active]))
            taken |= active
        return disp

    def is_active(self, t: float) -> bool:
        """True while a burst is in progress at ``t``."""
        return any(start <= t < start + self._dur for start in self._bursts)

    def active_windows(self) -> List[Tuple[float, float]]:
        """Ground-truth ``(start, end)`` of every scheduled burst."""
        return [(start, start + self._dur) for start in self._bursts]


class RestlessBreathing(BreathingWaveform):
    """A breathing waveform plus transient motion bursts.

    Wraps any :class:`~repro.body.waveforms.BreathingWaveform`; the
    ground-truth rate remains the wrapped waveform's (the bursts are
    interference, not breathing).

    Args:
        breathing: the underlying waveform.
        transients: the burst schedule.
    """

    def __init__(self, breathing: BreathingWaveform,
                 transients: TransientMotion) -> None:
        self._breathing = breathing
        self._transients = transients

    @property
    def transients(self) -> TransientMotion:
        """The wrapped burst schedule."""
        return self._transients

    def displacement(self, t: float) -> float:
        return self._breathing.displacement(t) + self._transients.displacement(t)

    def displacement_array(self, times: np.ndarray) -> np.ndarray:
        return (self._breathing.displacement_array(times)
                + self._transients.displacement_array(times))

    def true_rate_bpm(self, t_start: float, t_end: float) -> float:
        return self._breathing.true_rate_bpm(t_start, t_end)

    def clean_windows(self, t_start: float, t_end: float,
                      min_length_s: float = 10.0) -> List[Tuple[float, float]]:
        """Sub-windows of ``[t_start, t_end]`` free of bursts.

        A monitor that knows motion happened (e.g. from the same phase
        data's large excursions) would restrict analysis to these spans.

        Raises:
            BodyModelError: on an empty window.
        """
        if t_end <= t_start:
            raise BodyModelError("window must have positive duration")
        edges = [t_start]
        for start in self._transients.burst_times:
            if t_start < start < t_end:
                edges.extend([start, min(t_end, start + self._transients._dur)])
        edges.append(t_end)
        windows = []
        for a, b in zip(edges[::2], edges[1::2]):
            if b - a >= min_length_s:
                windows.append((a, b))
        return windows
