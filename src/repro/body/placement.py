"""Tag placement on the torso — the paper's three-tag array.

    "we place three tags on the upper body of each user: one on chest, one
    on lower abdomen, and one in between. Note that when a user inhales or
    exhales, the three tags' relative displacement to reader's antenna
    simultaneously decrease and increase, which allows us to constructively
    fuse the sensor data"  (Section IV-D-1)

Different users breathe differently ("some users breathe with chests while
other breathe with their abdomens"), so the displacement share of each
placement depends on the user's :class:`BreathingStyle`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from ..errors import BodyModelError


class BreathingStyle(Enum):
    """Where a user's breathing motion concentrates."""

    CHEST = "chest"
    ABDOMEN = "abdomen"
    MIXED = "mixed"


@dataclass(frozen=True)
class TagPlacement:
    """One tag's mounting spot on the torso.

    Attributes:
        name: placement label ("chest", "middle", "abdomen").
        height_offset_m: vertical offset from the torso reference point
            (positive = up).
        motion_share: fraction of the user's breathing displacement this
            spot exhibits, in [0, 1].
    """

    name: str
    height_offset_m: float
    motion_share: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.motion_share <= 1.0:
            raise BodyModelError(
                f"motion_share must be in [0, 1], got {self.motion_share}"
            )
        if abs(self.height_offset_m) > 1.0:
            raise BodyModelError("height_offset_m must be within +/- 1 m of torso centre")


#: Relative breathing-motion share per placement, by breathing style.
_MOTION_SHARES: Dict[BreathingStyle, Dict[str, float]] = {
    BreathingStyle.CHEST: {"chest": 1.0, "middle": 0.6, "abdomen": 0.3},
    BreathingStyle.ABDOMEN: {"chest": 0.3, "middle": 0.6, "abdomen": 1.0},
    BreathingStyle.MIXED: {"chest": 0.7, "middle": 0.7, "abdomen": 0.7},
}

#: Vertical offsets from the torso reference point [m].
_HEIGHT_OFFSETS: Dict[str, float] = {"chest": 0.15, "middle": 0.0, "abdomen": -0.15}

#: Placement order used when fewer than three tags are worn: the paper's
#: single-tag experiments put the tag on the chest.
_PLACEMENT_PRIORITY: List[str] = ["chest", "abdomen", "middle"]


def standard_placements(count: int = 3,
                        style: BreathingStyle = BreathingStyle.MIXED) -> List[TagPlacement]:
    """The paper's standard tag placements for ``count`` tags per user.

    Args:
        count: tags per user, 1–3 (Table I range).
        style: the user's breathing style, which sets each placement's
            share of the breathing motion.

    Returns:
        ``count`` placements: chest first, then abdomen, then middle —
        the order that maximises captured motion for any style.

    Raises:
        BodyModelError: if ``count`` is outside the Table I range.
    """
    if not 1 <= count <= 3:
        raise BodyModelError(f"tags per user must be 1-3 (Table I), got {count}")
    shares = _MOTION_SHARES[style]
    names = _PLACEMENT_PRIORITY[:count]
    return [
        TagPlacement(name=n, height_offset_m=_HEIGHT_OFFSETS[n], motion_share=shares[n])
        for n in names
    ]
