"""The instrumented human subject: geometry, posture, orientation, tags.

A :class:`Subject` places 1–3 tags on a torso (Section IV-D-1), drives
their positions with a breathing waveform plus postural sway, and exposes
the situational RF loss (orientation / LOS blockage) for each tag relative
to any antenna.  The :class:`repro.sim.scenario.Scenario` aggregates
subjects into the :class:`~repro.reader.reader.TagEnvironment` the reader
inventories.

Geometry convention: the reader antenna sits near the origin facing +x
(the paper mounts it 1 m above the ground); a subject at distance ``d``
stands/sits at ``(d, lateral_offset, torso height)``.  Orientation 0 means
facing the antenna (the paper's 0 deg = "front"), growing counter-clockwise
to 180 deg = facing away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..epc.codec import EPC96
from ..errors import BodyModelError
from ..reader.antenna import Antenna
from .blockage import orientation_loss_db
from .motion import BodySway
from .placement import BreathingStyle, TagPlacement, standard_placements
from .waveforms import BreathingWaveform, MetronomeBreathing

#: Torso reference height above ground per posture [m].
_TORSO_HEIGHT_M: Dict[str, float] = {"sitting": 1.0, "standing": 1.3, "lying": 0.5}

#: Share of breathing motion appearing along the lateral (rib-expansion)
#: axis relative to the frontal axis.  This is why accuracy degrades
#: gracefully rather than vanishing as the user rotates toward 90 deg
#: (Fig. 16: 90 % -> 85 %).
LATERAL_MOTION_SHARE = 0.45

#: For a lying subject the chest rises mostly vertically with a small
#: residual horizontal component.
_LYING_VERTICAL_SHARE = 0.94
_LYING_FRONTAL_SHARE = 0.35


@dataclass(frozen=True)
class BodyTag:
    """One tag worn by a subject.

    Attributes:
        user_id: the wearer's 64-bit user ID.
        tag_id: the 32-bit short tag ID (unique within the user).
        epc: the overwritten EPC (Fig. 9 layout).
        placement: where on the torso the tag sits.
    """

    user_id: int
    tag_id: int
    epc: EPC96
    placement: TagPlacement

    @property
    def key(self) -> tuple:
        """Hashable identity used as the environment tag key."""
        return (self.user_id, self.tag_id)


class Subject:
    """A breathing human wearing an array of RFID tags.

    Args:
        user_id: 64-bit user identity written into the tags' EPCs.
        distance_m: antenna-to-torso distance along +x (Table I: 1–6 m).
        orientation_deg: facing angle, 0 = toward the antenna (Table I).
        posture: "sitting", "standing", or "lying" (Table I).
        breathing: waveform; defaults to metronome-paced 10 bpm (the
            Table I default rate).
        style: chest vs abdominal breathing (Section IV-D-1).
        num_tags: tags worn, 1–3 (Table I).
        lateral_offset_m: sideways offset, used to seat multiple users
            "side by side" (Fig. 13's setup).
        sway: postural sway process; a small default sway is used when
            omitted, pass an explicit zero-amplitude BodySway to disable.
        sway_seed: seed for the default sway process.

    Raises:
        BodyModelError: on invalid posture or geometry.
    """

    def __init__(
        self,
        user_id: int,
        distance_m: float,
        orientation_deg: float = 0.0,
        posture: str = "sitting",
        breathing: Optional[BreathingWaveform] = None,
        style: BreathingStyle = BreathingStyle.MIXED,
        num_tags: int = 3,
        lateral_offset_m: float = 0.0,
        sway: Optional[BodySway] = None,
        sway_seed: Optional[int] = None,
    ) -> None:
        if distance_m <= 0:
            raise BodyModelError(f"distance must be > 0, got {distance_m}")
        if posture not in _TORSO_HEIGHT_M:
            raise BodyModelError(
                f"posture must be one of {sorted(_TORSO_HEIGHT_M)}, got {posture!r}"
            )
        if not 0.0 <= orientation_deg <= 180.0:
            raise BodyModelError("orientation must be in [0, 180] degrees")
        self.user_id = int(user_id)
        self.distance_m = float(distance_m)
        self.orientation_deg = float(orientation_deg)
        self.posture = posture
        self.breathing = breathing if breathing is not None else MetronomeBreathing(10.0)
        self.style = style
        self.lateral_offset_m = float(lateral_offset_m)
        self._sway = sway if sway is not None else BodySway(seed=sway_seed)
        placements = standard_placements(num_tags, style)
        self.tags: List[BodyTag] = [
            BodyTag(
                user_id=self.user_id,
                tag_id=i + 1,
                epc=EPC96.from_user_tag(self.user_id, i + 1),
                placement=p,
            )
            for i, p in enumerate(placements)
        ]
        self._tags_by_id = {t.tag_id: t for t in self.tags}

        psi = math.radians(self.orientation_deg)
        #: Horizontal facing unit vector (0 deg faces the antenna at -x).
        self._facing = np.array([-math.cos(psi), math.sin(psi), 0.0])
        #: Horizontal lateral unit vector (rib-expansion axis).
        self._lateral = np.array([-math.sin(psi), -math.cos(psi), 0.0])
        if posture == "lying":
            vertical = np.array([0.0, 0.0, 1.0])
            axis = _LYING_FRONTAL_SHARE * self._facing + _LYING_VERTICAL_SHARE * vertical
            self._breath_axis = axis / np.linalg.norm(axis)
            self._breath_lateral = self._lateral
        else:
            self._breath_axis = self._facing
            self._breath_lateral = self._lateral
        # Precomputed per-call invariants of tag_position_m: the combined
        # breathing direction and each tag's static mounting point.  The
        # arithmetic matches the per-call expressions exactly, so cached
        # and uncached evaluation give bit-identical positions.
        self._motion_axis = self._breath_axis + LATERAL_MOTION_SHARE * self._breath_lateral
        self._base_by_tag: Dict[int, np.ndarray] = {
            tag.tag_id: self.torso_reference_m()
            + np.array([0.0, 0.0, tag.placement.height_offset_m])
            for tag in self.tags
        }

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def torso_height_m(self) -> float:
        """Torso reference height for the current posture."""
        return _TORSO_HEIGHT_M[self.posture]

    def torso_reference_m(self) -> np.ndarray:
        """Static torso reference point (no breathing/sway applied)."""
        return np.array([self.distance_m, self.lateral_offset_m, self.torso_height_m])

    def tag_by_id(self, tag_id: int) -> BodyTag:
        """Look up a worn tag.

        Raises:
            BodyModelError: if this subject does not wear ``tag_id``.
        """
        tag = self._tags_by_id.get(tag_id)
        if tag is None:
            raise BodyModelError(f"user {self.user_id} wears no tag {tag_id}")
        return tag

    def tag_position_m(self, tag_id: int, t: float) -> np.ndarray:
        """Instantaneous 3-D position of a worn tag.

        Combines the static mounting point, the breathing displacement
        (scaled by the placement's motion share and directed along the
        posture-dependent chest axis plus a lateral component), and the
        shared postural sway.
        """
        tag = self.tag_by_id(tag_id)
        base = self._base_by_tag[tag_id]
        breath = self.breathing.displacement(t) * tag.placement.motion_share
        sway = self._sway.displacement(t)
        motion = breath * self._motion_axis
        return base + motion + sway * self._facing

    def tag_position_m_array(self, tag_id: int, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`tag_position_m`: ``(len(times), 3)`` positions.

        One waveform/sway evaluation over the whole time vector instead of
        a Python call per instant — the trajectory fast path the batched
        reader synthesis rides on.
        """
        tag = self.tag_by_id(tag_id)
        times = np.asarray(times, dtype=float)
        base = self._base_by_tag[tag_id]
        breath = self.breathing.displacement_array(times) * tag.placement.motion_share
        sway = self._sway.displacement_array(times)
        return (base
                + np.outer(breath, self._motion_axis)
                + np.outer(sway, self._facing))

    # ------------------------------------------------------------------
    # Situational RF loss
    # ------------------------------------------------------------------
    def effective_orientation_deg(self, antenna: Antenna) -> float:
        """The orientation angle *relative to a particular antenna*.

        Fig. 15 rotates the user against a single antenna; with multiple
        antennas placed around the room each one sees its own effective
        orientation, which is what makes per-user antenna selection
        (Section IV-D-3) worthwhile.
        """
        to_antenna = np.asarray(antenna.position_m, dtype=float) - self.torso_reference_m()
        horizontal = to_antenna.copy()
        horizontal[2] = 0.0
        norm = float(np.linalg.norm(horizontal))
        if norm == 0.0:
            return 0.0
        cos_angle = float(self._facing @ horizontal) / norm
        cos_angle = min(1.0, max(-1.0, cos_angle))
        return math.degrees(math.acos(cos_angle))

    def extra_loss_db(self, tag_id: int, t: float, antenna: Antenna) -> float:
        """Situational one-way loss for a worn tag toward ``antenna``.

        ``math.inf`` when the torso fully blocks the LOS path.
        """
        self.tag_by_id(tag_id)  # validates ownership
        return orientation_loss_db(self.effective_orientation_deg(antenna))

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def true_rate_bpm(self, t_start: float, t_end: float) -> float:
        """Ground-truth breathing rate over a window (the metronome value)."""
        return self.breathing.true_rate_bpm(t_start, t_end)

    def __repr__(self) -> str:
        return (
            f"Subject(user={self.user_id}, d={self.distance_m}m, "
            f"orient={self.orientation_deg}deg, {self.posture}, "
            f"{len(self.tags)} tags)"
        )
