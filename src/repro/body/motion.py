"""Non-breathing body motion: the slow postural sway of a seated person.

Even a person sitting "still" sways by fractions of a millimetre to a few
millimetres at frequencies overlapping the breathing band — one of the
reasons extraction from a single tag is harder than textbook filtering
would suggest, and part of why the paper fuses multiple tags (all tags on
one torso share the sway, but it partially decorrelates between the
antenna-projection of differently-placed tags).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import BodyModelError


class BodySway:
    """Sum-of-sinusoids postural sway displacement [m].

    A deterministic (seeded) quasi-random process: a handful of incommensurate
    low-frequency sinusoids with random phases.  Deterministic evaluation at
    arbitrary ``t`` keeps the simulation engine reproducible.

    Args:
        amplitude_m: total RMS-ish sway amplitude.
        band_hz: sway band (postural sway concentrates below ~0.5 Hz).
        components: number of sinusoids.
        seed: RNG seed for frequencies/phases.

    Raises:
        BodyModelError: on invalid parameters.
    """

    def __init__(self, amplitude_m: float = 0.0006,
                 band_hz: tuple = (0.02, 0.5),
                 components: int = 5,
                 seed: Optional[int] = None) -> None:
        if amplitude_m < 0:
            raise BodyModelError("amplitude must be >= 0")
        lo, hi = band_hz
        if not 0 < lo < hi:
            raise BodyModelError(f"invalid sway band {band_hz}")
        if components < 1:
            raise BodyModelError("need at least one component")
        rng = np.random.default_rng(seed)
        self._freqs = rng.uniform(lo, hi, size=components)
        self._phases = rng.uniform(0.0, 2.0 * math.pi, size=components)
        weights = rng.uniform(0.5, 1.0, size=components)
        norm = math.sqrt(float(np.sum(weights ** 2) / 2.0))
        self._amps = amplitude_m * weights / norm if norm > 0 else weights * 0.0

    def displacement(self, t: float) -> float:
        """Sway displacement [m] at time ``t`` (along the line of sight)."""
        return float(np.sum(self._amps * np.sin(2.0 * math.pi * self._freqs * t + self._phases)))

    def displacement_array(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`displacement`."""
        arg = 2.0 * math.pi * np.outer(times, self._freqs) + self._phases
        return (np.sin(arg) * self._amps).sum(axis=1)
