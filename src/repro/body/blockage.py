"""Line-of-sight blockage and orientation loss — the physics behind Fig. 15.

The paper rotates a user from facing the antenna (0 deg) to facing away
(180 deg) and observes:

* RSSI of *successful* reads roughly flat while LOS exists (0–90 deg);
* read rate falling from ~50 Hz at 0 deg to ~10 Hz at 90 deg;
* no reads at all once the body blocks the LOS path (> 90 deg).

We model this as an orientation-dependent one-way loss applied to the
link budget: a smooth gain reduction up to 90 deg (tag antenna pattern and
partial body shadowing shrink the power-up margin, thinning out successful
reads) and infinite loss beyond (the torso — mostly water — absorbs the
UHF signal entirely).
"""

from __future__ import annotations

import math

from ..errors import BodyModelError

#: Orientation beyond which the torso fully blocks the LOS path [deg].
LOS_BLOCKAGE_THRESHOLD_DEG = 90.0

#: One-way loss at exactly 90 degrees [dB]; calibrated so the read rate at
#: 4 m falls from ~50 Hz (0 deg) to ~10 Hz (90 deg) as in Fig. 15(b).
LOSS_AT_90_DEG_DB = 8.0


def is_los_blocked(orientation_deg: float,
                   threshold_deg: float = LOS_BLOCKAGE_THRESHOLD_DEG) -> bool:
    """True when the user's body fully blocks the tag–antenna path.

    Orientation is the paper's convention: 0 = facing the antenna,
    180 = facing away; the magnitude is what matters.

    Raises:
        BodyModelError: for orientations outside [0, 360).
    """
    if not 0.0 <= orientation_deg < 360.0:
        raise BodyModelError(f"orientation must be in [0, 360), got {orientation_deg}")
    # Fold 270..360 back onto 0..90 (turning left or right is symmetric).
    folded = min(orientation_deg, 360.0 - orientation_deg)
    return folded > threshold_deg


def orientation_loss_db(orientation_deg: float,
                        loss_at_90_db: float = LOSS_AT_90_DEG_DB) -> float:
    """One-way situational loss [dB] for a front-mounted tag at an orientation.

    Smooth ``loss_at_90 * (1 - cos(orientation))`` rolloff while LOS exists;
    ``math.inf`` once the body blocks the path.  At 0 degrees the loss is 0,
    at 60 degrees half the 90-degree loss, matching the gentle RSSI but
    sharp read-rate dependence the paper measures.

    Raises:
        BodyModelError: for orientations outside [0, 360).
    """
    if is_los_blocked(orientation_deg):
        return math.inf
    folded = min(orientation_deg, 360.0 - orientation_deg)
    return loss_at_90_db * (1.0 - math.cos(math.radians(folded)))
