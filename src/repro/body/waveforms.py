"""Breathing waveform generators — the synthetic chest.

The paper paces volunteers with "a breathing metronome application" at
known rates of 5–20 bpm (Section VI-A); the waveform classes here play
that role.  All waveforms report chest-wall *displacement* in metres as a
function of time, positive = chest expanded (inhaled).

Typical quiet-breathing chest excursion is a few millimetres to a
centimetre; the default amplitude of 5 mm sits in that range.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Tuple

import numpy as np

from ..errors import BodyModelError
from ..units import TWO_PI, bpm_to_hz

#: Default peak chest-wall displacement [m] during quiet breathing.
#: Clinical studies put quiet-breathing anterior chest/abdomen excursion
#: at roughly 4-12 mm; 10 mm is a typical adult value.
DEFAULT_AMPLITUDE_M = 0.010


class BreathingWaveform(ABC):
    """Abstract chest-displacement-vs-time model.

    Subclasses must be deterministic functions of time after construction
    (the simulation engine evaluates them at arbitrary, repeated instants).
    """

    @abstractmethod
    def displacement(self, t: float) -> float:
        """Chest-wall displacement [m] at time ``t`` (0 = fully exhaled rest)."""

    @abstractmethod
    def true_rate_bpm(self, t_start: float, t_end: float) -> float:
        """Ground-truth average breathing rate [bpm] over a window."""

    def displacement_array(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`displacement` (default: a Python loop)."""
        return np.array([self.displacement(float(t)) for t in times])


class SinusoidalBreathing(BreathingWaveform):
    """Pure sinusoidal breathing at a fixed rate — the idealised metronome.

    Args:
        rate_bpm: breathing rate in breaths per minute.
        amplitude_m: peak chest displacement.
        phase_rad: starting phase.

    Raises:
        BodyModelError: on non-positive rate or negative amplitude.
    """

    def __init__(self, rate_bpm: float, amplitude_m: float = DEFAULT_AMPLITUDE_M,
                 phase_rad: float = 0.0) -> None:
        if rate_bpm <= 0:
            raise BodyModelError(f"rate_bpm must be > 0, got {rate_bpm}")
        if amplitude_m < 0:
            raise BodyModelError("amplitude must be >= 0")
        self._rate_hz = bpm_to_hz(rate_bpm)
        self._rate_bpm = float(rate_bpm)
        self._amp = float(amplitude_m)
        self._phase = float(phase_rad)

    @property
    def rate_bpm(self) -> float:
        """The fixed breathing rate."""
        return self._rate_bpm

    def displacement(self, t: float) -> float:
        # Raised sinusoid so displacement stays in [0, amplitude]:
        # breathing oscillates between exhaled rest and full inhalation.
        return self._amp * 0.5 * (1.0 - math.cos(TWO_PI * self._rate_hz * t + self._phase))

    def displacement_array(self, times: np.ndarray) -> np.ndarray:
        return self._amp * 0.5 * (1.0 - np.cos(TWO_PI * self._rate_hz * times + self._phase))

    def true_rate_bpm(self, t_start: float, t_end: float) -> float:
        return self._rate_bpm


class AsymmetricBreathing(BreathingWaveform):
    """Realistic breathing: inhalation is faster than exhalation.

    Each cycle spends ``inhale_fraction`` of its period inhaling (raised
    half-cosine up) and the rest exhaling (raised half-cosine down), giving
    the skewed sawtooth-ish shape of real respiration traces.

    Args:
        rate_bpm: breathing rate.
        amplitude_m: peak chest displacement.
        inhale_fraction: fraction of the cycle spent inhaling (typically
            ~0.4; exhalation is the longer phase at rest).

    Raises:
        BodyModelError: on invalid rate, amplitude, or fraction.
    """

    def __init__(self, rate_bpm: float, amplitude_m: float = DEFAULT_AMPLITUDE_M,
                 inhale_fraction: float = 0.4) -> None:
        if rate_bpm <= 0:
            raise BodyModelError(f"rate_bpm must be > 0, got {rate_bpm}")
        if amplitude_m < 0:
            raise BodyModelError("amplitude must be >= 0")
        if not 0.05 <= inhale_fraction <= 0.95:
            raise BodyModelError("inhale_fraction must be in [0.05, 0.95]")
        self._rate_bpm = float(rate_bpm)
        self._period = 60.0 / rate_bpm
        self._amp = float(amplitude_m)
        self._frac = float(inhale_fraction)

    @property
    def rate_bpm(self) -> float:
        """The fixed breathing rate."""
        return self._rate_bpm

    def displacement(self, t: float) -> float:
        u = (t % self._period) / self._period
        if u < self._frac:  # inhaling: 0 -> amplitude
            x = u / self._frac
            return self._amp * 0.5 * (1.0 - math.cos(math.pi * x))
        x = (u - self._frac) / (1.0 - self._frac)  # exhaling: amplitude -> 0
        return self._amp * 0.5 * (1.0 + math.cos(math.pi * x))

    def displacement_array(self, times: np.ndarray) -> np.ndarray:
        u = (np.asarray(times, dtype=float) % self._period) / self._period
        x_in = u / self._frac
        x_out = (u - self._frac) / (1.0 - self._frac)
        return np.where(
            u < self._frac,
            self._amp * 0.5 * (1.0 - np.cos(np.pi * x_in)),
            self._amp * 0.5 * (1.0 + np.cos(np.pi * x_out)),
        )

    def true_rate_bpm(self, t_start: float, t_end: float) -> float:
        return self._rate_bpm


class IrregularBreathing(BreathingWaveform):
    """Breathing with cycle-to-cycle rate jitter and optional pauses.

    Models the intro's observation that "people may have irregular
    breathing patterns alternating between fast and slow with occasional
    pauses".  Cycle durations are drawn once (seeded) at construction, so
    the waveform is a deterministic function of time afterwards.

    Args:
        base_rate_bpm: nominal rate around which cycles jitter.
        amplitude_m: peak chest displacement.
        rate_jitter: relative sigma of per-cycle duration jitter.
        pause_probability: chance a cycle is followed by a breath hold.
        pause_duration_s: mean hold length (exponentially distributed).
        seed: RNG seed for the cycle schedule.
        horizon_s: schedule length; queries beyond it raise.

    Raises:
        BodyModelError: on invalid parameters.
    """

    def __init__(self, base_rate_bpm: float,
                 amplitude_m: float = DEFAULT_AMPLITUDE_M,
                 rate_jitter: float = 0.08,
                 pause_probability: float = 0.0,
                 pause_duration_s: float = 2.0,
                 seed: int = 0,
                 horizon_s: float = 600.0) -> None:
        if base_rate_bpm <= 0:
            raise BodyModelError("base_rate_bpm must be > 0")
        if amplitude_m < 0:
            raise BodyModelError("amplitude must be >= 0")
        if not 0.0 <= rate_jitter < 0.5:
            raise BodyModelError("rate_jitter must be in [0, 0.5)")
        if not 0.0 <= pause_probability <= 1.0:
            raise BodyModelError("pause_probability must be in [0, 1]")
        if pause_duration_s < 0:
            raise BodyModelError("pause_duration_s must be >= 0")
        self._amp = float(amplitude_m)
        self._horizon = float(horizon_s)
        rng = np.random.default_rng(seed)
        base_period = 60.0 / base_rate_bpm
        # Pre-draw the cycle schedule: list of (start, breath_duration,
        # pause_after) covering the horizon.
        self._cycles: List[Tuple[float, float, float]] = []
        t = 0.0
        while t < self._horizon:
            duration = base_period * max(0.3, 1.0 + rng.normal(0.0, rate_jitter))
            pause = 0.0
            if pause_probability > 0 and rng.random() < pause_probability:
                pause = float(rng.exponential(pause_duration_s))
            self._cycles.append((t, duration, pause))
            t += duration + pause
        self._starts = np.array([c[0] for c in self._cycles])

    def displacement(self, t: float) -> float:
        if t < 0 or t > self._horizon:
            raise BodyModelError(
                f"time {t} outside schedule horizon [0, {self._horizon}]"
            )
        idx = int(np.searchsorted(self._starts, t, side="right")) - 1
        idx = max(0, idx)
        start, duration, _pause = self._cycles[idx]
        u = t - start
        if u >= duration:  # inside the pause after this cycle: hold at rest
            return 0.0
        return self._amp * 0.5 * (1.0 - math.cos(TWO_PI * u / duration))

    def displacement_array(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        if times.size and (times.min() < 0 or times.max() > self._horizon):
            raise BodyModelError(
                f"times outside schedule horizon [0, {self._horizon}]"
            )
        idx = np.maximum(0, np.searchsorted(self._starts, times, side="right") - 1)
        starts = self._starts[idx]
        durations = np.array([self._cycles[i][1] for i in idx])
        u = times - starts
        disp = self._amp * 0.5 * (1.0 - np.cos(TWO_PI * u / durations))
        return np.where(u >= durations, 0.0, disp)

    def true_rate_bpm(self, t_start: float, t_end: float) -> float:
        """Cycles completed per minute within the window.

        Counts cycle *durations* (excluding holds) overlapping the window,
        the same quantity a human scorer counting breaths would report.

        Raises:
            BodyModelError: on an empty window.
        """
        if t_end <= t_start:
            raise BodyModelError("window must have positive duration")
        breaths = 0.0
        for start, duration, _pause in self._cycles:
            if start >= t_end or start + duration <= t_start:
                continue
            overlap = min(t_end, start + duration) - max(t_start, start)
            breaths += overlap / duration
        return breaths / (t_end - t_start) * 60.0


class ApneaSighBreathing(BreathingWaveform):
    """Clinically eventful breathing: apnea holds and sigh breaths.

    The intro's "occasional pauses" taken to their clinical extreme — the
    pattern an overnight ward monitor exists to catch.  The schedule is a
    sequence of raised-cosine cycles around ``base_rate_bpm``; seeded
    events perturb it two ways:

    * **apnea** — after a cycle, breathing *stops* for a uniform
      ``[apnea_min_s, apnea_max_s]`` hold (clinical apneas run 10 s and
      up).  The chest sits at exhaled rest for the whole hold.
    * **sigh** — a cycle's amplitude is multiplied by ``sigh_gain`` and
      its duration stretched 1.5x, the deep augmented breath healthy
      sleepers take a few times an hour.

    The schedule is drawn once at construction, so the waveform is a
    deterministic function of time afterwards, and the ground-truth
    event times are exposed for scenario-pack scoring via
    :attr:`apnea_windows` and :attr:`sigh_times`.

    Args:
        base_rate_bpm: nominal rate between events.
        amplitude_m: peak chest displacement of a normal cycle.
        apnea_per_minute: mean apnea events per minute (Poisson-ish:
            each cycle ends in a hold with the matching probability).
        apnea_min_s / apnea_max_s: hold-duration bounds.
        sigh_probability: per-cycle chance of a sigh.
        sigh_gain: amplitude multiplier of a sigh cycle.
        seed: RNG seed for the event schedule.
        horizon_s: schedule length; queries beyond it raise.

    Raises:
        BodyModelError: on invalid parameters.
    """

    def __init__(self, base_rate_bpm: float,
                 amplitude_m: float = DEFAULT_AMPLITUDE_M,
                 apnea_per_minute: float = 0.5,
                 apnea_min_s: float = 10.0,
                 apnea_max_s: float = 25.0,
                 sigh_probability: float = 0.03,
                 sigh_gain: float = 2.5,
                 seed: int = 0,
                 horizon_s: float = 600.0) -> None:
        if base_rate_bpm <= 0:
            raise BodyModelError("base_rate_bpm must be > 0")
        if amplitude_m < 0:
            raise BodyModelError("amplitude must be >= 0")
        if apnea_per_minute < 0:
            raise BodyModelError("apnea_per_minute must be >= 0")
        if not 0.0 < apnea_min_s <= apnea_max_s:
            raise BodyModelError("need 0 < apnea_min_s <= apnea_max_s")
        if not 0.0 <= sigh_probability <= 1.0:
            raise BodyModelError("sigh_probability must be in [0, 1]")
        if sigh_gain < 1.0:
            raise BodyModelError("sigh_gain must be >= 1")
        self._amp = float(amplitude_m)
        self._horizon = float(horizon_s)
        rng = np.random.default_rng(seed)
        base_period = 60.0 / base_rate_bpm
        hold_probability = min(1.0, apnea_per_minute * base_period / 60.0)
        # Pre-draw the schedule: (start, breath_duration, hold_after, gain).
        self._cycles: List[Tuple[float, float, float, float]] = []
        self._apnea_windows: List[Tuple[float, float]] = []
        self._sigh_times: List[float] = []
        t = 0.0
        while t < self._horizon:
            duration = base_period * max(0.3, 1.0 + rng.normal(0.0, 0.06))
            gain = 1.0
            if rng.random() < sigh_probability:
                gain = float(sigh_gain)
                duration *= 1.5
                self._sigh_times.append(t)
            hold = 0.0
            if rng.random() < hold_probability:
                hold = float(rng.uniform(apnea_min_s, apnea_max_s))
                self._apnea_windows.append((t + duration, t + duration + hold))
            self._cycles.append((t, duration, hold, gain))
            t += duration + hold
        self._starts = np.array([c[0] for c in self._cycles])
        self._durations = np.array([c[1] for c in self._cycles])
        self._gains = np.array([c[3] for c in self._cycles])

    @property
    def apnea_windows(self) -> List[Tuple[float, float]]:
        """Ground-truth ``(start, end)`` of every scheduled apnea hold."""
        return list(self._apnea_windows)

    @property
    def sigh_times(self) -> List[float]:
        """Ground-truth onset times of every scheduled sigh cycle."""
        return list(self._sigh_times)

    def displacement(self, t: float) -> float:
        if t < 0 or t > self._horizon:
            raise BodyModelError(
                f"time {t} outside schedule horizon [0, {self._horizon}]"
            )
        idx = max(0, int(np.searchsorted(self._starts, t, side="right")) - 1)
        start, duration, _hold, gain = self._cycles[idx]
        u = t - start
        if u >= duration:  # inside the apnea hold: chest at exhaled rest
            return 0.0
        return self._amp * gain * 0.5 * (1.0 - math.cos(TWO_PI * u / duration))

    def displacement_array(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        if times.size and (times.min() < 0 or times.max() > self._horizon):
            raise BodyModelError(
                f"times outside schedule horizon [0, {self._horizon}]"
            )
        idx = np.maximum(0, np.searchsorted(self._starts, times, side="right") - 1)
        u = times - self._starts[idx]
        durations = self._durations[idx]
        disp = (self._amp * self._gains[idx] * 0.5
                * (1.0 - np.cos(TWO_PI * u / durations)))
        return np.where(u >= durations, 0.0, disp)

    def true_rate_bpm(self, t_start: float, t_end: float) -> float:
        """Cycles completed per minute within the window (holds excluded).

        Raises:
            BodyModelError: on an empty window.
        """
        if t_end <= t_start:
            raise BodyModelError("window must have positive duration")
        breaths = 0.0
        for start, duration, _hold, _gain in self._cycles:
            if start >= t_end or start + duration <= t_start:
                continue
            overlap = min(t_end, start + duration) - max(t_start, start)
            breaths += overlap / duration
        return breaths / (t_end - t_start) * 60.0


class MetronomeBreathing(AsymmetricBreathing):
    """Metronome-paced breathing as in the paper's evaluation protocol.

    A human following a metronome still exhibits small cycle-to-cycle
    deviations; this waveform wraps :class:`AsymmetricBreathing` with a
    slow sinusoidal rate wander of relative magnitude ``compliance_jitter``
    to capture the imperfect pacing that makes even the paper's 1 m
    accuracy 98 % rather than 100 %.

    Args:
        rate_bpm: the metronome setting — the experiment ground truth.
        amplitude_m: peak chest displacement.
        compliance_jitter: relative magnitude of the human's rate wander.
        wander_period_s: period of the slow wander.

    Raises:
        BodyModelError: on invalid jitter.
    """

    def __init__(self, rate_bpm: float, amplitude_m: float = DEFAULT_AMPLITUDE_M,
                 compliance_jitter: float = 0.03,
                 wander_period_s: float = 37.0) -> None:
        super().__init__(rate_bpm, amplitude_m)
        if not 0.0 <= compliance_jitter < 0.5:
            raise BodyModelError("compliance_jitter must be in [0, 0.5)")
        if wander_period_s <= 0:
            raise BodyModelError("wander_period_s must be > 0")
        self._jitter = float(compliance_jitter)
        self._wander_hz = 1.0 / wander_period_s

    def displacement(self, t: float) -> float:
        # Warp time with a slow sinusoid: the instantaneous rate wanders
        # +/- jitter around the metronome, averaging back to it.
        warp = t + self._jitter / (TWO_PI * self._wander_hz) * (
            1.0 - math.cos(TWO_PI * self._wander_hz * t)
        )
        return super().displacement(warp)

    def displacement_array(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        warp = times + self._jitter / (TWO_PI * self._wander_hz) * (
            1.0 - np.cos(TWO_PI * self._wander_hz * times)
        )
        return super().displacement_array(warp)

    def true_rate_bpm(self, t_start: float, t_end: float) -> float:
        # The wander integrates to (almost) zero over a window; ground
        # truth remains the metronome setting, as the paper treats it.
        return self.rate_bpm
