"""Demographic presets and random subject generation.

The paper's intro motivates monitoring across very different populations —
newborns ("Parents are concerned about the safety of breath monitoring
devices for their newborns"), adults at rest, people under stress.  Their
respiratory parameters differ enormously: a resting adult breathes
12-20 bpm with ~10 mm chest excursion, a newborn 30-60 bpm with only a
few millimetres.  These presets capture the standard clinical ranges so
scenarios can be populated realistically, and so the pipeline's
configuration can be checked against each regime (a neonatal rate of
50 bpm exceeds the paper's 0.67 Hz cutoff — see
:func:`recommended_pipeline_config`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import PipelineConfig
from ..errors import BodyModelError
from .placement import BreathingStyle
from .subject import Subject
from .waveforms import MetronomeBreathing


@dataclass(frozen=True)
class DemographicProfile:
    """Respiratory parameters of one population group.

    Attributes:
        name: group label.
        rate_range_bpm: normal resting breathing-rate range.
        amplitude_range_m: chest-wall excursion range.
        torso_scale: body-size scale relative to an adult (affects tag
            placement spacing).
        typical_style: dominant breathing style (infants breathe
            abdominally; adults vary).
    """

    name: str
    rate_range_bpm: Tuple[float, float]
    amplitude_range_m: Tuple[float, float]
    torso_scale: float
    typical_style: BreathingStyle

    def __post_init__(self) -> None:
        lo, hi = self.rate_range_bpm
        if not 0 < lo < hi:
            raise BodyModelError(f"invalid rate range {self.rate_range_bpm}")
        lo, hi = self.amplitude_range_m
        if not 0 < lo < hi:
            raise BodyModelError(f"invalid amplitude range {self.amplitude_range_m}")
        if not 0.1 <= self.torso_scale <= 1.5:
            raise BodyModelError("torso_scale must be in [0.1, 1.5]")

    def max_rate_hz(self) -> float:
        """Upper plausible breathing frequency for this group [Hz]."""
        return self.rate_range_bpm[1] / 60.0


#: Standard clinical resting respiratory rates by age group.
ADULT = DemographicProfile(
    name="adult",
    rate_range_bpm=(12.0, 20.0),
    amplitude_range_m=(0.006, 0.012),
    torso_scale=1.0,
    typical_style=BreathingStyle.MIXED,
)

ELDERLY = DemographicProfile(
    name="elderly",
    rate_range_bpm=(12.0, 28.0),
    amplitude_range_m=(0.004, 0.009),
    torso_scale=0.95,
    typical_style=BreathingStyle.CHEST,
)

CHILD = DemographicProfile(
    name="child",
    rate_range_bpm=(18.0, 30.0),
    amplitude_range_m=(0.004, 0.008),
    torso_scale=0.6,
    typical_style=BreathingStyle.ABDOMEN,
)

NEWBORN = DemographicProfile(
    name="newborn",
    rate_range_bpm=(30.0, 60.0),
    amplitude_range_m=(0.002, 0.004),
    torso_scale=0.25,
    typical_style=BreathingStyle.ABDOMEN,
)

#: All built-in profiles by name.
PROFILES: Dict[str, DemographicProfile] = {
    p.name: p for p in (ADULT, ELDERLY, CHILD, NEWBORN)
}


def profile(name: str) -> DemographicProfile:
    """Look up a demographic profile by name (case-insensitive).

    Raises:
        BodyModelError: for unknown groups.
    """
    found = PROFILES.get(name.lower())
    if found is None:
        raise BodyModelError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        )
    return found


def recommended_pipeline_config(
    group: DemographicProfile,
    base: Optional[PipelineConfig] = None,
) -> PipelineConfig:
    """A pipeline configuration whose band covers the group's rates.

    The paper's 0.67 Hz cutoff assumes adult breathing "generally lower
    than 40 breaths per minute"; a newborn at 50-60 bpm (0.8-1.0 Hz) would
    be filtered out entirely.  This helper widens the cutoff to 1.5x the
    group's maximum rate (and keeps every other parameter).
    """
    base = base if base is not None else PipelineConfig()
    needed = 1.5 * group.max_rate_hz()
    if needed <= base.cutoff_hz:
        return base
    return PipelineConfig(
        cutoff_hz=needed,
        highpass_hz=base.highpass_hz,
        fusion_bin_s=base.fusion_bin_s,
        zero_crossing_buffer=base.zero_crossing_buffer,
        min_window_s=base.min_window_s,
        detrend=base.detrend,
        adaptive_band=base.adaptive_band,
        band_halfwidth_hz=base.band_halfwidth_hz,
    )


def random_subject(
    user_id: int,
    group: DemographicProfile,
    rng: np.random.Generator,
    distance_m: float = 3.0,
    **subject_kwargs,
) -> Subject:
    """Draw a random member of a demographic group as a Subject.

    The breathing rate and amplitude are drawn uniformly from the group's
    clinical ranges; the metronome ground truth is the drawn rate.

    Raises:
        BodyModelError: propagated from Subject construction.
    """
    rate = float(rng.uniform(*group.rate_range_bpm))
    amplitude = float(rng.uniform(*group.amplitude_range_m))
    waveform = MetronomeBreathing(rate, amplitude_m=amplitude)
    return Subject(
        user_id=user_id,
        distance_m=distance_m,
        breathing=waveform,
        style=group.typical_style,
        sway_seed=int(rng.integers(0, 2 ** 31)),
        **subject_kwargs,
    )


def random_cohort(
    group: DemographicProfile,
    count: int,
    rng: np.random.Generator,
    distance_m: float = 3.0,
    spacing_m: float = 0.8,
) -> List[Subject]:
    """A side-by-side cohort of random group members (Fig. 13 style).

    Raises:
        BodyModelError: on a non-positive count.
    """
    if count < 1:
        raise BodyModelError("count must be >= 1")
    return [
        random_subject(
            user_id=i + 1, group=group, rng=rng, distance_m=distance_m,
            lateral_offset_m=(i - (count - 1) / 2) * spacing_m,
        )
        for i in range(count)
    ]
