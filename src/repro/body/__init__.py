"""Human-subject substrate: breathing waveforms, tag placement, geometry.

Plays the role of the paper's recruited volunteers plus the metronome app
that paced them (Section VI-A).  A :class:`~repro.body.subject.Subject`
carries tags whose positions oscillate with a configurable breathing
waveform; the waveform's known rate is the experiment ground truth.
"""

from .waveforms import (
    BreathingWaveform,
    SinusoidalBreathing,
    AsymmetricBreathing,
    IrregularBreathing,
    MetronomeBreathing,
    ApneaSighBreathing,
)
from .placement import TagPlacement, BreathingStyle, standard_placements
from .subject import Subject, BodyTag
from .blockage import orientation_loss_db, is_los_blocked
from .motion import BodySway
from .activities import RestlessBreathing, TransientMotion
from .population import (
    ADULT,
    CHILD,
    ELDERLY,
    NEWBORN,
    PROFILES,
    DemographicProfile,
    profile,
    random_cohort,
    random_subject,
    recommended_pipeline_config,
)

__all__ = [
    "BreathingWaveform",
    "SinusoidalBreathing",
    "AsymmetricBreathing",
    "IrregularBreathing",
    "MetronomeBreathing",
    "ApneaSighBreathing",
    "TagPlacement",
    "BreathingStyle",
    "standard_placements",
    "Subject",
    "BodyTag",
    "orientation_loss_db",
    "is_los_blocked",
    "BodySway",
    "RestlessBreathing",
    "TransientMotion",
    "DemographicProfile",
    "ADULT",
    "ELDERLY",
    "CHILD",
    "NEWBORN",
    "PROFILES",
    "profile",
    "random_subject",
    "random_cohort",
    "recommended_pipeline_config",
]
