"""Exporters: JSONL event sink, Prometheus text exposition, run manifests.

Three ways telemetry leaves the process:

* **JSONL** — one event per line, compact separators, sorted keys, so a
  seeded run's trace file is byte-reproducible and line-diffable (the
  golden-trace test diffs exactly this serialisation with volatile
  fields stripped).
* **Prometheus text exposition** (version 0.0.4) — counters, gauges,
  and histograms from a :class:`~repro.obs.metrics.MetricsRegistry`,
  ready for a ``/metrics`` endpoint or textfile collector.
* **Run manifest** — the reproducibility sidecar written next to
  results: config + its hash, seeds, package versions, git revision.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from typing import IO, Any, Dict, Iterable, List, Optional, Sequence, Union

from .metrics import Histogram, MetricsRegistry

#: Event keys whose values depend on wall clocks, not on the seed.
VOLATILE_EVENT_KEYS = ("wall_s",)

#: Manifest schema version, bumped on incompatible layout changes.
MANIFEST_SCHEMA = 1


# ----------------------------------------------------------------------
# JSONL events
# ----------------------------------------------------------------------
def strip_volatile(events: Iterable[dict]) -> List[dict]:
    """Copies of ``events`` with wall-clock fields removed.

    This is the canonical "timestamps stripped" view the golden-trace
    regression compares: everything left is a pure function of the seed.
    """
    out = []
    for event in events:
        record = {k: v for k, v in event.items() if k not in VOLATILE_EVENT_KEYS}
        out.append(record)
    return out


def events_to_jsonl(events: Iterable[dict], strip: bool = False) -> str:
    """Serialise events as JSON Lines (compact, sorted keys, trailing \\n).

    Args:
        events: event dicts from a :class:`~repro.obs.trace.Tracer`.
        strip: drop volatile (wall-clock) fields first.
    """
    if strip:
        events = strip_volatile(events)
    lines = [json.dumps(event, sort_keys=True, separators=(",", ":"))
             for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def write_events_jsonl(events: Iterable[dict], path: Union[str, os.PathLike],
                       strip: bool = False) -> int:
    """Write events to ``path`` as JSONL; returns the number of lines."""
    text = events_to_jsonl(events, strip=strip)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n")


def read_events_jsonl(source: Union[str, os.PathLike, IO[str]]) -> List[dict]:
    """Parse a JSONL trace back into event dicts (blank lines skipped)."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus(registry: MetricsRegistry,
                  include_volatile: bool = True) -> str:
    """Render a registry in the Prometheus text exposition format.

    Instruments are grouped by metric name with ``# TYPE`` headers;
    histograms expand into cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``, per the exposition spec.  Pass
    ``include_volatile=False`` to drop wall-clock-derived families (stage
    timings) and keep the exposition deterministic under a fixed seed.
    """
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for kind, name, labels, inst in registry.instruments():
        if not include_volatile and inst.volatile:
            continue
        prom_kind = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram"}[kind]
        if name not in seen_types:
            lines.append(f"# TYPE {name} {prom_kind}")
            seen_types[name] = prom_kind
        if isinstance(inst, Histogram):
            cumulative = 0
            for bound, count in zip(inst.bounds, inst.counts):
                cumulative += count
                label_str = _format_labels(labels, f'le="{_format_value(bound)}"')
                lines.append(f"{name}_bucket{label_str} {cumulative}")
            cumulative += inst.counts[-1]
            label_str = _format_labels(labels, 'le="+Inf"')
            lines.append(f"{name}_bucket{label_str} {cumulative}")
            lines.append(f"{name}_sum{_format_labels(labels)} "
                         f"{_format_value(inst.sum)}")
            lines.append(f"{name}_count{_format_labels(labels)} {inst.count}")
        else:
            lines.append(f"{name}{_format_labels(labels)} "
                         f"{_format_value(inst.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry,
                     path: Union[str, os.PathLike]) -> None:
    """Write the registry's text exposition to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(registry))


# ----------------------------------------------------------------------
# Run manifest
# ----------------------------------------------------------------------
def _config_to_dict(config: Any) -> Any:
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    return config


def _git_revision() -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def _package_versions() -> Dict[str, str]:
    versions = {"python": platform.python_version()}
    for name in ("numpy", "scipy"):
        module = sys.modules.get(name)
        if module is None:
            try:
                module = __import__(name)
            except ImportError:  # pragma: no cover - both are hard deps
                continue
        versions[name] = getattr(module, "__version__", "unknown")
    return versions


def run_manifest(config: Any = None,
                 seeds: Optional[Sequence[Optional[int]]] = None,
                 command: Optional[Sequence[str]] = None,
                 extra: Optional[Dict[str, Any]] = None) -> dict:
    """Build the reproducibility manifest for one run.

    Args:
        config: any dataclass (``SystemConfig``, ``ReaderConfig``, ...)
            or JSON-ready mapping; embedded verbatim and hashed.
        seeds: every seed the run consumed, in consumption order.
        command: the invoking argv (defaults to ``sys.argv``).
        extra: free-form caller additions (scenario shape, out paths).

    Returns:
        A JSON-ready dict with ``config_sha256`` — two runs with equal
        hashes and seeds are byte-reproducible modulo wall clocks.
    """
    config_dict = _config_to_dict(config)
    canonical = json.dumps(config_dict, sort_keys=True, separators=(",", ":"),
                           default=str)
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_unix_s": time.time(),
        "command": list(command if command is not None else sys.argv),
        "config": config_dict,
        "config_sha256": hashlib.sha256(canonical.encode("utf-8")).hexdigest(),
        "seeds": list(seeds) if seeds is not None else [],
        "versions": _package_versions(),
        "platform": platform.platform(),
        "git_revision": _git_revision(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: Union[str, os.PathLike], **kwargs: Any) -> dict:
    """Build a manifest (see :func:`run_manifest`) and write it to ``path``."""
    manifest = run_manifest(**kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, default=str)
        handle.write("\n")
    return manifest
