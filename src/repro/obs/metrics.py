"""The metrics registry: counters, gauges, and histograms with labels.

No analogue in the paper — this is the production-observability substrate
the ROADMAP's "millions of users" north star needs.  The design follows
the Prometheus data model (the de-facto standard for RF/sensing fleet
monitoring, cf. per-link RSS quality tracking in *Catch a Breath*):

* an **instrument** is identified by a metric *name* plus a sorted tuple
  of *labels* (``reads_total{tag="(1, 2)"}``);
* **counters** only go up, **gauges** hold the latest value, and
  **histograms** bucket observations against fixed bounds;
* a registry **snapshot** is a JSON-ready, deterministically ordered
  structure that a worker process can ship back to its parent, where
  :meth:`MetricsRegistry.merge` folds it in — the mechanism that fixes
  the sweep-worker telemetry loss.

Instruments whose values are wall-clock dependent (stage timers) are
flagged ``volatile`` so determinism tests can compare everything else
bit for bit across runs.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError

#: Prometheus-compatible metric/label name pattern.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram bounds for duration-style observations [seconds].
DURATION_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Default histogram bounds for unit-interval observations (confidence).
UNIT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0,
)

#: Internal instrument key: (metric name, sorted (label, value) pairs).
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _validate_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise ObservabilityError(f"invalid metric name {name!r}")


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    for label in labels:
        if not _NAME_RE.match(label):
            raise ObservabilityError(f"invalid label name {label!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (events, reads, rejections)."""

    __slots__ = ("value", "volatile")

    def __init__(self, volatile: bool = False) -> None:
        self.value = 0.0
        self.volatile = volatile

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be >= 0) to the counter.

        Raises:
            ObservabilityError: on a negative increment.
        """
        if n < 0:
            raise ObservabilityError(f"counter increment must be >= 0, got {n}")
        self.value += n


class Gauge:
    """A point-in-time value (per-antenna SNR, queue depth, current Q)."""

    __slots__ = ("value", "volatile")

    def __init__(self, volatile: bool = False) -> None:
        self.value = 0.0
        self.volatile = volatile

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        """Adjust the gauge by ``n`` (may be negative)."""
        self.value += n

    @contextmanager
    def track(self, n: float = 1.0) -> Iterator["Gauge"]:
        """Hold the gauge ``n`` higher for the duration of a block.

        The in-flight/occupancy idiom (active connections, live
        sessions, concurrent workers)::

            with registry.gauge("repro_serve_active_connections").track():
                handle(connection)

        The decrement runs even when the block raises, so a crashed
        handler never leaks occupancy.
        """
        self.inc(n)
        try:
            yield self
        finally:
            self.inc(-n)


class Histogram:
    """Observations bucketed against fixed upper bounds.

    Attributes:
        bounds: finite bucket upper bounds; an implicit +Inf bucket
            catches everything above the last bound.
        counts: per-bucket observation counts (len = len(bounds) + 1),
            *non*-cumulative internally; exposition cumulates.
        sum: total of all observed values.
        count: total number of observations.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "volatile")

    def __init__(self, bounds: Sequence[float] = DURATION_BUCKETS,
                 volatile: bool = False) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise ObservabilityError(
                f"histogram bounds must be non-empty and increasing, got {bounds}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.volatile = volatile

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations (one pass per bucket)."""
        for value in values:
            self.observe(float(value))

    def add(self, total: float, count: int,
            counts: Optional[Sequence[int]] = None) -> None:
        """Fold in pre-aggregated observations (snapshot merging).

        When per-bucket ``counts`` are unavailable (legacy perf snapshots
        carry only sum/calls), the count lands in the bucket of the mean
        observation — sum and count stay exact, bucket placement is
        approximate.

        Raises:
            ObservabilityError: if ``counts`` has the wrong length.
        """
        if count <= 0:
            return
        self.sum += total
        self.count += count
        if counts is None:
            mean = total / count
            for i, bound in enumerate(self.bounds):
                if mean <= bound:
                    self.counts[i] += count
                    return
            self.counts[-1] += count
            return
        if len(counts) != len(self.counts):
            raise ObservabilityError(
                f"cannot merge histogram with {len(counts)} buckets "
                f"into {len(self.counts)}"
            )
        for i, n in enumerate(counts):
            self.counts[i] += int(n)


class MetricsRegistry:
    """Get-or-create instrument store with deterministic snapshots.

    One registry per telemetry session; the process-global one lives in
    :mod:`repro.obs` and is what ``repro.perf`` records through.
    """

    def __init__(self) -> None:
        self._counters: Dict[_Key, Counter] = {}
        self._gauges: Dict[_Key, Gauge] = {}
        self._histograms: Dict[_Key, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, metric: str, volatile: bool = False, **labels: str) -> Counter:
        """The counter for ``metric`` + ``labels`` (created on first use)."""
        key = self._key(metric, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(volatile=volatile)
        return inst

    def gauge(self, metric: str, volatile: bool = False, **labels: str) -> Gauge:
        """The gauge for ``metric`` + ``labels`` (created on first use)."""
        key = self._key(metric, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(volatile=volatile)
        return inst

    def histogram(self, metric: str,
                  bounds: Sequence[float] = DURATION_BUCKETS,
                  volatile: bool = False, **labels: str) -> Histogram:
        """The histogram for ``metric`` + ``labels`` (created on first use).

        Raises:
            ObservabilityError: if the instrument exists with different
                bucket bounds.
        """
        key = self._key(metric, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(bounds, volatile=volatile)
        elif inst.bounds != tuple(float(b) for b in bounds):
            raise ObservabilityError(
                f"histogram {metric!r} already registered with bounds {inst.bounds}"
            )
        return inst

    @staticmethod
    def _key(name: str, labels: Dict[str, str]) -> _Key:
        _validate_name(name)
        return name, _label_key(labels)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def instruments(self) -> Iterator[Tuple[str, str, Dict[str, str], object]]:
        """Every instrument as ``(kind, name, labels, instrument)``,
        deterministically ordered by (kind, name, labels)."""
        for kind, store in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            for (name, labels) in sorted(store):
                yield kind, name, dict(labels), store[(name, labels)]

    def values(self, name: str) -> Dict[Tuple[Tuple[str, str], ...], float]:
        """All counter/gauge values recorded under ``name``, by label set."""
        out: Dict[Tuple[Tuple[str, str], ...], float] = {}
        for store in (self._counters, self._gauges):
            for (metric, labels), inst in store.items():
                if metric == name:
                    out[labels] = inst.value
        return out

    def remove(self, name: str) -> int:
        """Drop every instrument registered under ``name``; returns count."""
        removed = 0
        for store in (self._counters, self._gauges, self._histograms):
            for key in [k for k in store if k[0] == name]:
                del store[key]
                removed += 1
        return removed

    def reset(self) -> None:
        """Drop every instrument (start a fresh measurement window)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self, include_volatile: bool = True) -> dict:
        """A JSON-ready, deterministically ordered view of all instruments.

        Args:
            include_volatile: ``False`` omits wall-clock-dependent
                instruments (stage timers), leaving only values that must
                be bit-identical across runs of the same seed.
        """

        def rows(store: Dict[_Key, object]) -> List[dict]:
            out = []
            for (name, labels) in sorted(store):
                inst = store[(name, labels)]
                if inst.volatile and not include_volatile:
                    continue
                row = {"name": name, "labels": dict(labels)}
                if isinstance(inst, Histogram):
                    row.update({
                        "bounds": list(inst.bounds),
                        "counts": list(inst.counts),
                        "sum": inst.sum,
                        "count": inst.count,
                        "volatile": inst.volatile,
                    })
                else:
                    row["value"] = inst.value
                    row["volatile"] = inst.volatile
                out.append(row)
            return out

        return {
            "counters": rows(self._counters),
            "gauges": rows(self._gauges),
            "histograms": rows(self._histograms),
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms add; gauges take the incoming value
        (last-merge-wins, documented for sweep workers whose gauges are
        per-trial anyway).

        Raises:
            ObservabilityError: on a malformed snapshot.
        """
        try:
            for row in snapshot.get("counters", ()):
                self.counter(row["name"], volatile=row.get("volatile", False),
                             **row["labels"]).inc(row["value"])
            for row in snapshot.get("gauges", ()):
                self.gauge(row["name"], volatile=row.get("volatile", False),
                           **row["labels"]).set(row["value"])
            for row in snapshot.get("histograms", ()):
                hist = self.histogram(
                    row["name"], bounds=row["bounds"],
                    volatile=row.get("volatile", False), **row["labels"])
                hist.add(row["sum"], row["count"], counts=row["counts"])
        except (KeyError, TypeError) as exc:
            raise ObservabilityError(f"malformed metrics snapshot: {exc}") from exc
