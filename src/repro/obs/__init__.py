"""``repro.obs`` — structured observability: traces, metrics, exporters.

The runtime-visibility substrate of the reproduction (DESIGN.md §10):

* :mod:`repro.obs.trace` — hierarchical spans and point events with
  deterministic IDs (scenario → reader round → inventory slot →
  pipeline stage → per-user estimate);
* :mod:`repro.obs.metrics` — a labelled counter/gauge/histogram
  registry that also backs :mod:`repro.perf`;
* :mod:`repro.obs.export` — JSONL event sink, Prometheus text
  exposition, and run manifests.

This module holds the **process-global session**: one tracer + one
registry that the reader, Gen2 MAC, pipeline, and simulation engine feed
through the helpers below.  Tracing is *off* by default — instrumented
call sites cost one attribute check until :func:`configure` (or the
``repro obs`` CLI) switches it on.  Sweep workers get their own scoped
session via :func:`repro.perf.telemetry_scope` and ship snapshots back
to the parent.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from .export import (
    events_to_jsonl,
    read_events_jsonl,
    run_manifest,
    strip_volatile,
    to_prometheus,
    write_events_jsonl,
    write_manifest,
    write_prometheus,
)
from .metrics import (
    DURATION_BUCKETS,
    UNIT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import DETAIL_LEVELS, SpanHandle, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Tracer", "SpanHandle", "DETAIL_LEVELS",
    "DURATION_BUCKETS", "UNIT_BUCKETS",
    "events_to_jsonl", "read_events_jsonl", "strip_volatile",
    "to_prometheus", "write_events_jsonl", "write_prometheus",
    "run_manifest", "write_manifest",
    "get_tracer", "get_registry", "configure", "enabled", "reset",
    "span", "event", "counter", "gauge", "histogram", "snapshot",
    "capture", "install_session",
]

_TRACER = Tracer()
_REGISTRY = MetricsRegistry()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def install_session(tracer: Tracer, registry: MetricsRegistry
                    ) -> Tuple[Tracer, MetricsRegistry]:
    """Swap in a new global (tracer, registry); returns the old pair.

    Used by :func:`repro.perf.telemetry_scope` to give sweep workers an
    isolated session.  Most code should never call this directly.
    """
    global _TRACER, _REGISTRY
    old = (_TRACER, _REGISTRY)
    _TRACER, _REGISTRY = tracer, registry
    return old


def configure(enabled: Optional[bool] = None, detail: Optional[str] = None,
              wall_clock: Optional[bool] = None) -> None:
    """Reconfigure the global tracer (any subset of its knobs)."""
    _TRACER.configure(enabled=enabled, detail=detail, wall_clock=wall_clock)


def enabled() -> bool:
    """True when the global tracer is recording."""
    return _TRACER.enabled


def reset() -> None:
    """Clear all recorded events and metrics (settings are kept)."""
    _TRACER.clear()
    _REGISTRY.reset()


def span(name: str, **attrs):
    """Open a span on the global tracer (context manager)."""
    return _TRACER.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Record a point event on the global tracer."""
    _TRACER.event(name, **attrs)


def counter(name: str, **labels) -> Counter:
    """A counter on the global registry."""
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    """A gauge on the global registry."""
    return _REGISTRY.gauge(name, **labels)


def histogram(name: str, bounds=DURATION_BUCKETS, **labels) -> Histogram:
    """A histogram on the global registry."""
    return _REGISTRY.histogram(name, bounds=bounds, **labels)


def snapshot(include_volatile: bool = True) -> dict:
    """``{"events": [...], "metrics": {...}}`` for the global session."""
    events = (_TRACER.events if include_volatile
              else strip_volatile(_TRACER.events))
    return {
        "events": list(events),
        "metrics": _REGISTRY.snapshot(include_volatile=include_volatile),
    }


@contextmanager
def capture(detail: str = "round", wall_clock: bool = False
            ) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Record one observed session: fresh state, tracing on, then restore.

    ``with obs.capture() as (tracer, registry): run_scenario(...)`` is
    the test/tooling idiom — the previous global session (events,
    metrics, and settings) is untouched afterwards.
    """
    tracer = Tracer(enabled=True, detail=detail, wall_clock=wall_clock)
    registry = MetricsRegistry()
    old = install_session(tracer, registry)
    try:
        yield tracer, registry
    finally:
        install_session(*old)
