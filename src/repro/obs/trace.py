"""Hierarchical trace spans with deterministic IDs and JSONL-ready events.

The span taxonomy (DESIGN.md §10) follows the simulation's own nesting:

    scenario                       one run_scenario call
      sweep.trial                  (under sweep.run_scenarios in sweeps)
      reader.run                   one inventory session
        reader.mac                 MAC arbitration
          gen2.round               one ALOHA round (point event)
            gen2.slot              one slot (point event, detail="slot")
        reader.synthesize          report synthesis
      pipeline.process             one batch-processing call
        pipeline.user              per-user fusion + estimate

Span IDs are sequential integers assigned in emission order, so the
event stream of a seeded run is fully deterministic — the property the
golden-trace and determinism tests lock down.  Wall-clock durations are
*opt-in* (``wall_clock=True`` adds ``wall_s`` to span-end events); with
the default off, two runs of the same seed produce byte-identical
streams with no stripping required.

The tracer is intentionally not thread-safe: one tracer per process (or
per sweep worker via :func:`repro.perf.telemetry_scope`), matching the
single-threaded simulation engine.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

#: Trace detail levels, coarse to fine.  "round" (default) emits one
#: point event per MAC round; "slot" additionally emits one per ALOHA
#: slot — an order of magnitude more events, for protocol debugging.
DETAIL_LEVELS = ("round", "slot")


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars (and tuples) into JSON-serialisable values."""
    # Exact-type fast path first: virtually every attr is a builtin, and
    # the numpy ABC isinstance checks below are what tracing overhead is
    # made of at tens of thousands of attrs per run.
    kind = type(value)
    if kind is int or kind is float or kind is str or kind is bool:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def _clean_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {k: _jsonable(v) for k, v in attrs.items()}


class SpanHandle:
    """Live handle to an open span; lets the body attach result attrs.

    Attributes added via :meth:`set` are emitted on the span-end event —
    the natural home for values only known at the end (estimate bpm,
    report counts, confidence).
    """

    __slots__ = ("span_id", "name", "attrs")

    def __init__(self, span_id: int, name: str) -> None:
        self.span_id = span_id
        self.name = name
        self.attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span's end event."""
        self.attrs.update(attrs)


class _NullSpan:
    """The no-op handle a disabled tracer yields (zero allocation)."""

    __slots__ = ()
    span_id = 0
    name = ""

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span and point events with deterministic ordering.

    Args:
        enabled: record events (default off — instrumented call sites
            stay near-free until observability is switched on).
        detail: trace granularity, one of :data:`DETAIL_LEVELS`.
        wall_clock: add ``wall_s`` (monotonic duration) to span ends.
    """

    def __init__(self, enabled: bool = False, detail: str = "round",
                 wall_clock: bool = False) -> None:
        self.events: List[dict] = []
        self._stack: List[int] = []
        self._next_id = 1
        self._enabled = enabled
        self.wall_clock = wall_clock
        self.detail = detail

    @property
    def enabled(self) -> bool:
        """True when events are being recorded."""
        return self._enabled

    @property
    def detail(self) -> str:
        """The granularity level in force."""
        return self._detail

    @detail.setter
    def detail(self, level: str) -> None:
        if level not in DETAIL_LEVELS:
            raise ValueError(
                f"detail must be one of {DETAIL_LEVELS}, got {level!r}")
        self._detail = level

    def configure(self, enabled: Optional[bool] = None,
                  detail: Optional[str] = None,
                  wall_clock: Optional[bool] = None) -> None:
        """Update any subset of (enabled, detail, wall_clock)."""
        if enabled is not None:
            self._enabled = enabled
        if detail is not None:
            self.detail = detail
        if wall_clock is not None:
            self.wall_clock = wall_clock

    @property
    def slot_detail(self) -> bool:
        """True when slot-level MAC events should be emitted."""
        return self._enabled and self._detail == "slot"

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanHandle]:
        """Open a span around a block: ``with tracer.span("reader.run"): ...``.

        Yields a :class:`SpanHandle`; attributes set on it land on the
        span-end event.  An exception inside the block still closes the
        span and stamps it with the exception type under ``error``.
        """
        if not self._enabled:
            yield _NULL_SPAN
            return
        span_id = self._next_id
        self._next_id += 1
        start = {"event": "span_start", "span": span_id, "name": name}
        if self._stack:
            start["parent"] = self._stack[-1]
        if attrs:
            start["attrs"] = _clean_attrs(attrs)
        self.events.append(start)
        self._stack.append(span_id)
        handle = SpanHandle(span_id, name)
        t0 = time.perf_counter() if self.wall_clock else 0.0
        error: Optional[str] = None
        try:
            yield handle
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            self._stack.pop()
            end = {"event": "span_end", "span": span_id, "name": name}
            if handle.attrs:
                end["attrs"] = _clean_attrs(handle.attrs)
            if error is not None:
                end["error"] = error
            if self.wall_clock:
                end["wall_s"] = time.perf_counter() - t0
            self.events.append(end)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant (point) event under the current span."""
        if not self._enabled:
            return
        event_id = self._next_id
        self._next_id += 1
        record = {"event": "point", "span": event_id, "name": name}
        if self._stack:
            record["parent"] = self._stack[-1]
        if attrs:
            record["attrs"] = _clean_attrs(attrs)
        self.events.append(record)

    # ------------------------------------------------------------------
    # Merging (sweep workers) / lifecycle
    # ------------------------------------------------------------------
    def absorb(self, events: Sequence[dict], **extra_attrs: Any) -> None:
        """Fold a worker tracer's event list into this one.

        Span/parent IDs are re-based past this tracer's counter so merged
        streams never collide; events with no parent are re-parented
        under the currently open span (the sweep span).  ``extra_attrs``
        (e.g. ``trial=3``) are stamped onto every absorbed event's attrs.
        Merging in input order keeps the combined stream deterministic
        regardless of worker completion order.
        """
        if not self._enabled or not events:
            return
        offset = self._next_id - 1
        top = self._stack[-1] if self._stack else None
        max_id = 0
        clean_extra = _clean_attrs(extra_attrs)
        for src in events:
            record = dict(src)
            span_id = record["span"] + offset
            max_id = max(max_id, span_id)
            record["span"] = span_id
            if "parent" in record:
                record["parent"] = record["parent"] + offset
            elif top is not None:
                record["parent"] = top
            if clean_extra:
                merged = dict(record.get("attrs", {}))
                merged.update(clean_extra)
                record["attrs"] = merged
            self.events.append(record)
        self._next_id = max_id + 1

    def clear(self) -> None:
        """Drop all recorded events and reset the ID counter."""
        self.events.clear()
        self._stack.clear()
        self._next_id = 1
