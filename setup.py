"""Setup shim: enables legacy editable installs on environments without
the ``wheel`` package (PEP 660 editable builds need bdist_wheel).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
