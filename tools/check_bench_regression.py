#!/usr/bin/env python3
"""Guard the streaming-tick speedup against perf regressions in CI.

Shared CI runners are far too noisy for absolute-time thresholds, but
the streaming benchmark's ``tick_speedup`` is a *ratio* of two timings
taken interleaved on the same machine over the same replayed report
stream — machine speed cancels out.  This tool compares that ratio
between the committed reference benchmark (``BENCH_pipeline.json`` at
the repo root) and a freshly produced candidate (the perf-smoke job's
``bench-out/BENCH_pipeline.json``) on every case the two runs share,
and fails when the candidate's speedup has regressed by more than the
threshold (default 25 %) on any shared case.

The committed reference is a full-grid run and CI produces a quick-grid
candidate, so the comparison covers the quick cases only — enough to
catch "someone made the incremental tick recompute again" while staying
within a smoke job's time budget.

The candidate's ``fabric_scale`` soak suite is additionally checked on
its own: its invariants (sessions settled == users requested, every
sent report acked, per-machine capacity published, rebalance moved
sessions, zero worker restarts) are counts, not timings, so they need
no baseline and hold on any machine.  ``--fabric`` gates just that
suite from a ``BENCH_pipeline.json`` produced by
``repro bench --suite fabric_scale`` — the CI smoke path, which skips
the wall-clock grids.  So are the columnar hot
path's guarantees: ``feed_batch_speedup`` (a same-run scalar-vs-batched
ratio) must clear an absolute floor with bit-equal buffered state and
estimates, and the ``wire`` suite's JSON/column bytes ratio — a
property of the formats, not the machine — must hold too.  The ``idle``
economics suite is likewise self-contained: the idle/active bytes
ratio, the soak's flat memory ceiling, and wake verification are
same-run ratios and counts, with only the wake p99 held to a (very
generous) absolute ceiling.

When ``--simulation`` names a ``BENCH_simulation.json``, its
``scenarios`` suite is gated too.  Scenario-pack numbers are workload
metrics (accuracy fractions, alarm counts over a deterministic seeded
capture), not timings, so they are absolute and machine-independent:
the motion-burst pack must publish **zero** confident-but-wrong
estimates during injected motion, the degraded-phase ward must hold
``auto`` accuracy at or above 0.85 while the phase-only control sits
below 0.60 (proving the RSS fallback both engages and earns its keep),
and every pack's false/missed alarm rates must stay under their
ceilings.

Exit status: 0 when every shared case holds, 1 on regression or when
the files don't both contain a streaming suite.

Usage:
    python tools/check_bench_regression.py \
        --baseline BENCH_pipeline.json \
        --candidate bench-out/BENCH_pipeline.json [--threshold 0.25] \
        [--simulation bench-out/BENCH_simulation.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: Fractional speedup loss tolerated before the guard fails.
DEFAULT_THRESHOLD = 0.25

#: Hard floor on the batched-feed speedup (``feed_batch_speedup``).
#: The ratio is same-run, same-machine (scalar feed vs column-chunk
#: ``feed_batch`` over the identical stream), so machine speed cancels
#: out; the SoA path's committed runs sit well above 5x, and a drop
#: below this floor means the vectorized ingest degenerated to
#: per-report work.
FEED_BATCH_SPEEDUP_FLOOR = 4.0

#: Floor on the wire suite's bytes ratio (JSON bytes-per-report over
#: column-frame bytes-per-report).  Frame sizes are properties of the
#: formats, not the machine: 48 data bytes per report in a column frame
#: vs ~200 of JSON.
WIRE_BYTES_RATIO_FLOOR = 2.0

#: Floor on the idle suite's bytes-per-active over bytes-per-idle ratio.
#: Both sides are measured in the same run on the same interpreter, so
#: the ratio is machine-independent; committed runs sit two orders of
#: magnitude above this floor, and a drop below it means hibernation
#: stopped paying for itself.
IDLE_ACTIVE_RATIO_FLOOR = 10.0

#: Ceiling on the idle suite's wake p99.  Wake latency IS a timing, but
#: the quick-suite wakes (inflate + replay of a brief parked history)
#: commit at ~2 ms — a generous absolute ceiling still catches the
#: qualitative regressions (wake re-running a full from-scratch
#: estimate, or replaying an unpruned history) without tripping on
#: runner noise.
IDLE_WAKE_P99_CEILING_S = 0.25

#: Ceiling on the soak's late/steady resident-bytes ratio.  A flat
#: memory profile holds this at ~1.0; anything approaching 1.5 means
#: pruned prefixes stopped releasing memory.
IDLE_SOAK_CEILING_RATIO = 1.5

#: Smallest registered population the idle suite may claim to cover.
IDLE_MIN_REGISTERED = 10_000

#: The scenario packs every BENCH_simulation.json scenarios suite must
#: contain.
SCENARIO_PACKS = ("motion_bursts", "apnea_sigh", "ward", "overnight")

#: Floor on the ward pack's ``auto`` (lattice) accuracy and ceiling on
#: its ``phase_only`` control — the DESIGN.md §16 acceptance pair: the
#: RSS fallback must hold accuracy where pure phase collapses.
#: Committed runs sit at ~0.99 auto / ~0.45 phase-only.
WARD_AUTO_ACCURACY_FLOOR = 0.85
WARD_PHASE_ONLY_ACCURACY_CEILING = 0.60

#: Floor on clean-tick accuracy (ticks whose window overlaps no injected
#: event) for the event packs; committed runs sit at 0.95+.
CLEAN_ACCURACY_FLOOR = 0.90

#: Alarm-rate ceilings.  Committed runs measure 0.0 for both rates on
#: every pack; the ceilings leave room for benign estimator jitter
#: without letting a real alarm regression through.
FALSE_ALARM_RATE_CEILING = 0.05
MISSED_ALARM_RATE_CEILING = 0.20


def load_streaming_cases(path: Path) -> Dict[Tuple[int, float], dict]:
    """``(users, duration_s) -> case`` from a BENCH_pipeline.json file.

    Raises:
        ValueError: when the file has no streaming suite (e.g. a
            benchmark produced before the suite existed).
    """
    doc = json.loads(path.read_text())
    streaming = doc.get("streaming")
    if not isinstance(streaming, dict) or "cases" not in streaming:
        raise ValueError(f"{path} has no streaming benchmark suite")
    return {(case["users"], case["duration_s"]): case
            for case in streaming["cases"]}


def check_fabric_suite(path: Path) -> List[str]:
    """Machine-independent invariants of the fabric_scale soak suite.

    Absolute numbers (sessions, acks, migrations, restarts) are
    *counts*, not timings, so they are checked on the candidate alone —
    no baseline ratio needed.  A missing suite is a failure: the soak
    silently not running is exactly the regression this guard exists
    to catch.
    """
    doc = json.loads(path.read_text())
    fabric = doc.get("fabric_scale")
    if not isinstance(fabric, dict) or not fabric.get("cases"):
        return [f"{path} has no fabric_scale soak suite"]
    problems = []
    for case in fabric["cases"]:
        users = case.get("users", 0)
        tag = f"fabric_scale {users}u"
        if case.get("settled_sessions") != users:
            problems.append(
                f"{tag}: settled {case.get('settled_sessions')} sessions, "
                f"expected exactly {users} — the fabric lost or invented "
                f"sessions across routing/rebalance")
        if case.get("acked_equal_sent") is not True:
            problems.append(
                f"{tag}: acked != sent on a lossless soak replay — the "
                f"fabric dropped or double-counted reports")
        if not case.get("users_per_machine", 0) > 0:
            problems.append(
                f"{tag}: users_per_machine "
                f"{case.get('users_per_machine')} not published — the "
                f"soak no longer reports per-machine capacity")
        if case.get("migrated_sessions", 0) <= 0:
            problems.append(
                f"{tag}: rebalance moved 0 sessions — add_worker did not "
                f"take over any ring arc")
        if case.get("worker_restarts", 0) != 0:
            problems.append(
                f"{tag}: {case.get('worker_restarts')} worker restart(s) "
                f"during a fault-free soak — something crashed")
        if case.get("workers_final", 0) <= case.get("workers_initial", 0):
            problems.append(
                f"{tag}: workers_final {case.get('workers_final')} not "
                f"greater than workers_initial "
                f"{case.get('workers_initial')} — no rebalance happened")
    return problems


def compare(baseline: Dict[Tuple[int, float], dict],
            candidate: Dict[Tuple[int, float], dict],
            threshold: float) -> List[str]:
    """Regression complaints over the shared cases (empty = pass)."""
    problems = []
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        return ["no shared streaming cases between baseline and candidate"]
    for key in shared:
        users, duration_s = key
        base = baseline[key]["tick_speedup"]
        cand = candidate[key]["tick_speedup"]
        floor = base * (1.0 - threshold)
        if cand < floor:
            problems.append(
                f"case {users}u/{duration_s:g}s: tick_speedup {cand:.2f}x "
                f"< floor {floor:.2f}x (baseline {base:.2f}x, "
                f"threshold {threshold:.0%})")
        diff = candidate[key].get("max_rate_diff_bpm", 0.0)
        if diff != 0.0:
            problems.append(
                f"case {users}u/{duration_s:g}s: streamed and recomputed "
                f"estimates diverged by {diff} bpm (must be exactly 0)")
        batch_speedup = candidate[key].get("feed_batch_speedup")
        if batch_speedup is None:
            problems.append(
                f"case {users}u/{duration_s:g}s: no feed_batch_speedup — "
                f"the batched-feed measurement did not run")
        elif batch_speedup < FEED_BATCH_SPEEDUP_FLOOR:
            problems.append(
                f"case {users}u/{duration_s:g}s: feed_batch_speedup "
                f"{batch_speedup:.2f}x < floor "
                f"{FEED_BATCH_SPEEDUP_FLOOR:.1f}x — the SoA feed path "
                f"lost its vectorization win")
        if candidate[key].get("batch_state_equal") is not True:
            problems.append(
                f"case {users}u/{duration_s:g}s: batched feed left "
                f"different buffered state than sequential feed "
                f"(batch_state_equal is not true)")
        batch_diff = candidate[key].get("batch_max_rate_diff_bpm", 0.0)
        if batch_diff != 0.0:
            problems.append(
                f"case {users}u/{duration_s:g}s: batched and sequential "
                f"feeds diverged by {batch_diff} bpm (must be exactly 0)")
    return problems


def check_wire_suite(path: Path) -> List[str]:
    """Machine-independent invariants of the wire-format suite.

    Bytes-per-report is a property of the wire formats; ack completeness
    is a correctness count.  Neither needs a baseline.
    """
    doc = json.loads(path.read_text())
    wire = doc.get("wire")
    if not isinstance(wire, dict) or not wire.get("headline"):
        return [f"{path} has no wire benchmark suite"]
    problems = []
    headline = wire["headline"]
    ratio = headline.get("bytes_ratio", 0.0)
    if not ratio >= WIRE_BYTES_RATIO_FLOOR:
        problems.append(
            f"wire: JSON/column bytes ratio {ratio:.2f}x < floor "
            f"{WIRE_BYTES_RATIO_FLOOR:.1f}x — column frames stopped "
            f"saving wire bytes")
    if headline.get("acked_equal_sent") is not True:
        problems.append(
            "wire: acked != sent on a backpressured lossless replay — "
            "the serve path dropped or double-counted reports")
    return problems


def check_idle_suite(path: Path) -> List[str]:
    """Machine-independent invariants of the idle-economics suite.

    The idle/active bytes ratio and the soak's memory-ceiling ratio are
    same-run ratios; wake verification is a correctness count.  Only the
    wake p99 is an absolute timing, and its ceiling is two orders of
    magnitude above committed runs.
    """
    doc = json.loads(path.read_text())
    idle = doc.get("idle")
    if not isinstance(idle, dict) or not idle.get("headline"):
        return [f"{path} has no idle economics suite"]
    problems = []
    headline = idle["headline"]
    registered = headline.get("registered_users", 0)
    if registered < IDLE_MIN_REGISTERED:
        problems.append(
            f"idle: only {registered} registered users — the suite must "
            f"cover at least {IDLE_MIN_REGISTERED} to mean anything")
    ratio = headline.get("idle_active_ratio", 0.0)
    if not ratio >= IDLE_ACTIVE_RATIO_FLOOR:
        problems.append(
            f"idle: bytes_per_active/bytes_per_idle ratio {ratio:.1f}x "
            f"< floor {IDLE_ACTIVE_RATIO_FLOOR:.0f}x — hibernation "
            f"stopped shrinking idle sessions")
    if headline.get("wake_verified") is not True:
        problems.append(
            "idle: woken sessions did not all verify (wrong user, lost "
            "reports, or failed inflate) — wake is not bit-exact")
    p99_s = headline.get("wake_p99_ms", float("inf")) / 1e3
    if not p99_s <= IDLE_WAKE_P99_CEILING_S:
        problems.append(
            f"idle: wake p99 {p99_s * 1e3:.1f} ms > ceiling "
            f"{IDLE_WAKE_P99_CEILING_S * 1e3:.0f} ms — waking a parked "
            f"session became too slow to hide behind the first report")
    ceiling = headline.get("soak_ceiling_ratio", float("inf"))
    if not ceiling <= IDLE_SOAK_CEILING_RATIO:
        problems.append(
            f"idle: soak memory ceiling ratio {ceiling:.2f} > "
            f"{IDLE_SOAK_CEILING_RATIO} — resident bytes kept growing "
            f"over stream-hours; prune-driven compaction is not "
            f"releasing memory")
    return problems


def check_scenario_suite(path: Path) -> List[str]:
    """Absolute gates over the scenario-pack suite (empty = pass).

    Every number here is a workload metric over a deterministic seeded
    capture — fractions and counts, never wall-clock — so quick-grid CI
    runs and the committed full-grid reference are held to the same
    bars.
    """
    doc = json.loads(path.read_text())
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios.get("packs"):
        return [f"{path} has no scenario-pack suite"]
    packs = scenarios["packs"]
    problems = []
    for name in SCENARIO_PACKS:
        if name not in packs:
            problems.append(f"scenarios: pack {name!r} missing")
    for name, pack in packs.items():
        for case_name, case in pack.get("cases", {}).items():
            tag = f"scenarios {name}/{case_name}"
            wrong = case.get("confident_wrong_in_motion")
            if wrong != 0:
                problems.append(
                    f"{tag}: {wrong} confident-but-wrong estimate(s) "
                    f"during injected motion (must be exactly 0 — the "
                    f"motion gate exists to prevent these)")
            if case.get("false_alarm_rate", 1.0) > FALSE_ALARM_RATE_CEILING:
                problems.append(
                    f"{tag}: false_alarm_rate "
                    f"{case.get('false_alarm_rate'):.3f} > ceiling "
                    f"{FALSE_ALARM_RATE_CEILING}")
            if case.get("missed_alarm_rate", 1.0) > MISSED_ALARM_RATE_CEILING:
                problems.append(
                    f"{tag}: missed_alarm_rate "
                    f"{case.get('missed_alarm_rate'):.3f} > ceiling "
                    f"{MISSED_ALARM_RATE_CEILING}")
            clean = case.get("mean_accuracy_clean")
            if (name != "ward" and case_name == "auto"
                    and not (clean or 0.0) >= CLEAN_ACCURACY_FLOOR):
                problems.append(
                    f"{tag}: clean-tick accuracy {clean} < floor "
                    f"{CLEAN_ACCURACY_FLOOR}")
    ward = packs.get("ward", {}).get("cases", {})
    auto_acc = ward.get("auto", {}).get("mean_accuracy", 0.0)
    phase_acc = ward.get("phase_only", {}).get("mean_accuracy", 1.0)
    if "ward" in packs:
        if not auto_acc >= WARD_AUTO_ACCURACY_FLOOR:
            problems.append(
                f"scenarios ward/auto: accuracy {auto_acc:.3f} < floor "
                f"{WARD_AUTO_ACCURACY_FLOOR} — the RSS fallback stopped "
                f"holding accuracy under degraded phase")
        if not phase_acc < WARD_PHASE_ONLY_ACCURACY_CEILING:
            problems.append(
                f"scenarios ward/phase_only: accuracy {phase_acc:.3f} >= "
                f"{WARD_PHASE_ONLY_ACCURACY_CEILING} — the control arm "
                f"no longer degrades, so the ward pack proves nothing "
                f"about the fallback")
        rss_ticks = (ward.get("auto", {}).get("estimator_ticks", {})
                     .get("rss", 0))
        if rss_ticks <= 0:
            problems.append(
                "scenarios ward/auto: the RSS fallback never engaged "
                "(0 rss estimator ticks) — auto mode is not detecting "
                "the degraded phase")
    return problems


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed reference BENCH_pipeline.json")
    parser.add_argument("--candidate", type=Path, default=None,
                        help="freshly produced BENCH_pipeline.json")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="tolerated fractional speedup loss "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--simulation", type=Path, default=None,
                        help="optional BENCH_simulation.json whose "
                             "scenario-pack suite should be gated too")
    parser.add_argument("--fabric", type=Path, default=None,
                        help="optional BENCH_pipeline.json whose "
                             "fabric_scale soak suite should be gated "
                             "on its own (CI smoke path without the "
                             "wall-clock grids)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        print(f"error: threshold must be in [0, 1), got {args.threshold}",
              file=sys.stderr)
        return 2
    if (args.baseline is None) != (args.candidate is None):
        print("error: --baseline and --candidate must be given together",
              file=sys.stderr)
        return 2
    if (args.baseline is None and args.simulation is None
            and args.fabric is None):
        print("error: nothing to check — give --baseline/--candidate, "
              "--simulation, and/or --fabric", file=sys.stderr)
        return 2
    problems = []
    shared: List[Tuple[int, float]] = []
    if args.baseline is not None:
        try:
            baseline = load_streaming_cases(args.baseline)
            candidate = load_streaming_cases(args.candidate)
        except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        problems.extend(compare(baseline, candidate, args.threshold))
        shared = sorted(set(baseline) & set(candidate))
        try:
            problems.extend(check_fabric_suite(args.candidate))
            problems.extend(check_wire_suite(args.candidate))
            problems.extend(check_idle_suite(args.candidate))
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"cannot check fabric/wire/idle suite: {exc}")
    if args.simulation is not None:
        try:
            problems.extend(check_scenario_suite(args.simulation))
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"cannot check scenario suite: {exc}")
    if args.fabric is not None:
        try:
            problems.extend(check_fabric_suite(args.fabric))
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"cannot check fabric_scale suite: {exc}")
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    notes = []
    if args.baseline is not None:
        notes.append(
            f"{len(shared)} shared case(s) within {args.threshold:.0%} of "
            f"baseline tick_speedup, feed_batch_speedup >= "
            f"{FEED_BATCH_SPEEDUP_FLOOR:.1f}x with bit-equal state; wire, "
            f"fabric_scale, and idle-economics invariants hold")
    if args.simulation is not None:
        notes.append("scenario-pack gates hold")
    if args.fabric is not None:
        notes.append("fabric_scale soak invariants hold")
    print(f"bench regression check: {'; '.join(notes)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
