#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans the given markdown files (or the default doc set) for inline links
and images — ``[text](target)`` — and verifies every *relative* target
exists on disk, resolving each against the file that references it.
``http(s)``/``mailto`` links are skipped (CI must not depend on the
network), as are pure in-page anchors (``#section``); an anchor suffix
on a file target (``FILE.md#section``) is stripped before the existence
check, but the file itself must exist.

Exit status: 0 when every link resolves, 1 otherwise (each broken link
is reported as ``file:line: broken link -> target``).

Usage:
    python tools/check_docs_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown link or image: [text](target) / ![alt](target).
#: Targets with spaces are not used in this repo and keep the regex sane.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Schemes that are deliberately not checked.
_SKIP_PREFIXES = ("http://", "https://", "mailto:")

#: The default corpus when no files are passed.
DEFAULT_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
                "CHANGES.md", "PAPER.md")


def iter_links(path: Path) -> Iterable[Tuple[int, str]]:
    """Yield (line_number, target) for every inline link in a file."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path) -> List[str]:
    """All broken-link complaints for one markdown file."""
    problems = []
    for lineno, target in iter_links(path):
        if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
            continue
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        resolved = (path.parent / target_path).resolve()
        if not resolved.exists():
            problems.append(f"{path}:{lineno}: broken link -> {target}")
    return problems


def main(argv: List[str]) -> int:
    if argv:
        files = [Path(a) for a in argv]
    else:
        root = Path(__file__).resolve().parent.parent
        files = [root / name for name in DEFAULT_DOCS]
        files += sorted((root / "docs").glob("*.md"))
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"error: no such file: {f}", file=sys.stderr)
        return 1
    problems = []
    for f in files:
        problems.extend(check_file(f))
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(files)
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"docs link check: {checked} file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
