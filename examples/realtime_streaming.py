#!/usr/bin/env python3
"""Realtime streaming: the paper's prototype architecture (Section V).

The prototype configures an Impinj reader through the LLRP Toolkit,
subscribes to tag reports, and shows extracted breathing signals "in
realtime".  This example mirrors that wiring exactly: an LLRP-style
client delivers reports one at a time into the streaming pipeline, and a
rate estimate is printed for every 5-second tick of the monitoring
session, like the paper's live visualisation (Fig. 11).

Run:  python examples/realtime_streaming.py
"""

import numpy as np

from repro import LLRPClient, Reader, ROSpec, Scenario, TagBreathe
from repro.body import IrregularBreathing, Subject
from repro.errors import InsufficientDataError
from repro.viz import sparkline


def main() -> None:
    # A user whose breathing is NOT metronome-steady: cycle-to-cycle
    # jitter around 13 bpm, the realistic realtime-monitoring case.
    waveform = IrregularBreathing(13.0, rate_jitter=0.08, seed=3)
    subject = Subject(user_id=1, distance_m=3.0, breathing=waveform, sway_seed=3)
    scenario = Scenario([subject])

    reader = Reader(rng=np.random.default_rng(99))
    client = LLRPClient(reader, scenario)
    pipeline = TagBreathe(user_ids={1})

    # Tick state: print an estimate whenever 5 s of stream time passes.
    next_tick = [30.0]  # first estimate after the pipeline has a window

    def on_report(report) -> None:
        pipeline.feed(report)
        if report.timestamp_s < next_tick[0]:
            return
        next_tick[0] += 5.0
        try:
            estimate = pipeline.estimate_user(1, window_s=25.0)
        except InsufficientDataError as exc:
            print(f"  t={report.timestamp_s:5.1f}s   (no estimate: {exc})")
            return
        window = (report.timestamp_s - 25.0, report.timestamp_s)
        truth = waveform.true_rate_bpm(*window)
        trace = sparkline(estimate.estimate.signal.values[::6], width=30)
        print(f"  t={report.timestamp_s:5.1f}s   "
              f"estimate {estimate.rate_bpm:5.2f} bpm   "
              f"truth {truth:5.2f} bpm   {trace}")

    print("Connecting to reader (simulated LLRP session), 90 s run:")
    client.connect()
    client.add_rospec(ROSpec(duration_s=90.0))
    client.subscribe(on_report)
    reports = client.start()
    client.disconnect()
    print(f"session closed: {len(reports)} reports delivered")


if __name__ == "__main__":
    main()
