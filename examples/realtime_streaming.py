#!/usr/bin/env python3
"""Realtime streaming: the paper's prototype architecture, as a service.

The prototype configures an Impinj reader through the LLRP Toolkit,
subscribes to tag reports, and shows extracted breathing signals "in
realtime" (Section V).  This example runs the modern equivalent end to
end with the real ``repro.serve`` service — no hand-rolled feed loop:

1. record a 90 s capture of one irregular breather (the LLRP session);
2. start a :class:`repro.serve.BreathServer` on an ephemeral local port;
3. stream the capture into it with the replay client at 20x real time,
   exactly as ``repro replay --speed 20`` would;
4. subscribe to the estimate stream (``repro watch``) and print each
   tick with the metronome truth and a sparkline of the served signal.

Run:  python examples/realtime_streaming.py
"""

import asyncio

import numpy as np

from repro import LLRPClient, Reader, ROSpec, Scenario
from repro.body import IrregularBreathing, Subject
from repro.serve import BreathServer, IngestClient, SessionConfig, watch_estimates
from repro.viz import sparkline

#: Replay acceleration: 90 s of capture in ~4.5 s of wall time.
SPEED = 20.0


def record_capture(waveform) -> list:
    """The LLRP session: subscribe to a simulated reader, keep reports."""
    subject = Subject(user_id=1, distance_m=3.0, breathing=waveform,
                      sway_seed=3)
    client = LLRPClient(Reader(rng=np.random.default_rng(99)),
                        Scenario([subject]))
    client.connect()
    client.add_rospec(ROSpec(duration_s=90.0))
    reports = client.start()
    client.disconnect()
    return reports


async def monitor(reports, waveform) -> None:
    """Serve the capture and print the live estimate stream."""
    server = BreathServer(port=0, config=SessionConfig(
        estimate_interval_s=5.0, warmup_s=30.0, include_signal=True))
    await server.start()
    print(f"service on 127.0.0.1:{server.port}; streaming at {SPEED:.0f}x")

    async def consume() -> None:
        async for est in watch_estimates("127.0.0.1", server.port, user_id=1):
            t = est["t"]
            truth = waveform.true_rate_bpm(max(0.0, t - 25.0), t)
            trace = sparkline(est["signal"]["values"], width=30)
            tag = "  (final)" if est.get("final") else ""
            print(f"  t={t:5.1f}s   estimate {est['rate_bpm']:5.2f} bpm   "
                  f"truth {truth:5.2f} bpm   {trace}{tag}")

    consumer = asyncio.ensure_future(consume())
    ingest = IngestClient("127.0.0.1", server.port, client_id="example")
    await ingest.connect()
    stats = await ingest.replay(reports, speed=SPEED)
    await ingest.close()
    await server.drain()
    await consumer
    print(f"session drained: {stats.sent} reports streamed in "
          f"{stats.wall_s:.1f}s, {stats.shed_total} shed")


def main() -> None:
    # A user whose breathing is NOT metronome-steady: cycle-to-cycle
    # jitter around 13 bpm, the realistic realtime-monitoring case.
    waveform = IrregularBreathing(13.0, rate_jitter=0.08, seed=3)
    print("Recording 90 s LLRP capture (simulated reader session)...")
    reports = record_capture(waveform)
    print(f"captured {len(reports)} reports; starting the service:")
    asyncio.run(monitor(reports, waveform))


if __name__ == "__main__":
    main()
