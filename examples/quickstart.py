#!/usr/bin/env python3
"""Quickstart: monitor one person's breathing with a simulated RFID setup.

Reproduces the paper's basic usage: three passive tags on a seated user's
clothes, a reader antenna on a tripod, two minutes of low-level data, one
breathing-rate estimate.

Run:  python examples/quickstart.py
"""

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.viz import render_series, render_table


def main() -> None:
    # A volunteer sits 3 m from the antenna, breathing at a 14 bpm
    # metronome pace, wearing the paper's chest/middle/abdomen tag array.
    subject = Subject(
        user_id=1,
        distance_m=3.0,
        breathing=MetronomeBreathing(14.0),
        sway_seed=1,
    )
    scenario = Scenario([subject])

    print("Inventorying tags for 60 seconds (simulated)...")
    result = run_scenario(scenario, duration_s=60.0, seed=7)
    print(f"  captured {len(result.reports)} tag reads "
          f"({result.aggregate_read_rate_hz():.0f} reads/s)")

    # The TagBreathe pipeline: channel-grouped phase preprocessing,
    # multi-tag fusion, 0.67 Hz low-pass, zero-crossing rate estimation.
    pipeline = TagBreathe(user_ids={1})
    estimate = pipeline.process(result.reports)[1]

    truth = result.ground_truth.rate_bpm(1, 0.0, 60.0)
    print()
    print(render_table(
        ["quantity", "value"],
        [
            ["tags fused", estimate.tags_fused],
            ["reads used", estimate.read_count],
            ["estimated rate", f"{estimate.rate_bpm:.2f} bpm"],
            ["metronome truth", f"{truth:.2f} bpm"],
            ["error", f"{abs(estimate.rate_bpm - truth):.2f} bpm"],
        ],
    ))
    print()
    print(render_series(
        estimate.estimate.signal.slice_time(10.0, 40.0),
        title="Extracted breathing signal (10-40 s window)",
    ))


if __name__ == "__main__":
    main()
