#!/usr/bin/env python3
"""A tour of the commodity reader's low-level data (Section IV-A).

Walks through the same characterisation the paper performs before
designing TagBreathe: one tag, 2 m, 25 s, ~64 Hz — then inspects each
observable the reader reports (RSSI, Doppler, raw phase, channel index)
and finally the preprocessed displacement track and its FFT, mirroring
Figs. 2-7.

Run:  python examples/lowlevel_data_tour.py
"""

import numpy as np

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.core.spectral import fft_spectrum, frequency_resolution_bpm
from repro.streams import TimeSeries
from repro.viz import render_series, sparkline


def main() -> None:
    subject = Subject(user_id=1, distance_m=2.0, num_tags=1,
                      breathing=MetronomeBreathing(12.0), sway_seed=0)
    result = run_scenario(Scenario([subject]), duration_s=25.0, seed=2017)
    reports = result.reports
    print(f"Captured {len(reports)} reads in 25 s "
          f"({len(reports) / 25.0:.0f} Hz sampling)\n")

    times = np.array([r.timestamp_s for r in reports])
    keep = np.concatenate([[True], np.diff(times) > 0])

    # --- Fig. 2: RSSI --------------------------------------------------
    rssi = np.array([r.rssi_dbm for r in reports])[keep]
    print("Fig. 2 - RSSI (0.5 dBm steps, periodic but coarse):")
    print("  " + sparkline(rssi, width=70))
    print(f"  span {rssi.min():.1f} .. {rssi.max():.1f} dBm, "
          f"{len(np.unique(rssi))} distinct levels\n")

    # --- Fig. 3: raw Doppler -------------------------------------------
    doppler = np.array([r.doppler_hz for r in reports])[keep]
    print("Fig. 3 - raw Doppler shift (noisy at breathing speeds):")
    print("  " + sparkline(doppler, width=70))
    print(f"  std {doppler.std():.2f} Hz vs a true peak shift of ~0.02 Hz\n")

    # --- Fig. 4: raw phase ---------------------------------------------
    phases = np.array([r.phase_rad for r in reports])[keep]
    print("Fig. 4 - raw phase (discontinuous at every 0.2 s hop):")
    print("  " + sparkline(phases[:300], width=70))

    # --- Fig. 5: channel hopping ---------------------------------------
    channels = np.array([r.channel_index for r in reports])[keep]
    print("\nFig. 5 - channel index staircase:")
    print("  " + sparkline(channels[:300].astype(float), width=70))
    print(f"  {len(np.unique(channels))} channels in the hop set\n")

    # --- Fig. 6: displacement track ------------------------------------
    pipeline = TagBreathe(user_ids={1})
    track = pipeline.fused_track(1, reports).normalize()
    print(render_series(track, title="Fig. 6 - preprocessed displacement "
                                     "(hop-immune, periodic)"))

    # --- Fig. 7: FFT ----------------------------------------------------
    freqs, spectrum = fft_spectrum(track)
    band = (freqs >= 0.05) & (freqs <= 0.8)
    print("\nFig. 7 - displacement spectrum (peak = breathing rate):")
    print("  " + sparkline(spectrum[band], width=70))
    peak_bpm = freqs[band][int(np.argmax(spectrum[band]))] * 60.0
    print(f"  peak at {peak_bpm:.1f} bpm (truth 12.0); "
          f"resolution {frequency_resolution_bpm(25.0):.1f} bpm at 25 s —\n"
          f"  the pitfall that motivates zero-crossing estimation (Eq. 5)")

    # --- Fig. 8: the final estimate -------------------------------------
    estimate = pipeline.process(reports)[1]
    print(f"\nFig. 8 - extracted signal -> Eq. (5): "
          f"{estimate.rate_bpm:.2f} bpm from "
          f"{len(estimate.estimate.crossings)} zero crossings")


if __name__ == "__main__":
    main()
