#!/usr/bin/env python3
"""Respiratory-health screening: the paper's motivating application.

The introduction motivates TagBreathe with healthcare: shallow breathing
and unconscious breath holds indicate chronic stress; newborns breathe
irregularly "alternating between fast and slow with occasional pauses".
This example monitors a subject whose breathing includes genuine pauses
and runs the respiratory analytics layer on the extracted signal:
breath-by-breath rates, variability, inhale/exhale ratio, and apnea
detection.

Run:  python examples/apnea_screening.py
"""

from repro import PipelineConfig, Scenario, TagBreathe, run_scenario
from repro.body import IrregularBreathing, Subject
from repro.metrics import analyze_breathing
from repro.viz import render_table


def main() -> None:
    # Irregular breathing around 14 bpm with a 25% chance of a breath
    # hold (~6 s) after any cycle — the pattern apnea screening hunts.
    waveform = IrregularBreathing(
        base_rate_bpm=14.0,
        rate_jitter=0.12,
        pause_probability=0.25,
        pause_duration_s=6.0,
        seed=11,
    )
    # Bedside range: close placement keeps environmental multipath far
    # below breathing amplitude, so holds are cleanly visible.
    subject = Subject(user_id=1, distance_m=1.5, breathing=waveform, sway_seed=11)

    print("Monitoring 120 s of irregular breathing with pauses...")
    result = run_scenario(Scenario([subject]), duration_s=120.0, seed=101)
    # For health analytics the full fixed band is used (adaptive_band off):
    # a narrow adaptive band rings through breath holds and would mask
    # them; the wide band lets pauses appear as genuine amplitude drops.
    pipeline = TagBreathe(user_ids={1},
                          config=PipelineConfig(adaptive_band=False))
    user = pipeline.process(result.reports)[1]
    report = analyze_breathing(user.estimate, min_pause_s=5.0)

    print()
    print(render_table(
        ["respiratory metric", "value"],
        [
            ["breaths detected", len(report.cycles)],
            ["mean rate", f"{report.mean_rate_bpm:.1f} bpm"],
            ["rate variability", f"{report.rate_variability_bpm:.2f} bpm"],
            ["inhale:exhale ratio", f"{report.mean_ie_ratio:.2f}"],
            ["shallow-breath fraction", f"{report.shallow_fraction * 100:.0f}%"],
            ["apneas (>=5 s pauses)", len(report.apneas)],
        ],
    ))
    if report.apneas:
        print("\nDetected pauses:")
        for apnea in report.apneas:
            print(f"  {apnea.start_s:6.1f}s .. {apnea.end_s:6.1f}s "
                  f"({apnea.duration_s:.1f} s)")
    truth = waveform.true_rate_bpm(0.0, 120.0)
    print(f"\nGround-truth average rate over the session: {truth:.1f} bpm")


if __name__ == "__main__":
    main()
