#!/usr/bin/env python3
"""Breath monitoring inside a tagged-item environment (Fig. 14 scenario).

A worker wearing three monitoring tags moves through a space where 25
inventory-labelled items contend for the same Gen2 airtime.  The example
shows both halves of the paper's Fig. 14 story: the EPC user-ID filter
separating monitoring reads from item reads, and the per-tag read-rate
dilution that contention causes — without breaking the rate estimate.

Run:  python examples/warehouse_contention.py
"""

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.epc import EPCMappingTable
from repro.viz import render_table


def main() -> None:
    worker = Subject(user_id=1, distance_m=4.0,
                     breathing=MetronomeBreathing(12.0), sway_seed=5)
    quiet = Scenario([worker])
    busy = quiet.with_contending_tags(25, seed=5)

    print("Scenario A: worker alone.  Scenario B: worker + 25 item tags.\n")
    rows = []
    for label, scenario in (("alone", quiet), ("25 item tags", busy)):
        result = run_scenario(scenario, duration_s=60.0, seed=13)
        monitor_reads = result.reports_for_user(1)
        estimates = TagBreathe(user_ids={1}).process(result.reports)
        estimate = estimates.get(1)
        rows.append([
            label,
            scenario.total_tag_count(),
            f"{result.aggregate_read_rate_hz():.0f}/s",
            f"{len(monitor_reads) / 60.0:.0f}/s",
            f"{estimate.rate_bpm:.2f} bpm" if estimate else "none",
            f"{breathing_rate_accuracy(estimate.rate_bpm, 12.0) * 100:.1f}%"
            if estimate else "-",
        ])
    print(render_table(
        ["scenario", "tags in field", "total reads", "monitor reads",
         "estimate", "accuracy"],
        rows,
    ))

    # The Section IV-C fallback for readers that cannot overwrite EPCs:
    # a mapping table classifies factory EPCs into monitoring identities.
    print("\nMapping-table fallback (reader without EPC-write support):")
    table = EPCMappingTable()
    for tag in worker.tags:
        table.register(tag.epc, tag.user_id, tag.tag_id)
    result = run_scenario(busy, duration_s=60.0, seed=14)
    monitored = [r for r in result.reports if table.is_monitoring_tag(r.epc)]
    ignored = len(result.reports) - len(monitored)
    estimate = TagBreathe(user_ids={1}).process(monitored)[1]
    print(f"  classified {len(monitored)} monitoring reads, "
          f"ignored {ignored} item reads")
    print(f"  estimate: {estimate.rate_bpm:.2f} bpm (truth 12.00)")


if __name__ == "__main__":
    main()
