#!/usr/bin/env python3
"""Gen2 protocol analysis: commands, airtime, and the cost of contention.

Drops below the tag-report level the other examples work at, to the
bit-level protocol the paper's reader speaks: builds command-accurate
transcripts of inventory rounds for different tag populations, sniffs
them back, and accounts where the airtime goes — the mechanics behind
Fig. 14's read-rate dilution.

Run:  python examples/protocol_analysis.py
"""

import numpy as np

from repro.epc import (
    EPC96,
    Gen2Config,
    Gen2Inventory,
    TranscriptBuilder,
    select_user,
)
from repro.reader import ProtocolSniffer
from repro.viz import render_table


def transcript_for_population(n_monitor: int, n_items: int, seed: int):
    """Simulate MAC rounds for a tag population and rebuild transcripts."""
    keys = [("user", i) for i in range(n_monitor)] + \
           [("item", i) for i in range(n_items)]
    inventory = Gen2Inventory(keys, rng=np.random.default_rng(seed))
    builder = TranscriptBuilder(rng=np.random.default_rng(seed))
    sniffer = ProtocolSniffer()
    monitor_reads = item_reads = 0
    airtime = 0.0

    t = 0.0
    for _ in range(40):  # forty rounds
        events, stats = inventory.run_round(t)
        t += stats.duration_s
        # Rebuild the round's slot outcomes at command level.
        outcomes = []
        read_keys = {key for _, key in events}
        reads_placed = 0
        for slot in range(stats.slots):
            if reads_placed < stats.reads:
                key = sorted(read_keys)[reads_placed] if reads_placed < len(read_keys) else None
            if reads_placed < stats.reads and key is not None:
                kind, index = key
                epc = (EPC96.from_user_tag(1, index + 1) if kind == "user"
                       else EPC96.from_user_tag(0xFFFF0000 + index, 1))
                outcomes.append(("read", epc))
                if kind == "user":
                    monitor_reads += 1
                else:
                    item_reads += 1
                reads_placed += 1
            elif slot < stats.collisions:
                outcomes.append(("collision", None))
            else:
                outcomes.append(("empty", None))
        transcript = builder.build_round(stats.q, outcomes)
        airtime += transcript.total_airtime_s
        sniffer.feed_transcript(transcript)
    return sniffer.report, monitor_reads, item_reads, airtime, t


def main() -> None:
    rows = []
    for n_items in (0, 10, 30):
        report, monitor, items, airtime, mac_time = \
            transcript_for_population(3, n_items, seed=7)
        q_span = (f"{min(report.q_values)}-{max(report.q_values)}"
                  if report.q_values else "-")
        rows.append([
            f"3 monitor + {n_items} items",
            len(report.frames),
            q_span,
            monitor,
            items,
            f"{airtime * 1000:.0f} ms",
        ])
        print(f"[{n_items} items] sniffer: {report.summary()}")
    print()
    print(render_table(
        ["population (40 rounds)", "frames", "Q range",
         "monitor reads", "item reads", "cmd airtime"],
        rows,
    ))
    print("\nWith Select filtering (C1G2), the item tags never enter the")
    print("rounds at all — see benchmarks/test_ablation_select.py:")
    select = select_user(1)
    print(f"  Select frame: {len(select.encode())} bits, "
          f"mask = 64-bit user-ID prefix")


if __name__ == "__main__":
    main()
