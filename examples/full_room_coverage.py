#!/usr/bin/env python3
"""Multi-antenna coverage and per-user antenna selection (Section IV-D-3).

    "to increase the reader coverage and fully enable breath monitoring in
    the environment, a commodity reader can connect multiple antennas to
    ensure line-of-sight paths to the tags ... TagBreathe evaluates the
    data quality ... and extract breathing signals with the data reported
    by the optimal antenna for each user."

Two users face opposite directions.  With a single antenna, the one
facing away is invisible (body blockage, Fig. 15); adding a second
antenna on the far wall restores coverage, and the pipeline picks the
optimal antenna per user automatically.

Run:  python examples/full_room_coverage.py
"""

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.config import ReaderConfig
from repro.reader import Antenna
from repro.viz import render_table


def build_scenario():
    return Scenario([
        # Faces antenna 1 (at the origin wall).
        Subject(user_id=1, distance_m=3.0, lateral_offset_m=-0.8,
                orientation_deg=0.0, breathing=MetronomeBreathing(11.0),
                sway_seed=1),
        # Faces the OPPOSITE wall: blocked for antenna 1, perfect for
        # antenna 2.
        Subject(user_id=2, distance_m=3.0, lateral_offset_m=0.8,
                orientation_deg=180.0, breathing=MetronomeBreathing(17.0),
                sway_seed=2),
    ])


def monitor(label, antennas):
    scenario = build_scenario()
    config = ReaderConfig(num_antennas=len(antennas))
    result = run_scenario(scenario, duration_s=60.0, seed=55,
                          reader_config=config, antennas=antennas)
    estimates, failures = TagBreathe(user_ids={1, 2}).process_detailed(
        result.reports
    )
    rows = []
    for uid, truth in ((1, 11.0), (2, 17.0)):
        if uid in estimates:
            est = estimates[uid]
            rows.append([f"user {uid}", f"{truth:.0f} bpm",
                         f"{est.rate_bpm:.1f} bpm",
                         f"port {est.antenna_port}" if est.antenna_port else "fused"])
        else:
            rows.append([f"user {uid}", f"{truth:.0f} bpm", "NO ESTIMATE",
                         failures.get(uid, "?")[:40]])
    print(f"\n--- {label} ---")
    print(render_table(["user", "truth", "estimate", "antenna"], rows))


def main() -> None:
    wall_a = Antenna(port=1, position_m=(0.0, 0.0, 1.0), boresight=(1, 0, 0))
    wall_b = Antenna(port=2, position_m=(6.0, 0.0, 1.0), boresight=(-1, 0, 0))

    print("Two users, facing opposite walls.")
    monitor("single antenna (origin wall only)", [wall_a])
    monitor("two antennas, round-robin (both walls)", [wall_a, wall_b])
    print("\nWith the second antenna, the away-facing user is recovered and")
    print("each user is served by the antenna with the best data quality.")


if __name__ == "__main__":
    main()
