#!/usr/bin/env python3
"""Multi-user monitoring: the paper's headline scenario.

Four people sit side by side in front of one reader (a waiting room /
hospital ward).  Each wears three tags whose EPCs encode a 64-bit user ID
and a 32-bit tag ID (paper Fig. 9), so one capture separates cleanly into
four breathing estimates — the capability Doppler/WiFi sensing lacks.

Run:  python examples/multi_user_ward.py
"""

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import BreathingStyle, MetronomeBreathing, Subject
from repro.viz import render_table, sparkline


def main() -> None:
    patients = {
        1: ("Alice", 7.0, BreathingStyle.ABDOMEN),
        2: ("Bo", 11.0, BreathingStyle.CHEST),
        3: ("Chen", 15.0, BreathingStyle.MIXED),
        4: ("Dana", 19.0, BreathingStyle.CHEST),
    }
    subjects = [
        Subject(
            user_id=uid,
            distance_m=4.0,
            lateral_offset_m=(uid - 2.5) * 0.8,  # side by side, 0.8 m apart
            breathing=MetronomeBreathing(rate),
            style=style,
            sway_seed=uid,
        )
        for uid, (_, rate, style) in patients.items()
    ]
    scenario = Scenario(subjects)

    print(f"Monitoring {len(subjects)} users "
          f"({scenario.total_tag_count()} tags) for 90 seconds...")
    result = run_scenario(scenario, duration_s=90.0, seed=42)
    print(f"  aggregate read rate: {result.aggregate_read_rate_hz():.0f} reads/s")

    pipeline = TagBreathe(user_ids=set(patients))
    estimates, failures = pipeline.process_detailed(result.reports)

    rows = []
    for uid, (name, rate, style) in patients.items():
        if uid in estimates:
            est = estimates[uid]
            acc = breathing_rate_accuracy(est.rate_bpm, rate)
            trace = sparkline(est.estimate.signal.values[::8], width=24)
            rows.append([name, style.value, f"{rate:.0f} bpm",
                         f"{est.rate_bpm:.1f} bpm", f"{acc * 100:.1f}%", trace])
        else:
            rows.append([name, style.value, f"{rate:.0f} bpm", "no estimate",
                         failures.get(uid, "?"), ""])
    print()
    print(render_table(
        ["patient", "style", "metronome", "estimated", "accuracy", "signal"],
        rows,
    ))


if __name__ == "__main__":
    main()
