#!/usr/bin/env python3
"""Neonatal monitoring: adapting the pipeline beyond the paper's band.

The paper's intro raises newborn monitoring ("Parents are concerned about
the safety of breath monitoring devices for their newborns") but its
0.67 Hz low-pass assumes adult rates below 40 bpm.  A newborn breathes
30-60 bpm (0.5-1.0 Hz) with only millimetres of chest excursion — both
ends of the design need adjusting:

* the cutoff must rise (``recommended_pipeline_config``),
* the tag must sit close (crib-side) so the tiny excursion beats the
  room's multipath.

This example monitors a 48 bpm newborn and an adult in the same capture,
each with its demographic's pipeline configuration.

Run:  python examples/neonatal_monitoring.py
"""

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import (
    ADULT,
    NEWBORN,
    MetronomeBreathing,
    Subject,
    recommended_pipeline_config,
)
from repro.viz import render_table


def main() -> None:
    baby = Subject(
        user_id=1, distance_m=0.8,  # crib-side antenna
        breathing=MetronomeBreathing(48.0, amplitude_m=0.004),
        style=NEWBORN.typical_style, sway_seed=1,
    )
    parent = Subject(
        user_id=2, distance_m=2.5, lateral_offset_m=1.0,
        breathing=MetronomeBreathing(14.0, amplitude_m=0.010),
        style=ADULT.typical_style, sway_seed=2,
    )
    scenario = Scenario([baby, parent])
    print("Monitoring newborn (48 bpm) + parent (14 bpm) for 60 s...")
    result = run_scenario(scenario, duration_s=60.0, seed=33)

    rows = []
    for uid, group, truth in ((1, NEWBORN, 48.0), (2, ADULT, 14.0)):
        config = recommended_pipeline_config(group)
        pipeline = TagBreathe(user_ids={uid}, config=config)
        estimates, failures = pipeline.process_detailed(result.reports)
        if uid in estimates:
            est = estimates[uid]
            rows.append([
                group.name, f"{truth:.0f} bpm", f"{est.rate_bpm:.1f} bpm",
                f"{breathing_rate_accuracy(est.rate_bpm, truth) * 100:.1f}%",
                f"{config.cutoff_hz:.2f} Hz",
            ])
        else:
            rows.append([group.name, f"{truth:.0f} bpm", "no estimate",
                         failures.get(uid, "?")[:30], f"{config.cutoff_hz:.2f} Hz"])
    print()
    print(render_table(
        ["subject", "truth", "estimate", "accuracy", "cutoff used"], rows,
    ))

    # Show why the adaptation matters: the paper's adult band applied to
    # the newborn filters the breathing fundamental away entirely.
    print("\nWith the paper's adult 0.67 Hz cutoff applied to the newborn:")
    adult_band = TagBreathe(user_ids={1})
    estimates, failures = adult_band.process_detailed(result.reports)
    if 1 in estimates:
        est = estimates[1]
        print(f"  estimate {est.rate_bpm:.1f} bpm vs truth 48.0 — "
              f"accuracy {breathing_rate_accuracy(est.rate_bpm, 48.0) * 100:.0f}% "
              f"(the 0.8 Hz fundamental was filtered out)")
    else:
        print(f"  no estimate at all: {failures.get(1, '?')}")


if __name__ == "__main__":
    main()
