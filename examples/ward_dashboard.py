#!/usr/bin/env python3
"""A live ward dashboard: the Fig. 11 realtime UI, in the terminal.

Combines the whole extension stack: four patients with different
demographics and restlessness levels, streaming LLRP ingestion, Kalman
rate tracking with outlier gating, and a periodically re-rendered
multi-user dashboard.

Run:  python examples/ward_dashboard.py
"""

import numpy as np

from repro import LLRPClient, Reader, ROSpec, Scenario, TagBreathe
from repro.body import (
    MetronomeBreathing,
    RestlessBreathing,
    Subject,
    TransientMotion,
)
from repro.core.tracking import BreathingRateTracker
from repro.errors import InsufficientDataError
from repro.viz import UserPanel, render_dashboard

PATIENTS = {
    1: ("Alice", 9.0, 0.0),    # calm
    2: ("Bo", 13.0, 2.0),      # shifts in bed occasionally
    3: ("Chen", 16.0, 0.5),
    4: ("Dana", 19.0, 1.0),
}


def build_scenario() -> Scenario:
    subjects = []
    for uid, (_, rate, restlessness) in PATIENTS.items():
        waveform = MetronomeBreathing(rate)
        if restlessness > 0:
            waveform = RestlessBreathing(
                waveform,
                TransientMotion(rate_per_minute=restlessness,
                                amplitude_m=0.03, seed=uid),
            )
        subjects.append(Subject(
            user_id=uid, distance_m=3.5,
            lateral_offset_m=(uid - 2.5) * 0.9,
            breathing=waveform, sway_seed=uid,
        ))
    return Scenario(subjects)


def main() -> None:
    scenario = build_scenario()
    reader = Reader(rng=np.random.default_rng(2024))
    client = LLRPClient(reader, scenario)
    pipeline = TagBreathe(user_ids=set(PATIENTS))
    trackers = {uid: BreathingRateTracker() for uid in PATIENTS}
    next_render = [35.0]

    def render(now: float) -> None:
        panels = []
        for uid, (name, rate, _) in PATIENTS.items():
            try:
                estimate = pipeline.estimate_user(uid, window_s=30.0)
                tracked = trackers[uid].update(now, estimate.rate_bpm)
                panels.append(UserPanel(
                    label=f"{name} (truth {rate:.0f})",
                    rate_bpm=tracked.rate_bpm,
                    trend_bpm_per_min=tracked.trend_bpm_per_min,
                    signal=estimate.estimate.signal,
                    status="gated" if tracked.gated else "ok",
                ))
            except InsufficientDataError:
                panels.append(UserPanel(label=name, rate_bpm=None,
                                        status="no data"))
        print(render_dashboard(panels, title=f"Ward A — t={now:5.1f}s"))
        print()

    def on_report(report) -> None:
        pipeline.feed(report)
        if report.timestamp_s >= next_render[0]:
            next_render[0] += 30.0
            render(report.timestamp_s)

    client.connect()
    client.add_rospec(ROSpec(duration_s=95.0))
    client.subscribe(on_report)
    client.start()
    client.disconnect()


if __name__ == "__main__":
    main()
