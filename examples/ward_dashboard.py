#!/usr/bin/env python3
"""A live ward dashboard fed by the streaming service (Fig. 11 UI).

Four patients with different demographics and restlessness levels are
recorded once, then monitored through the full serving stack: a local
:class:`repro.serve.BreathServer` ingests the replayed capture, and the
dashboard is just another *watch* subscriber — it renders whatever the
estimate stream says, including the Kalman-tracked rate, trend arrows,
the served signal sparkline, and per-stream drop counters.  Kill the
dashboard and reconnect and the ward keeps monitoring; that separation
is the point of the service.

Run:  python examples/ward_dashboard.py
"""

import asyncio

import numpy as np

from repro import LLRPClient, Reader, ROSpec, Scenario
from repro.body import (
    MetronomeBreathing,
    RestlessBreathing,
    Subject,
    TransientMotion,
)
from repro.core.tracking import BreathingRateTracker
from repro.serve import BreathServer, IngestClient, SessionConfig, watch_estimates
from repro.streams import TimeSeries
from repro.viz import UserPanel, render_dashboard

PATIENTS = {
    1: ("Alice", 9.0, 0.0),    # calm
    2: ("Bo", 13.0, 2.0),      # shifts in bed occasionally
    3: ("Chen", 16.0, 0.5),
    4: ("Dana", 19.0, 1.0),
}

#: Replay acceleration: 95 s of ward time in ~5 s.
SPEED = 20.0


def build_scenario() -> Scenario:
    subjects = []
    for uid, (_, rate, restlessness) in PATIENTS.items():
        waveform = MetronomeBreathing(rate)
        if restlessness > 0:
            waveform = RestlessBreathing(
                waveform,
                TransientMotion(rate_per_minute=restlessness,
                                amplitude_m=0.03, seed=uid),
            )
        subjects.append(Subject(
            user_id=uid, distance_m=3.5,
            lateral_offset_m=(uid - 2.5) * 0.9,
            breathing=waveform, sway_seed=uid,
        ))
    return Scenario(subjects)


def record_capture(scenario: Scenario) -> list:
    client = LLRPClient(Reader(rng=np.random.default_rng(2024)), scenario)
    client.connect()
    client.add_rospec(ROSpec(duration_s=95.0))
    reports = client.start()
    client.disconnect()
    return reports


def panel_from_estimate(name: str, truth: float, est, tracked) -> UserPanel:
    signal = None
    if est.get("signal"):
        signal = TimeSeries(est["signal"]["times"], est["signal"]["values"])
    dropped = sum(est.get("drop_counts", {}).values())
    status = "ok"
    if tracked.gated:
        status = "gated"
    elif est.get("degraded_reasons"):
        status = "degraded"
    if dropped:
        status += f" ({dropped} drops)"
    return UserPanel(
        label=f"{name} (truth {truth:.0f})",
        rate_bpm=tracked.rate_bpm,
        trend_bpm_per_min=tracked.trend_bpm_per_min,
        signal=signal,
        status=status,
    )


async def run_ward(reports) -> None:
    server = BreathServer(port=0, n_shards=2, config=SessionConfig(
        window_s=30.0, estimate_interval_s=5.0, warmup_s=35.0,
        include_signal=True))
    await server.start()
    print(f"ward service on 127.0.0.1:{server.port}; "
          f"replaying at {SPEED:.0f}x")

    trackers = {uid: BreathingRateTracker() for uid in PATIENTS}
    latest = {}
    next_render = [35.0]

    async def dashboard() -> None:
        async for est in watch_estimates("127.0.0.1", server.port):
            uid = est["user_id"]
            if uid not in PATIENTS:
                continue
            tracked = trackers[uid].update(est["t"], est["rate_bpm"])
            name, truth, _ = PATIENTS[uid]
            latest[uid] = panel_from_estimate(name, truth, est, tracked)
            if est["t"] >= next_render[0] and len(latest) == len(PATIENTS):
                next_render[0] = est["t"] + 30.0
                panels = [latest[uid] for uid in sorted(PATIENTS)]
                print(render_dashboard(
                    panels, title=f"Ward A — t={est['t']:5.1f}s"))
                print()

    consumer = asyncio.ensure_future(dashboard())
    ingest = IngestClient("127.0.0.1", server.port, client_id="ward-reader")
    await ingest.connect()
    await ingest.replay(reports, speed=SPEED)
    await ingest.close()
    await server.drain()
    await consumer

    # The drain pushed one final estimate per patient; show the farewell.
    panels = [latest[uid] for uid in sorted(PATIENTS) if uid in latest]
    print(render_dashboard(panels, title="Ward A — final (drained)"))


def main() -> None:
    scenario = build_scenario()
    print("Recording 95 s ward capture (4 patients)...")
    reports = record_capture(scenario)
    print(f"captured {len(reports)} reports; starting the ward service:")
    asyncio.run(run_ward(reports))


if __name__ == "__main__":
    main()
